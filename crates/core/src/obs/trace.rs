//! Structured causal tracing for the capture → shard → merge pipeline.
//!
//! The metrics registry ([`super::PipelineMetrics`]) answers *how much*:
//! cumulative counters say how many packets were classified, dropped, or
//! evicted. This module answers *where it went*: a sampled
//! [`RecordBatch`] is tagged with a
//! **trace ID** at its capture source, and every stage it passes through
//! (source read → ring enqueue/dequeue → dissect → shard route → window
//! emit → fragment encode → merge decode) records one span event against
//! that ID. The result is a causal tree per sampled batch, exportable as
//! pinned-schema NDJSON (`analyze --trace out.ndjson`) and inspectable
//! live through the `/debug/trace` route of [`super::serve`].
//!
//! Like the rest of `obs`, the collector is vendored and std-only — no
//! tracing crates — and lock-light: the hot path pays a single relaxed
//! atomic load while tracing is off, and one short uncontended mutex
//! push per *batch* (never per packet) while it is on. Trace output is a
//! side channel: recording a span never changes analysis state, so every
//! differential suite stays byte-identical with tracing enabled.
//!
//! # Trace IDs and determinism
//!
//! IDs are derived, not random: `mix(node_label_hash, batch_ordinal)`,
//! where the node label names the process (`worker:box-a`, `merge`) and
//! the ordinal counts sampled batches. Two runs over the same seeded sim
//! trace therefore produce the same ID sequence, which is what lets the
//! CI smoke job and the stitching tests pin trace structure without
//! pinning wall-clock timings.
//!
//! # Cross-process stitching
//!
//! A worker running `analyze --emit-fragments --trace` ships its span
//! events ahead of the records they annotate in a `Trace` frame
//! (`zoom_wire::frame::KIND_TRACE`). The merge node ingests those
//! foreign events verbatim ([`TraceCollector::ingest_foreign`]) and tags
//! the decoded batch with the same trace ID, so merge-side spans join
//! the worker's tree and the merged NDJSON tells the whole story:
//! `worker:box-a/source_read → … → merge/merge_decode → merge/window_emit`.
//!
//! # Event schema (pinned)
//!
//! One JSON object per line:
//!
//! ```json
//! {"type":"trace_span","trace_id":"00c0ffee00c0ffee","span":"source_read",
//!  "node":"worker:box-a","site":"pcap:a.pcap","ts_nanos":1200,
//!  "dur_nanos":830,"records":1024}
//! ```
//!
//! `ts_nanos` is monotonic time since the collector was created (never
//! wall-clock — traces from different machines are ordered by causality,
//! not clocks); `dur_nanos` is 0 for point events; `records` is the
//! batch size the span covered (window count for `window_emit`). The
//! span names are closed over [`SPAN_CATALOGUE`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use zoom_wire::handoff::RecordBatch;

// ------------------------------------------------------ span catalogue --

/// Span names, one per pipeline stage. Closed set: every event's `span`
/// field is one of [`SPAN_CATALOGUE`] (foreign events re-ingested on a
/// merge node were validated by the emitting worker).
pub mod spans {
    /// A capture thread filled one batch from its packet source.
    pub const SOURCE_READ: &str = "source_read";
    /// The filled batch was offered to the SPSC hand-off ring.
    pub const RING_ENQUEUE: &str = "ring_enqueue";
    /// The fan-in consumer popped the batch off its lane's ring.
    pub const RING_DEQUEUE: &str = "ring_dequeue";
    /// The sequential analyzer dissected + classified the batch.
    pub const DISSECT: &str = "dissect";
    /// The parallel router peeked, hashed, and fanned the batch out.
    pub const SHARD_ROUTE: &str = "shard_route";
    /// The streaming engine ingested the batch (peek, route, ticks).
    pub const ENGINE_PUSH: &str = "engine_push";
    /// Closed windows were handed to the caller (`records` = windows).
    pub const WINDOW_EMIT: &str = "window_emit";
    /// A worker encoded the batch into a wire-framed fragment.
    pub const FRAGMENT_ENCODE: &str = "fragment_encode";
    /// The merge node decoded the batch out of a worker's stream.
    pub const MERGE_DECODE: &str = "merge_decode";
}

/// Every span name a conforming event may carry, in pipeline order.
pub const SPAN_CATALOGUE: &[&str] = &[
    spans::SOURCE_READ,
    spans::RING_ENQUEUE,
    spans::RING_DEQUEUE,
    spans::DISSECT,
    spans::SHARD_ROUTE,
    spans::ENGINE_PUSH,
    spans::WINDOW_EMIT,
    spans::FRAGMENT_ENCODE,
    spans::MERGE_DECODE,
];

// ------------------------------------------------------------- bounds --

/// Export-queue bound, in events. A drain (`--trace` file tick or the
/// fragment-emit flush) empties it; if nothing drains, the oldest events
/// are dropped and counted, never silently lost to unbounded memory.
pub const EVENT_CAP: usize = 65_536;

/// `/debug/trace` tail-ring bound, in events. The tail is never drained
/// by exports — it always holds the most recent spans for live
/// introspection.
pub const TAIL_CAP: usize = 4_096;

// ------------------------------------------------------------- events --

#[derive(Debug, Clone)]
struct TraceEvent {
    trace_id: u64,
    /// The fully rendered NDJSON line (no trailing newline). Foreign
    /// events ingested off the wire keep the emitting node's line
    /// verbatim.
    line: String,
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// FNV-1a over the label bytes: a tiny, dependency-free, stable hash for
/// deriving deterministic trace IDs from node labels.
fn label_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// SplitMix64 finalizer: spreads the ordinal across the ID space so IDs
/// from one node don't form a visible arithmetic sequence.
fn mix(h: u64, ordinal: u64) -> u64 {
    let mut z = h ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------- collector --

/// The per-process trace collector, embedded in
/// [`super::PipelineMetrics`] so every stage that already holds the
/// metrics `Arc` can record spans with no extra plumbing.
///
/// Disabled by default: [`is_enabled`](TraceCollector::is_enabled) is a
/// single relaxed load, and a disabled collector records nothing — the
/// `bench-gate` batch-pipeline rate is unaffected with tracing off.
#[derive(Debug)]
pub struct TraceCollector {
    /// 0 = disabled; otherwise the sampling period (1 = every batch,
    /// N = every Nth batch per this node's ordinal counter).
    sample_every: AtomicU64,
    /// FNV hash of the node label, fixed at [`enable`](Self::enable).
    node_hash: AtomicU64,
    /// Sampled-batch ordinal (drives both sampling and ID derivation).
    seq: AtomicU64,
    /// Most recent trace ID seen by a sink (`0` = none yet); window
    /// emits attach to it so a window joins the batch that closed it.
    last_id: AtomicU64,
    /// Events recorded (locally or ingested) since creation.
    recorded: AtomicU64,
    /// Events dropped at [`EVENT_CAP`] because nothing drained the
    /// export queue.
    dropped: AtomicU64,
    /// Node label, set at enable time (`analyze`, `worker:box-a`, …).
    node: Mutex<String>,
    /// Export queue: drained by `--trace` writers and fragment emitters.
    events: Mutex<VecDeque<TraceEvent>>,
    /// Live tail for `/debug/trace?n=K`; a bounded ring, never drained.
    tail: Mutex<VecDeque<TraceEvent>>,
    /// Per-`node;span` totals for the folded-stacks self-profile:
    /// `(count, dur_nanos_sum)` keyed by span name (local events only).
    fold: Mutex<Vec<(String, u64, u64)>>,
    /// Monotonic zero for every `ts_nanos` this collector renders.
    start: Instant,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// A disabled collector (node label `analyze` until
    /// [`enable`](Self::enable) names it).
    pub fn new() -> TraceCollector {
        TraceCollector {
            sample_every: AtomicU64::new(0),
            node_hash: AtomicU64::new(label_hash("analyze")),
            seq: AtomicU64::new(0),
            last_id: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            node: Mutex::new("analyze".to_string()),
            events: Mutex::new(VecDeque::new()),
            tail: Mutex::new(VecDeque::new()),
            fold: Mutex::new(Vec::new()),
            start: Instant::now(),
        }
    }

    /// Turn tracing on: sample one batch in `sample_every` (clamped to
    /// ≥ 1) and stamp every event with `node`. Idempotent; meant to be
    /// called once at startup, before capture threads spawn.
    pub fn enable(&self, sample_every: u64, node: &str) {
        *self.node.lock().unwrap() = node.to_string();
        self.node_hash.store(label_hash(node), Ordering::Relaxed);
        self.sample_every
            .store(sample_every.max(1), Ordering::Relaxed);
    }

    /// Whether any stage should bother recording. One relaxed load — the
    /// entire hot-path cost while tracing is off.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sample_every.load(Ordering::Relaxed) != 0
    }

    /// The sampling period (0 while disabled).
    pub fn sample_period(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// The node label events are stamped with.
    pub fn node(&self) -> String {
        self.node.lock().unwrap().clone()
    }

    /// `(recorded, dropped)` event totals since creation.
    pub fn event_counts(&self) -> (u64, u64) {
        (
            self.recorded.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        )
    }

    /// Nanoseconds since the collector was created (the `ts_nanos`
    /// epoch).
    pub fn now_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Sampling decision at a capture/ingest site: advance the batch
    /// ordinal and return a fresh deterministic trace ID for one batch
    /// in every `sample_every`. `None` while disabled or for unsampled
    /// batches.
    pub fn sample(&self) -> Option<u64> {
        let every = self.sample_every.load(Ordering::Relaxed);
        if every == 0 {
            return None;
        }
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(every) {
            return None;
        }
        // `| 1` keeps 0 reserved for "untraced".
        Some(mix(self.node_hash.load(Ordering::Relaxed), n) | 1)
    }

    /// Tag `batch` with a sampled trace ID (when the sampler picks it)
    /// and record the batch's birth span. The one-stop site for ingest
    /// paths that read batches directly (pcap feed loops): capture
    /// threads that need the fill duration call
    /// [`sample`](Self::sample) + [`record`](Self::record) themselves.
    pub fn tag_batch(&self, batch: &mut RecordBatch, span: &'static str, site: &str) {
        if !self.is_enabled() {
            return;
        }
        if let Some(id) = self.sample() {
            batch.trace_id = id;
            self.record(id, span, site, batch.len() as u64, 0);
        }
    }

    /// The most recent trace ID a sink noted (0 = none). Window emits
    /// attach to this so a closed window joins the batch whose push
    /// closed it.
    pub fn last_trace_id(&self) -> u64 {
        self.last_id.load(Ordering::Relaxed)
    }

    /// Note that a sink just processed a batch carrying `trace_id`.
    #[inline]
    pub fn note_trace(&self, trace_id: u64) {
        self.last_id.store(trace_id, Ordering::Relaxed);
    }

    /// Record one span event against `trace_id`. `dur_nanos` is 0 for
    /// point events; `records` is whatever population the span covered.
    /// Costs one line render and two short uncontended mutex pushes —
    /// per batch, never per packet.
    pub fn record(&self, trace_id: u64, span: &'static str, site: &str, records: u64, dur_nanos: u64) {
        if trace_id == 0 || !self.is_enabled() {
            return;
        }
        let ts_nanos = self.now_nanos().saturating_sub(dur_nanos);
        let node = self.node.lock().unwrap().clone();
        let mut line = String::with_capacity(160);
        line.push_str("{\"type\":\"trace_span\",\"trace_id\":\"");
        line.push_str(&format!("{trace_id:016x}"));
        line.push_str("\",\"span\":\"");
        line.push_str(span);
        line.push_str("\",\"node\":\"");
        json_escape(&node, &mut line);
        line.push_str("\",\"site\":\"");
        json_escape(site, &mut line);
        line.push_str(&format!(
            "\",\"ts_nanos\":{ts_nanos},\"dur_nanos\":{dur_nanos},\"records\":{records}}}"
        ));
        {
            let mut fold = self.fold.lock().unwrap();
            match fold.iter_mut().find(|(s, _, _)| s == span) {
                Some((_, count, dur)) => {
                    *count += 1;
                    *dur += dur_nanos;
                }
                None => fold.push((span.to_string(), 1, dur_nanos)),
            }
        }
        self.push_event(TraceEvent { trace_id, line });
    }

    /// Ingest span events another process shipped over the wire (the
    /// payload of a `Trace` frame): one pre-rendered NDJSON line per
    /// event, stored verbatim so the emitting node's labels and
    /// timestamps survive the hop.
    pub fn ingest_foreign(&self, trace_id: u64, ndjson: &[u8]) {
        if !self.is_enabled() {
            return;
        }
        for line in String::from_utf8_lossy(ndjson).lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            self.push_event(TraceEvent {
                trace_id,
                line: line.to_string(),
            });
        }
    }

    fn push_event(&self, ev: TraceEvent) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        {
            let mut tail = self.tail.lock().unwrap();
            if tail.len() >= TAIL_CAP {
                tail.pop_front();
            }
            tail.push_back(ev.clone());
        }
        let mut events = self.events.lock().unwrap();
        if events.len() >= EVENT_CAP {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(ev);
    }

    /// Drain the export queue as NDJSON (one event per line, recording
    /// order). Empty string when nothing accumulated.
    pub fn drain_ndjson(&self) -> String {
        let mut events = self.events.lock().unwrap();
        let mut out = String::new();
        for ev in events.drain(..) {
            out.push_str(&ev.line);
            out.push('\n');
        }
        out
    }

    /// Drain only the events of `trace_id` from the export queue, as
    /// NDJSON — the payload a worker ships in a `Trace` frame just
    /// before the Records frame the ID annotates. Other traces' events
    /// stay queued.
    pub fn drain_trace_ndjson(&self, trace_id: u64) -> String {
        let mut events = self.events.lock().unwrap();
        let mut out = String::new();
        events.retain(|ev| {
            if ev.trace_id == trace_id {
                out.push_str(&ev.line);
                out.push('\n');
                false
            } else {
                true
            }
        });
        out
    }

    /// The `/debug/trace?n=K` payload: the last `n` distinct trace IDs
    /// in the live tail, each rendered as one NDJSON line
    /// `{"trace_id":"…","spans":[<events>]}`, oldest first.
    pub fn tail_ndjson(&self, n: usize) -> String {
        let tail = self.tail.lock().unwrap();
        let mut ids: Vec<u64> = Vec::new();
        for ev in tail.iter().rev() {
            if !ids.contains(&ev.trace_id) {
                ids.push(ev.trace_id);
                if ids.len() == n {
                    break;
                }
            }
        }
        ids.reverse();
        let mut out = String::new();
        for id in ids {
            out.push_str(&format!("{{\"trace_id\":\"{id:016x}\",\"spans\":["));
            let mut first = true;
            for ev in tail.iter().filter(|e| e.trace_id == id) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&ev.line);
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Fold the per-span latency totals into flamegraph "folded stacks"
    /// lines (`node;span dur_nanos_sum`), sorted by span name — the
    /// `--self-profile` output, ready for `flamegraph.pl` or speedscope.
    pub fn folded_stacks(&self) -> String {
        let node = self.node.lock().unwrap().clone();
        let mut fold = self.fold.lock().unwrap().clone();
        fold.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        for (span, count, dur) in fold {
            out.push_str(&format!("{node};{span} {dur} # count={count}\n"));
        }
        out
    }
}

// -------------------------------------------- legacy coarse span hooks --

/// A coarse timed span around an engine operation (merge, checkpoint,
/// drain); the pre-PR-10 verbose tier, kept for the `obs-trace` build.
/// With the feature on it emits `[obs] span=… elapsed_us=…` to stderr on
/// drop; off (the default) it is zero-sized and free.
#[cfg(feature = "obs-trace")]
pub struct Span {
    name: &'static str,
    start: Instant,
}

/// Open a coarse span around an operation (see [`Span`]).
#[cfg(feature = "obs-trace")]
#[must_use = "a span times until it is dropped"]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: Instant::now(),
    }
}

#[cfg(feature = "obs-trace")]
impl Drop for Span {
    fn drop(&mut self) {
        eprintln!(
            "[obs] span={} elapsed_us={}",
            self.name,
            self.start.elapsed().as_micros()
        );
    }
}

/// Emit one structured stderr event line (`obs-trace` builds only).
#[cfg(feature = "obs-trace")]
pub fn event(name: &'static str, detail: &str) {
    eprintln!("[obs] event={name} {detail}");
}

/// Zero-sized disabled span (default build).
#[cfg(not(feature = "obs-trace"))]
pub struct Span;

/// No-op; returns a zero-sized [`Span`] (default build).
#[cfg(not(feature = "obs-trace"))]
#[inline(always)]
pub fn span(_name: &'static str) -> Span {
    Span
}

/// No-op (default build).
#[cfg(not(feature = "obs-trace"))]
#[inline(always)]
pub fn event(_name: &'static str, _detail: &str) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let tc = TraceCollector::new();
        assert!(!tc.is_enabled());
        assert_eq!(tc.sample(), None);
        tc.record(7, spans::DISSECT, "x", 10, 5);
        let mut batch = RecordBatch::new();
        batch.push(1, 10, &[0u8; 10]);
        tc.tag_batch(&mut batch, spans::SOURCE_READ, "pcap:x");
        assert_eq!(batch.trace_id, 0);
        assert_eq!(tc.event_counts(), (0, 0));
        assert!(tc.drain_ndjson().is_empty());
    }

    #[test]
    fn trace_ids_are_deterministic_per_node_and_ordinal() {
        let a = TraceCollector::new();
        a.enable(1, "worker:box-a");
        let b = TraceCollector::new();
        b.enable(1, "worker:box-a");
        let ids_a: Vec<u64> = (0..4).map(|_| a.sample().unwrap()).collect();
        let ids_b: Vec<u64> = (0..4).map(|_| b.sample().unwrap()).collect();
        assert_eq!(ids_a, ids_b, "same node + ordinal → same IDs");
        assert!(ids_a.iter().all(|&id| id != 0));
        let other = TraceCollector::new();
        other.enable(1, "worker:box-b");
        assert_ne!(other.sample().unwrap(), ids_a[0], "nodes get distinct IDs");
    }

    #[test]
    fn sampling_period_skips_batches() {
        let tc = TraceCollector::new();
        tc.enable(4, "analyze");
        let picks: Vec<bool> = (0..8).map(|_| tc.sample().is_some()).collect();
        assert_eq!(
            picks,
            [true, false, false, false, true, false, false, false]
        );
    }

    #[test]
    fn event_lines_follow_the_pinned_schema() {
        let tc = TraceCollector::new();
        tc.enable(1, "worker:box-a");
        let id = tc.sample().unwrap();
        tc.record(id, spans::SOURCE_READ, "pcap:a.pcap", 1024, 830);
        let out = tc.drain_ndjson();
        let line = out.lines().next().unwrap();
        assert!(line.starts_with("{\"type\":\"trace_span\",\"trace_id\":\""));
        for key in [
            &format!("\"trace_id\":\"{id:016x}\"") as &str,
            "\"span\":\"source_read\"",
            "\"node\":\"worker:box-a\"",
            "\"site\":\"pcap:a.pcap\"",
            "\"ts_nanos\":",
            "\"dur_nanos\":830",
            "\"records\":1024",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        // Drained once: the export queue is empty, the tail still serves.
        assert!(tc.drain_ndjson().is_empty());
        assert!(tc.tail_ndjson(8).contains(&format!("{id:016x}")));
    }

    #[test]
    fn labels_are_json_escaped() {
        let tc = TraceCollector::new();
        tc.enable(1, "node\"with\\quirks");
        let id = tc.sample().unwrap();
        tc.record(id, spans::DISSECT, "pcap:odd\nname", 1, 0);
        let out = tc.drain_ndjson();
        assert!(out.contains("node\\\"with\\\\quirks"));
        assert!(out.contains("pcap:odd\\nname"));
    }

    #[test]
    fn per_trace_drain_leaves_other_traces_queued() {
        let tc = TraceCollector::new();
        tc.enable(1, "worker:box-a");
        let id1 = tc.sample().unwrap();
        let id2 = tc.sample().unwrap();
        tc.record(id1, spans::SOURCE_READ, "s", 8, 0);
        tc.record(id2, spans::SOURCE_READ, "s", 8, 0);
        tc.record(id1, spans::RING_ENQUEUE, "s", 8, 0);
        let one = tc.drain_trace_ndjson(id1);
        assert_eq!(one.lines().count(), 2);
        assert!(one.lines().all(|l| l.contains(&format!("{id1:016x}"))));
        let rest = tc.drain_ndjson();
        assert_eq!(rest.lines().count(), 1);
        assert!(rest.contains(&format!("{id2:016x}")));
    }

    #[test]
    fn foreign_events_survive_verbatim_and_stitch_by_id() {
        let worker = TraceCollector::new();
        worker.enable(1, "worker:box-a");
        let id = worker.sample().unwrap();
        worker.record(id, spans::SOURCE_READ, "pcap:a.pcap", 512, 100);
        worker.record(id, spans::FRAGMENT_ENCODE, "frag", 512, 50);
        let shipped = worker.drain_trace_ndjson(id);

        let merge = TraceCollector::new();
        merge.enable(1, "merge");
        merge.ingest_foreign(id, shipped.as_bytes());
        merge.record(id, spans::MERGE_DECODE, "worker:box-a", 512, 75);
        let stitched = merge.drain_ndjson();
        assert_eq!(stitched.lines().count(), 3);
        // Every line carries the one trace ID; node labels show both
        // sides of the hop.
        assert!(stitched
            .lines()
            .all(|l| l.contains(&format!("{id:016x}"))));
        assert!(stitched.contains("\"node\":\"worker:box-a\""));
        assert!(stitched.contains("\"node\":\"merge\""));
        // The tail groups them under one trace for /debug/trace.
        let tail = merge.tail_ndjson(4);
        assert_eq!(tail.lines().count(), 1);
        assert!(tail.contains("\"spans\":[{"));
    }

    #[test]
    fn export_queue_is_bounded_and_drops_are_counted() {
        let tc = TraceCollector::new();
        tc.enable(1, "analyze");
        let id = tc.sample().unwrap();
        for _ in 0..(EVENT_CAP + 10) {
            tc.record(id, spans::DISSECT, "s", 1, 0);
        }
        let (recorded, dropped) = tc.event_counts();
        assert_eq!(recorded, (EVENT_CAP + 10) as u64);
        assert_eq!(dropped, 10);
        assert_eq!(tc.drain_ndjson().lines().count(), EVENT_CAP);
    }

    #[test]
    fn folded_stacks_aggregate_durations() {
        let tc = TraceCollector::new();
        tc.enable(1, "analyze");
        let id = tc.sample().unwrap();
        tc.record(id, spans::DISSECT, "s", 10, 300);
        tc.record(id, spans::DISSECT, "s", 10, 200);
        tc.record(id, spans::WINDOW_EMIT, "s", 1, 50);
        let folded = tc.folded_stacks();
        assert!(folded.contains("analyze;dissect 500 # count=2"));
        assert!(folded.contains("analyze;window_emit 50 # count=1"));
    }

    #[test]
    fn window_emit_attaches_to_last_noted_trace() {
        let tc = TraceCollector::new();
        tc.enable(1, "analyze");
        assert_eq!(tc.last_trace_id(), 0);
        let id = tc.sample().unwrap();
        tc.note_trace(id);
        assert_eq!(tc.last_trace_id(), id);
    }

    #[test]
    fn legacy_span_stubs_still_compile() {
        let _s = span("test");
        event("test", "detail=1");
    }
}
