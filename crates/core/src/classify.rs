//! Packet-type accounting — the machinery behind Tables 2 and 3.
//!
//! Counts packets and bytes per Zoom media-encapsulation type and per
//! (media type, RTP payload type) combination, and renders the same rows
//! the paper reports: type value, packet type label, payload offset, and
//! the percentage of packets and bytes.

use std::collections::HashMap;
use zoom_wire::zoom::{MediaType, RtpPayloadKind};

/// Running (packets, bytes) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Packets counted.
    pub packets: u64,
    /// IP-layer bytes counted.
    pub bytes: u64,
}

impl Counts {
    fn add(&mut self, bytes: usize) {
        self.packets += 1;
        self.bytes += bytes as u64;
    }
}

/// One row of a rendered table.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Row key (type value or media type).
    pub label: String,
    /// Human-readable description.
    pub detail: String,
    /// Percentage of all packets.
    pub packets_pct: f64,
    /// Percentage of all bytes.
    pub bytes_pct: f64,
}

/// Accumulates the classification tables.
#[derive(Debug, Default)]
pub struct Classifier {
    total: Counts,
    by_media_type: HashMap<u8, Counts>,
    by_payload_kind: HashMap<(MediaType, u8), Counts>,
}

impl Classifier {
    /// Fresh counters.
    pub fn new() -> Classifier {
        Classifier::default()
    }

    /// Count one Zoom packet of `media_type` (and RTP payload type `pt`
    /// when it is a media packet) of total IP length `ip_len`.
    pub fn record(&mut self, media_type: MediaType, pt: Option<u8>, ip_len: usize) {
        self.total.add(ip_len);
        self.by_media_type
            .entry(media_type.to_byte())
            .or_default()
            .add(ip_len);
        if let Some(pt) = pt {
            self.by_payload_kind
                .entry((media_type, pt))
                .or_default()
                .add(ip_len);
        }
    }

    /// Total packets seen.
    pub fn total(&self) -> Counts {
        self.total
    }

    /// Fold another classifier's counters into this one (sharded merge:
    /// every counter is a plain sum, so shard-local accounting followed by
    /// one merge equals sequential accounting).
    pub(crate) fn merge(&mut self, other: &Classifier) {
        self.total.packets += other.total.packets;
        self.total.bytes += other.total.bytes;
        for (&t, c) in &other.by_media_type {
            let e = self.by_media_type.entry(t).or_default();
            e.packets += c.packets;
            e.bytes += c.bytes;
        }
        for (&k, c) in &other.by_payload_kind {
            let e = self.by_payload_kind.entry(k).or_default();
            e.packets += c.packets;
            e.bytes += c.bytes;
        }
    }

    /// Fraction of packets successfully decoded as one of the five known
    /// media-encapsulation types (the paper: 90.03 % pkts, 94.5 % bytes).
    pub fn decoded_fraction(&self) -> (f64, f64) {
        let known = [13u8, 15, 16, 33, 34];
        let mut pkts = 0u64;
        let mut bytes = 0u64;
        for t in known {
            if let Some(c) = self.by_media_type.get(&t) {
                pkts += c.packets;
                bytes += c.bytes;
            }
        }
        (
            pkts as f64 / self.total.packets.max(1) as f64,
            bytes as f64 / self.total.bytes.max(1) as f64,
        )
    }

    /// Table 2: media-encapsulation type values with offsets and shares,
    /// sorted by packet share descending.
    pub fn table2(&self) -> Vec<TableRow> {
        let mut rows: Vec<TableRow> = self
            .by_media_type
            .iter()
            .filter(|(t, _)| [13u8, 15, 16, 33, 34].contains(t))
            .map(|(&t, c)| {
                let mt = MediaType::from_byte(t);
                TableRow {
                    label: format!("{t}"),
                    detail: format!(
                        "{} (offset {})",
                        mt.label(),
                        mt.payload_offset().unwrap_or(0)
                    ),
                    packets_pct: 100.0 * c.packets as f64 / self.total.packets.max(1) as f64,
                    bytes_pct: 100.0 * c.bytes as f64 / self.total.bytes.max(1) as f64,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.packets_pct.total_cmp(&a.packets_pct));
        rows
    }

    /// Table 3: RTP payload types per media type, sorted by packet share.
    pub fn table3(&self) -> Vec<TableRow> {
        let mut rows: Vec<TableRow> = self
            .by_payload_kind
            .iter()
            .map(|(&(mt, pt), c)| {
                let kind = RtpPayloadKind::classify(mt, pt);
                TableRow {
                    label: format!("{} ({})", media_label(mt), mt.to_byte()),
                    detail: format!("PT {pt} — {}", kind.description()),
                    packets_pct: 100.0 * c.packets as f64 / self.total.packets.max(1) as f64,
                    bytes_pct: 100.0 * c.bytes as f64 / self.total.bytes.max(1) as f64,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.packets_pct.total_cmp(&a.packets_pct));
        rows
    }

    /// Share of a specific (media type, payload type) pair.
    pub fn share(&self, mt: MediaType, pt: u8) -> (f64, f64) {
        match self.by_payload_kind.get(&(mt, pt)) {
            Some(c) => (
                100.0 * c.packets as f64 / self.total.packets.max(1) as f64,
                100.0 * c.bytes as f64 / self.total.bytes.max(1) as f64,
            ),
            None => (0.0, 0.0),
        }
    }
}

fn media_label(mt: MediaType) -> &'static str {
    match mt {
        MediaType::Video => "Video",
        MediaType::Audio => "Audio",
        MediaType::ScreenShare => "Screen Share",
        MediaType::RtcpSr => "RTCP SR",
        MediaType::RtcpSrSdes => "RTCP SR+SDES",
        MediaType::Other(_) => "Other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_sum_correctly() {
        let mut c = Classifier::new();
        for _ in 0..62 {
            c.record(MediaType::Video, Some(98), 1_200);
        }
        for _ in 0..26 {
            c.record(MediaType::Audio, Some(112), 150);
        }
        for _ in 0..4 {
            c.record(MediaType::ScreenShare, Some(99), 900);
        }
        for _ in 0..8 {
            c.record(MediaType::Other(30), None, 100);
        }
        let t2 = c.table2();
        let pkt_sum: f64 = t2.iter().map(|r| r.packets_pct).sum();
        assert!((pkt_sum - 92.0).abs() < 1e-9);
        // Video first (largest share).
        assert!(t2[0].detail.contains("Video"));
        let (dp, db) = c.decoded_fraction();
        assert!((dp - 0.92).abs() < 1e-9);
        assert!(db > 0.97); // control packets are tiny
    }

    #[test]
    fn table3_tracks_payload_types() {
        let mut c = Classifier::new();
        c.record(MediaType::Video, Some(98), 1_000);
        c.record(MediaType::Video, Some(110), 800);
        c.record(MediaType::Audio, Some(99), 110);
        let t3 = c.table3();
        assert_eq!(t3.len(), 3);
        assert!(t3
            .iter()
            .any(|r| r.detail.contains("PT 110") && r.detail.contains("FEC")));
        assert!(t3
            .iter()
            .any(|r| r.detail.contains("PT 99") && r.detail.contains("silent")));
        let (p, b) = c.share(MediaType::Video, 98);
        assert!(p > 30.0 && b > 50.0);
        assert_eq!(c.share(MediaType::Video, 42), (0.0, 0.0));
    }

    #[test]
    fn empty_classifier_is_sane() {
        let c = Classifier::new();
        assert!(c.table2().is_empty());
        assert_eq!(c.decoded_fraction(), (0.0, 0.0));
    }
}
