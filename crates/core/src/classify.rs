//! Packet-type accounting — the machinery behind Tables 2, 3, and the
//! cross-family Table-6-style breakdown.
//!
//! Counts packets and bytes per protocol family, per Zoom
//! media-encapsulation type, and per (media type, RTP payload type)
//! combination, and renders the same rows the paper reports: type value,
//! packet type label, payload offset, and the percentage of packets and
//! bytes. Tables 2 and 3 are Zoom-family tables by definition (they
//! describe the ZME encapsulation); [`Classifier::table6`] breaks media
//! down per family for multi-family traces.

use std::collections::HashMap;
use zoom_wire::family::{FamilyId, ALL_FAMILIES, FAMILY_COUNT};
use zoom_wire::zoom::{MediaType, RtpPayloadKind};

/// Running (packets, bytes) pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Packets counted.
    pub packets: u64,
    /// IP-layer bytes counted.
    pub bytes: u64,
}

impl Counts {
    fn add(&mut self, bytes: usize) {
        self.packets += 1;
        self.bytes += bytes as u64;
    }
}

/// One row of a rendered table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Row key (type value or media type).
    pub label: String,
    /// Human-readable description.
    pub detail: String,
    /// Percentage of all packets.
    pub packets_pct: f64,
    /// Percentage of all bytes.
    pub bytes_pct: f64,
}

/// Accumulates the classification tables.
#[derive(Debug, Default)]
pub struct Classifier {
    total: Counts,
    by_family: [Counts; FAMILY_COUNT],
    /// Zoom family only: ZME type byte → counts (Table 2).
    by_media_type: HashMap<u8, Counts>,
    /// Zoom family only: (media type, RTP PT) → counts (Table 3).
    by_payload_kind: HashMap<(MediaType, u8), Counts>,
    /// All families: (family index, media type byte) → counts (Table 6).
    by_family_media: HashMap<(usize, u8), Counts>,
}

impl Classifier {
    /// Fresh counters.
    pub fn new() -> Classifier {
        Classifier::default()
    }

    /// Count one classified packet of `media_type` (and RTP payload type
    /// `pt` when it is a media packet) of total IP length `ip_len`, under
    /// `family`. The Zoom-specific tables (2 and 3) only accumulate Zoom
    /// packets; every family feeds the totals and the Table-6 breakdown.
    pub fn record(&mut self, family: FamilyId, media_type: MediaType, pt: Option<u8>, ip_len: usize) {
        self.total.add(ip_len);
        self.by_family[family.index()].add(ip_len);
        self.by_family_media
            .entry((family.index(), media_type.to_byte()))
            .or_default()
            .add(ip_len);
        if family != FamilyId::Zoom {
            return;
        }
        self.by_media_type
            .entry(media_type.to_byte())
            .or_default()
            .add(ip_len);
        if let Some(pt) = pt {
            self.by_payload_kind
                .entry((media_type, pt))
                .or_default()
                .add(ip_len);
        }
    }

    /// Total packets seen (all families).
    pub fn total(&self) -> Counts {
        self.total
    }

    /// Packets and bytes classified under `family`.
    pub fn family_counts(&self, family: FamilyId) -> Counts {
        self.by_family[family.index()]
    }

    /// The Table-6-style cross-family rows for reports: empty when only
    /// Zoom traffic was classified (keeping Zoom-only report JSON
    /// byte-identical), the full [`Classifier::table6`] otherwise.
    pub fn family_table(&self) -> Vec<TableRow> {
        if self.has_non_zoom_family() {
            self.table6()
        } else {
            Vec::new()
        }
    }

    /// Whether any packet outside the Zoom family was classified. Reports
    /// stay byte-identical on Zoom-only traces by gating the family
    /// sections on this.
    pub fn has_non_zoom_family(&self) -> bool {
        ALL_FAMILIES
            .iter()
            .any(|&f| f != FamilyId::Zoom && self.by_family[f.index()].packets > 0)
    }

    /// Fold another classifier's counters into this one (sharded merge:
    /// every counter is a plain sum, so shard-local accounting followed by
    /// one merge equals sequential accounting).
    pub(crate) fn merge(&mut self, other: &Classifier) {
        self.total.packets += other.total.packets;
        self.total.bytes += other.total.bytes;
        for (mine, theirs) in self.by_family.iter_mut().zip(other.by_family.iter()) {
            mine.packets += theirs.packets;
            mine.bytes += theirs.bytes;
        }
        for (&t, c) in &other.by_media_type {
            let e = self.by_media_type.entry(t).or_default();
            e.packets += c.packets;
            e.bytes += c.bytes;
        }
        for (&k, c) in &other.by_payload_kind {
            let e = self.by_payload_kind.entry(k).or_default();
            e.packets += c.packets;
            e.bytes += c.bytes;
        }
        for (&k, c) in &other.by_family_media {
            let e = self.by_family_media.entry(k).or_default();
            e.packets += c.packets;
            e.bytes += c.bytes;
        }
    }

    /// Fraction of packets successfully decoded as one of the five known
    /// media-encapsulation types (the paper: 90.03 % pkts, 94.5 % bytes).
    pub fn decoded_fraction(&self) -> (f64, f64) {
        let known = [13u8, 15, 16, 33, 34];
        let mut pkts = 0u64;
        let mut bytes = 0u64;
        for t in known {
            if let Some(c) = self.by_media_type.get(&t) {
                pkts += c.packets;
                bytes += c.bytes;
            }
        }
        (
            pkts as f64 / self.total.packets.max(1) as f64,
            bytes as f64 / self.total.bytes.max(1) as f64,
        )
    }

    /// Table 2: media-encapsulation type values with offsets and shares,
    /// sorted by packet share descending.
    pub fn table2(&self) -> Vec<TableRow> {
        let mut rows: Vec<TableRow> = self
            .by_media_type
            .iter()
            .filter(|(t, _)| [13u8, 15, 16, 33, 34].contains(t))
            .map(|(&t, c)| {
                let mt = MediaType::from_byte(t);
                TableRow {
                    label: format!("{t}"),
                    detail: format!(
                        "{} (offset {})",
                        mt.label(),
                        mt.payload_offset().unwrap_or(0)
                    ),
                    packets_pct: 100.0 * c.packets as f64 / self.total.packets.max(1) as f64,
                    bytes_pct: 100.0 * c.bytes as f64 / self.total.bytes.max(1) as f64,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.packets_pct.total_cmp(&a.packets_pct));
        rows
    }

    /// Table 3: RTP payload types per media type, sorted by packet share.
    pub fn table3(&self) -> Vec<TableRow> {
        let mut rows: Vec<TableRow> = self
            .by_payload_kind
            .iter()
            .map(|(&(mt, pt), c)| {
                let kind = RtpPayloadKind::classify(mt, pt);
                TableRow {
                    label: format!("{} ({})", media_label(mt), mt.to_byte()),
                    detail: format!("PT {pt} — {}", kind.description()),
                    packets_pct: 100.0 * c.packets as f64 / self.total.packets.max(1) as f64,
                    bytes_pct: 100.0 * c.bytes as f64 / self.total.bytes.max(1) as f64,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.packets_pct.total_cmp(&a.packets_pct));
        rows
    }

    /// Table-6-style cross-family breakdown: one row per (family, media
    /// type) with packet/byte shares of the whole classified load. Rows
    /// sort by family, then packet share descending — Zoom rows first,
    /// making the table a superset of the single-family view.
    pub fn table6(&self) -> Vec<TableRow> {
        let mut rows: Vec<(usize, TableRow)> = self
            .by_family_media
            .iter()
            .map(|(&(fi, t), c)| {
                let family = ALL_FAMILIES[fi];
                let mt = MediaType::from_byte(t);
                (
                    fi,
                    TableRow {
                        label: family.label().to_string(),
                        detail: media_label(mt).to_string(),
                        packets_pct: 100.0 * c.packets as f64 / self.total.packets.max(1) as f64,
                        bytes_pct: 100.0 * c.bytes as f64 / self.total.bytes.max(1) as f64,
                    },
                )
            })
            .collect();
        rows.sort_by(|(fa, a), (fb, b)| {
            fa.cmp(fb)
                .then(b.packets_pct.total_cmp(&a.packets_pct))
                .then(a.detail.cmp(&b.detail))
        });
        rows.into_iter().map(|(_, r)| r).collect()
    }

    /// Share of a specific (media type, payload type) pair.
    pub fn share(&self, mt: MediaType, pt: u8) -> (f64, f64) {
        match self.by_payload_kind.get(&(mt, pt)) {
            Some(c) => (
                100.0 * c.packets as f64 / self.total.packets.max(1) as f64,
                100.0 * c.bytes as f64 / self.total.bytes.max(1) as f64,
            ),
            None => (0.0, 0.0),
        }
    }
}

fn media_label(mt: MediaType) -> &'static str {
    match mt {
        MediaType::Video => "Video",
        MediaType::Audio => "Audio",
        MediaType::ScreenShare => "Screen Share",
        MediaType::RtcpSr => "RTCP SR",
        MediaType::RtcpSrSdes => "RTCP SR+SDES",
        MediaType::Other(_) => "Other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_sum_correctly() {
        let mut c = Classifier::new();
        for _ in 0..62 {
            c.record(FamilyId::Zoom, MediaType::Video, Some(98), 1_200);
        }
        for _ in 0..26 {
            c.record(FamilyId::Zoom, MediaType::Audio, Some(112), 150);
        }
        for _ in 0..4 {
            c.record(FamilyId::Zoom, MediaType::ScreenShare, Some(99), 900);
        }
        for _ in 0..8 {
            c.record(FamilyId::Zoom, MediaType::Other(30), None, 100);
        }
        let t2 = c.table2();
        let pkt_sum: f64 = t2.iter().map(|r| r.packets_pct).sum();
        assert!((pkt_sum - 92.0).abs() < 1e-9);
        // Video first (largest share).
        assert!(t2[0].detail.contains("Video"));
        let (dp, db) = c.decoded_fraction();
        assert!((dp - 0.92).abs() < 1e-9);
        assert!(db > 0.97); // control packets are tiny
    }

    #[test]
    fn table3_tracks_payload_types() {
        let mut c = Classifier::new();
        c.record(FamilyId::Zoom, MediaType::Video, Some(98), 1_000);
        c.record(FamilyId::Zoom, MediaType::Video, Some(110), 800);
        c.record(FamilyId::Zoom, MediaType::Audio, Some(99), 110);
        let t3 = c.table3();
        assert_eq!(t3.len(), 3);
        assert!(t3
            .iter()
            .any(|r| r.detail.contains("PT 110") && r.detail.contains("FEC")));
        assert!(t3
            .iter()
            .any(|r| r.detail.contains("PT 99") && r.detail.contains("silent")));
        let (p, b) = c.share(MediaType::Video, 98);
        assert!(p > 30.0 && b > 50.0);
        assert_eq!(c.share(MediaType::Video, 42), (0.0, 0.0));
    }

    #[test]
    fn empty_classifier_is_sane() {
        let c = Classifier::new();
        assert!(c.table2().is_empty());
        assert!(c.table6().is_empty());
        assert!(!c.has_non_zoom_family());
        assert_eq!(c.decoded_fraction(), (0.0, 0.0));
    }

    #[test]
    fn table6_splits_by_family_without_touching_zoom_tables() {
        let mut c = Classifier::new();
        for _ in 0..6 {
            c.record(FamilyId::Zoom, MediaType::Video, Some(98), 1_000);
        }
        for _ in 0..3 {
            c.record(FamilyId::Webrtc, MediaType::Video, Some(96), 1_200);
        }
        c.record(FamilyId::Webrtc, MediaType::Audio, Some(111), 120);

        assert!(c.has_non_zoom_family());
        assert_eq!(c.total().packets, 10);
        assert_eq!(c.family_counts(FamilyId::Zoom).packets, 6);
        assert_eq!(c.family_counts(FamilyId::Webrtc).packets, 4);
        // Zoom-specific tables (2/3) never see WebRTC packets.
        assert_eq!(c.table3().len(), 1);
        let t2_pkts: f64 = c.table2().iter().map(|r| r.packets_pct).sum();
        assert!((t2_pkts - 60.0).abs() < 1e-9);

        let t6 = c.table6();
        assert_eq!(t6.len(), 3);
        // Zoom rows first, then WebRTC rows by packet share.
        assert_eq!(t6[0].label, "zoom");
        assert_eq!(t6[1].label, "webrtc");
        assert_eq!(t6[1].detail, "Video");
        assert!((t6[1].packets_pct - 30.0).abs() < 1e-9);
        assert_eq!(t6[2].detail, "Audio");

        // Sharded merge equals sequential accounting.
        let mut a = Classifier::new();
        let mut b = Classifier::new();
        for _ in 0..6 {
            a.record(FamilyId::Zoom, MediaType::Video, Some(98), 1_000);
        }
        for _ in 0..3 {
            b.record(FamilyId::Webrtc, MediaType::Video, Some(96), 1_200);
        }
        b.record(FamilyId::Webrtc, MediaType::Audio, Some(111), 120);
        a.merge(&b);
        assert_eq!(a.total(), c.total());
        assert_eq!(a.family_counts(FamilyId::Webrtc), c.family_counts(FamilyId::Webrtc));
        assert_eq!(a.table6().len(), 3);
    }
}
