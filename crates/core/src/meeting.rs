//! Grouping media streams into meetings (§4.3, Figs. 8 & 9 of the paper).
//!
//! Zoom packets carry no meeting identifier, so meetings must be inferred
//! from flow properties and RTP headers, in two steps:
//!
//! **Step 1 — duplicate-stream detection.** The SFU forwards media without
//! rewriting RTP state, and P2P↔SFU transitions keep RTP state across the
//! 5-tuple change. A new (5-tuple, SSRC) stream whose first RTP timestamp
//! sits close to the last timestamp of an existing stream with the same
//! SSRC (but different 5-tuple) is therefore *the same media* and receives
//! the same unique stream id. Four features must all line up — time, SSRC,
//! sequence continuity, timestamp continuity — which is what makes the
//! match robust enough for RTT estimation (§4.3.1).
//!
//! **Step 2 — meeting assignment.** Mappings from unique stream id, client
//! IP, and client (IP, port) to meeting ids: a new stream joining any
//! existing mapping joins that meeting; matches to *several* meetings
//! merge them (union–find); no match opens a new meeting.
//!
//! Known limitations are inherited from the paper (Fig. 9): fully passive
//! participants outside the vantage are invisible, and campus-side NAT can
//! over-merge meetings.

use std::collections::HashSet;
use std::net::IpAddr;
use zoom_wire::flow::{Endpoint, FiveTuple};

use crate::fxhash::FxHashMap;

use crate::stream::StreamKey;

/// Matching thresholds for step 1.
#[derive(Debug, Clone, Copy)]
pub struct GroupingConfig {
    /// Max |Δ RTP timestamp| between a candidate's last timestamp and the
    /// new stream's first (≈ 55 s of 90 kHz video).
    pub max_ts_delta: u32,
    /// Max wall-clock silence of the candidate stream.
    pub max_idle_nanos: u64,
    /// Max |Δ sequence| between candidate's last and new stream's first.
    pub max_seq_delta: u16,
}

impl Default for GroupingConfig {
    fn default() -> Self {
        GroupingConfig {
            max_ts_delta: 5_000_000,
            max_idle_nanos: 120 * 1_000_000_000,
            max_seq_delta: 4_096,
        }
    }
}

impl GroupingConfig {
    /// Ablation: disable step 1 (duplicate-stream detection) entirely —
    /// every new stream gets a fresh unique id, so grouping falls back to
    /// the client-IP/endpoint mappings alone.
    pub fn without_step1() -> GroupingConfig {
        GroupingConfig {
            max_ts_delta: 0,
            max_idle_nanos: 0,
            max_seq_delta: 0,
        }
    }
}

/// What the grouper needs to know about a candidate stream (provided by
/// the stream tracker through a lookup closure).
#[derive(Debug, Clone, Copy)]
pub struct CandidateState {
    /// Dominant sub-stream's most recent RTP timestamp.
    pub last_rtp_ts: u32,
    /// Dominant sub-stream's most recent RTP sequence number.
    pub last_seq: u16,
    /// When the candidate last saw a packet, nanoseconds.
    pub last_seen: u64,
}

/// A reconstructed meeting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeetingReport {
    /// Canonical meeting id.
    pub id: u32,
    /// Unique media ids within the meeting (≈ active streams).
    pub stream_uids: Vec<u32>,
    /// Client endpoints observed (≈ visible participants × media).
    pub clients: HashSet<IpAddr>,
    /// Server/peer addresses involved.
    pub servers: HashSet<IpAddr>,
    /// Member streams.
    pub streams: Vec<StreamKey>,
    /// Estimated number of *visible, active* participants: distinct
    /// client IPs (NAT caveats apply — Fig. 9).
    pub participant_estimate: usize,
}

/// Union–find over meeting ids.
#[derive(Debug, Default)]
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn make(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        id
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Non-compressing find for read-only contexts.
    fn find_ro(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) -> u32 {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
            lo
        } else {
            ra
        }
    }
}

/// The two-step grouping heuristic.
pub struct MeetingGrouper {
    config: GroupingConfig,
    next_uid: u32,
    /// SSRC → streams carrying it (step-1 candidate index).
    by_ssrc: FxHashMap<u32, Vec<StreamKey>>,
    /// Per-stream: (unique id, meeting id as assigned).
    assignments: FxHashMap<StreamKey, (u32, u32)>,
    /// Step-2 mappings.
    by_uid: FxHashMap<u32, u32>,
    by_client_ip: FxHashMap<IpAddr, u32>,
    by_client_endpoint: FxHashMap<Endpoint, u32>,
    meetings: UnionFind,
    /// Meeting metadata accumulated at the canonical-at-insert id (merged
    /// at report time through the union-find).
    clients: FxHashMap<StreamKey, IpAddr>,
    servers: FxHashMap<StreamKey, IpAddr>,
}

impl MeetingGrouper {
    /// Grouper with default thresholds.
    pub fn new() -> MeetingGrouper {
        MeetingGrouper::with_config(GroupingConfig::default())
    }

    /// Grouper with custom thresholds.
    pub fn with_config(config: GroupingConfig) -> MeetingGrouper {
        MeetingGrouper {
            config,
            next_uid: 0,
            by_ssrc: FxHashMap::default(),
            assignments: FxHashMap::default(),
            by_uid: FxHashMap::default(),
            by_client_ip: FxHashMap::default(),
            by_client_endpoint: FxHashMap::default(),
            meetings: UnionFind::default(),
            clients: FxHashMap::default(),
            servers: FxHashMap::default(),
        }
    }

    /// Register a newly created stream.
    ///
    /// `client`/`server` are the two endpoints of the flow with the client
    /// side resolved by the caller (non-8801 side for server traffic,
    /// campus side for P2P). `lookup` exposes candidate streams' current
    /// state for the step-1 match.
    #[allow(clippy::too_many_arguments)]
    pub fn on_new_stream(
        &mut self,
        key: StreamKey,
        client: Endpoint,
        server: IpAddr,
        first_rtp_ts: u32,
        first_seq: u16,
        now: u64,
        lookup: impl Fn(&StreamKey) -> Option<CandidateState>,
    ) -> (u32, u32) {
        // ---- Step 1: find a duplicate of this media. ----
        let mut uid = None;
        if let Some(cands) = self.by_ssrc.get(&key.ssrc) {
            for cand_key in cands {
                if cand_key.flow == key.flow {
                    continue;
                }
                let Some(state) = lookup(cand_key) else {
                    continue;
                };
                if now.saturating_sub(state.last_seen) > self.config.max_idle_nanos {
                    continue;
                }
                let ts_delta = first_rtp_ts.wrapping_sub(state.last_rtp_ts) as i32;
                if ts_delta.unsigned_abs() > self.config.max_ts_delta {
                    continue;
                }
                let seq_delta = first_seq.wrapping_sub(state.last_seq) as i16;
                if seq_delta.unsigned_abs() > self.config.max_seq_delta {
                    continue;
                }
                uid = self.assignments.get(cand_key).map(|&(u, _)| u);
                if uid.is_some() {
                    break;
                }
            }
        }
        let uid = uid.unwrap_or_else(|| {
            let u = self.next_uid;
            self.next_uid += 1;
            u
        });

        // ---- Step 2: assign to a meeting. ----
        let mut matches: Vec<u32> = Vec::new();
        if let Some(&m) = self.by_uid.get(&uid) {
            matches.push(m);
        }
        if let Some(&m) = self.by_client_ip.get(&client.ip) {
            matches.push(m);
        }
        if let Some(&m) = self.by_client_endpoint.get(&client) {
            matches.push(m);
        }
        let meeting = match matches.first() {
            None => self.meetings.make(),
            Some(&first) => {
                let mut root = self.meetings.find(first);
                for &other in &matches[1..] {
                    root = self.meetings.union(root, other);
                }
                root
            }
        };
        self.by_uid.insert(uid, meeting);
        self.by_client_ip.insert(client.ip, meeting);
        self.by_client_endpoint.insert(client, meeting);

        self.by_ssrc.entry(key.ssrc).or_default().push(key);
        self.assignments.insert(key, (uid, meeting));
        self.clients.insert(key, client.ip);
        self.servers.insert(key, server);
        (uid, meeting)
    }

    /// The unique id and meeting of a stream, if registered.
    pub fn assignment(&self, key: &StreamKey) -> Option<(u32, u32)> {
        self.assignments.get(key).copied()
    }

    /// The stream's meeting id after all union–find merges — the id
    /// reports use. [`assignment`](Self::assignment) returns the id as
    /// first assigned, which a later merge may have folded away.
    pub fn canonical_meeting(&self, key: &StreamKey) -> Option<u32> {
        self.assignments
            .get(key)
            .map(|&(_, m)| self.meetings.find_ro(m))
    }

    /// Number of distinct meetings after all merges.
    pub fn meeting_count(&self) -> usize {
        let roots: HashSet<u32> = self
            .assignments
            .values()
            .map(|&(_, m)| self.meetings.find_ro(m))
            .collect();
        roots.len()
    }

    /// Build the final meeting reports.
    pub fn reports(&self) -> Vec<MeetingReport> {
        let mut by_root: FxHashMap<u32, MeetingReport> = FxHashMap::default();
        let assignments: Vec<(StreamKey, u32, u32)> = self
            .assignments
            .iter()
            .map(|(k, &(u, m))| (*k, u, m))
            .collect();
        for (key, uid, m) in assignments {
            let root = self.meetings.find_ro(m);
            let report = by_root.entry(root).or_insert_with(|| MeetingReport {
                id: root,
                stream_uids: Vec::new(),
                clients: HashSet::new(),
                servers: HashSet::new(),
                streams: Vec::new(),
                participant_estimate: 0,
            });
            if !report.stream_uids.contains(&uid) {
                report.stream_uids.push(uid);
            }
            if let Some(&c) = self.clients.get(&key) {
                report.clients.insert(c);
            }
            if let Some(&s) = self.servers.get(&key) {
                report.servers.insert(s);
            }
            report.streams.push(key);
        }
        let mut reports: Vec<MeetingReport> = by_root
            .into_values()
            .map(|mut r| {
                r.participant_estimate = r.clients.len();
                r.streams.sort();
                // `assignments` iterates in HashMap order; sort the uid
                // list so reports are identical run-to-run (and between
                // the sequential and sharded pipelines).
                r.stream_uids.sort_unstable();
                r
            })
            .collect();
        reports.sort_by_key(|r| r.id);
        reports
    }
}

impl Default for MeetingGrouper {
    fn default() -> Self {
        Self::new()
    }
}

/// Resolve the client endpoint of a flow: the side that is *not* the
/// well-known Zoom server port; `None` when neither side is (P2P — the
/// caller must decide using campus membership).
pub fn client_endpoint_of(flow: &FiveTuple) -> Option<(Endpoint, IpAddr)> {
    if flow.dst_port == zoom_wire::zoom::ZOOM_SFU_PORT {
        Some((flow.src(), flow.dst_ip))
    } else if flow.src_port == zoom_wire::zoom::ZOOM_SFU_PORT {
        Some((flow.dst(), flow.src_ip))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use zoom_wire::ipv4::Protocol;

    const SEC: u64 = 1_000_000_000;

    fn key(src: [u8; 4], sport: u16, dst: [u8; 4], dport: u16, ssrc: u32) -> StreamKey {
        StreamKey {
            flow: FiveTuple {
                src_ip: IpAddr::V4(Ipv4Addr::from(src)),
                dst_ip: IpAddr::V4(Ipv4Addr::from(dst)),
                src_port: sport,
                dst_port: dport,
                protocol: Protocol::Udp,
            },
            ssrc,
        }
    }

    const SFU: [u8; 4] = [170, 114, 0, 1];

    fn ep(ip: [u8; 4], port: u16) -> Endpoint {
        Endpoint::new(IpAddr::V4(Ipv4Addr::from(ip)), port)
    }

    #[test]
    fn copies_share_unique_id_and_meeting() {
        let mut g = MeetingGrouper::new();
        // Uplink from client 1.
        let up = key([10, 8, 0, 1], 50_000, SFU, 8801, 0x21);
        let (uid_up, m_up) = g.on_new_stream(
            up,
            ep([10, 8, 0, 1], 50_000),
            up.flow.dst_ip,
            1_000,
            10,
            0,
            |_| None,
        );
        // Downlink copy toward client 2, 50 ms later, same SSRC, close
        // RTP state.
        let down = key(SFU, 8801, [10, 8, 0, 2], 51_000, 0x21);
        let state = CandidateState {
            last_rtp_ts: 4_000,
            last_seq: 12,
            last_seen: 40_000_000,
        };
        let (uid_down, m_down) = g.on_new_stream(
            down,
            ep([10, 8, 0, 2], 51_000),
            down.flow.src_ip,
            4_060,
            13,
            50_000_000,
            |k| if *k == up { Some(state) } else { None },
        );
        assert_eq!(uid_up, uid_down);
        assert_eq!(g.meetings.find(m_up), g.meetings.find(m_down));
        assert_eq!(g.meeting_count(), 1);
        let reports = g.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].participant_estimate, 2);
    }

    #[test]
    fn same_ssrc_far_timestamps_is_different_media() {
        let mut g = MeetingGrouper::new();
        let a = key([10, 8, 0, 1], 50_000, SFU, 8801, 0x21);
        g.on_new_stream(
            a,
            ep([10, 8, 0, 1], 50_000),
            a.flow.dst_ip,
            1_000,
            1,
            0,
            |_| None,
        );
        // Same SSRC in a *different meeting*: timestamps nowhere near.
        let b = key([10, 8, 9, 9], 52_000, [170, 114, 0, 7], 8801, 0x21);
        let state = CandidateState {
            last_rtp_ts: 1_000,
            last_seq: 1,
            last_seen: 0,
        };
        let (uid_b, _) = g.on_new_stream(
            b,
            ep([10, 8, 9, 9], 52_000),
            b.flow.dst_ip,
            900_000_000,
            1,
            SEC,
            |k| if *k == a { Some(state) } else { None },
        );
        assert_eq!(uid_b, 1); // fresh uid
        assert_eq!(g.meeting_count(), 2);
    }

    #[test]
    fn p2p_transition_joins_meeting_via_uid() {
        let mut g = MeetingGrouper::new();
        // SFU-mode stream.
        let sfu = key([10, 8, 0, 1], 50_000, SFU, 8801, 0x30);
        g.on_new_stream(
            sfu,
            ep([10, 8, 0, 1], 50_000),
            sfu.flow.dst_ip,
            5_000,
            100,
            0,
            |_| None,
        );
        // After the P2P switch: new ports, new peer address, same RTP
        // state → step 1 links them; the meeting follows the uid.
        let p2p = key([10, 8, 0, 1], 61_000, [98, 7, 6, 5], 62_000, 0x30);
        let state = CandidateState {
            last_rtp_ts: 95_000,
            last_seq: 160,
            last_seen: 20 * SEC,
        };
        let (_, _) = g.on_new_stream(
            p2p,
            ep([10, 8, 0, 1], 61_000),
            IpAddr::V4(Ipv4Addr::from([98, 7, 6, 5])),
            95_500,
            161,
            21 * SEC,
            |k| if *k == sfu { Some(state) } else { None },
        );
        assert_eq!(g.meeting_count(), 1);
    }

    #[test]
    fn client_ip_merges_streams_without_rtp_link() {
        let mut g = MeetingGrouper::new();
        // Audio and video from the same client: different SSRCs, no RTP
        // continuity — the client-IP mapping joins them.
        let audio = key([10, 8, 0, 1], 50_000, SFU, 8801, 0x20);
        let video = key([10, 8, 0, 1], 50_001, SFU, 8801, 0x21);
        g.on_new_stream(
            audio,
            ep([10, 8, 0, 1], 50_000),
            audio.flow.dst_ip,
            1,
            1,
            0,
            |_| None,
        );
        g.on_new_stream(
            video,
            ep([10, 8, 0, 1], 50_001),
            video.flow.dst_ip,
            2,
            2,
            0,
            |_| None,
        );
        assert_eq!(g.meeting_count(), 1);
    }

    #[test]
    fn multiple_matches_merge_meetings() {
        let mut g = MeetingGrouper::new();
        // Two separate meetings form...
        let a = key([10, 8, 0, 1], 50_000, SFU, 8801, 0x20);
        let b = key([10, 8, 0, 2], 51_000, SFU, 8801, 0x24);
        g.on_new_stream(a, ep([10, 8, 0, 1], 50_000), a.flow.dst_ip, 1, 1, 0, |_| {
            None
        });
        g.on_new_stream(b, ep([10, 8, 0, 2], 51_000), b.flow.dst_ip, 2, 2, 0, |_| {
            None
        });
        assert_eq!(g.meeting_count(), 2);
        // ...until a downlink copy of A's media toward client 2 connects
        // them (uid match + client-IP match to different meetings).
        let down = key(SFU, 8801, [10, 8, 0, 2], 51_500, 0x20);
        let state = CandidateState {
            last_rtp_ts: 1,
            last_seq: 1,
            last_seen: 0,
        };
        g.on_new_stream(
            down,
            ep([10, 8, 0, 2], 51_500),
            down.flow.src_ip,
            5,
            3,
            SEC,
            |k| if *k == a { Some(state) } else { None },
        );
        assert_eq!(g.meeting_count(), 1);
        let reports = g.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].streams.len(), 3);
    }

    #[test]
    fn nat_limitation_documented_behaviour() {
        // Two actually-distinct meetings behind one NAT IP are merged —
        // the Fig. 9 limitation, reproduced deliberately.
        let mut g = MeetingGrouper::new();
        let a = key([10, 8, 7, 7], 40_000, SFU, 8801, 0x20);
        let b = key([10, 8, 7, 7], 41_000, [170, 114, 9, 9], 8801, 0x30);
        g.on_new_stream(a, ep([10, 8, 7, 7], 40_000), a.flow.dst_ip, 1, 1, 0, |_| {
            None
        });
        g.on_new_stream(b, ep([10, 8, 7, 7], 41_000), b.flow.dst_ip, 2, 2, 0, |_| {
            None
        });
        assert_eq!(g.meeting_count(), 1);
    }

    #[test]
    fn client_endpoint_resolution() {
        let up = key([10, 8, 0, 1], 50_000, SFU, 8801, 1).flow;
        let (c, s) = client_endpoint_of(&up).unwrap();
        assert_eq!(c.port, 50_000);
        assert_eq!(s, up.dst_ip);
        let down = up.reversed();
        let (c2, _) = client_endpoint_of(&down).unwrap();
        assert_eq!(c2, c);
        let p2p = key([10, 8, 0, 1], 61_000, [9, 9, 9, 9], 62_000, 1).flow;
        assert!(client_endpoint_of(&p2p).is_none());
    }
}
