//! Simulated time and the discrete-event queue.
//!
//! All simulator time is `u64` nanoseconds from trace start — deterministic
//! and free of wall-clock dependencies, so every experiment is exactly
//! reproducible from its seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Nanoseconds since trace start.
pub type Nanos = u64;

/// One second in nanoseconds.
pub const SEC: Nanos = 1_000_000_000;
/// One millisecond in nanoseconds.
pub const MS: Nanos = 1_000_000;
/// One microsecond in nanoseconds.
pub const US: Nanos = 1_000;

/// Convert nanoseconds to floating-point seconds (for reports).
pub fn secs(t: Nanos) -> f64 {
    t as f64 / SEC as f64
}

/// Convert nanoseconds to floating-point milliseconds (for reports).
pub fn millis(t: Nanos) -> f64 {
    t as f64 / MS as f64
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// Ties are broken by insertion order so that simulations are fully
/// deterministic even when many events share a timestamp (e.g. packets of
/// one frame sent back-to-back).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Nanos, u64, EventBox<E>)>>,
    counter: u64,
}

// BinaryHeap needs Ord on the payload; events themselves are not ordered,
// so wrap them in a box that always compares equal and let (time, counter)
// decide.
#[derive(Debug)]
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            counter: 0,
        }
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: Nanos, event: E) {
        self.counter += 1;
        self.heap.push(Reverse((at, self.counter, EventBox(event))));
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, E)> {
        self.heap.pop().map(|Reverse((t, _, e))| (t, e.0))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(5, 1);
        q.push(5, 2);
        q.push(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(secs(1_500_000_000), 1.5);
        assert_eq!(millis(2_000_000), 2.0);
        assert_eq!(SEC, 1000 * MS);
        assert_eq!(MS, 1000 * US);
    }
}
