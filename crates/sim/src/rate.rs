//! Sender-side rate adaptation.
//!
//! Prior controlled-experiment studies cited by the paper (Lee et al.)
//! found that Zoom adapts to congestion primarily by reducing the
//! *sender's* bit rate and frame rate — keyed on **jitter**, not absolute
//! delay — rather than thinning streams at the SFU. This controller
//! reproduces that behaviour: it watches a jitter estimate of the uplink,
//! halves the frame rate (switching the encoder to
//! [`crate::codec::VideoMode::Reduced`]) when jitter stays high, and
//! recovers conservatively once conditions clear.

use crate::codec::{VideoEncoder, VideoMode};
use crate::time::{Nanos, MS, SEC};

/// Jitter-driven video rate controller.
#[derive(Debug, Clone)]
pub struct RateController {
    /// RFC 3550-style smoothed jitter estimate of the uplink, nanoseconds.
    jitter_estimate: f64,
    /// Slow-moving baseline of the same signal: steady access-link jitter
    /// (wifi) is the path's normal state, not congestion; only a *rise*
    /// above baseline triggers adaptation.
    jitter_baseline: f64,
    /// Expected inter-departure delta for the last packet (for the jitter
    /// update).
    last_transit: Option<i64>,
    /// Observations so far (drives the baseline warm-up).
    observations: u64,
    /// Jitter above this for `degrade_after` → reduce.
    degrade_threshold: Nanos,
    /// Jitter below this for `recover_after` → restore.
    recover_threshold: Nanos,
    degrade_after: Nanos,
    recover_after: Nanos,
    /// Time the jitter first crossed the degrade threshold.
    high_since: Option<Nanos>,
    /// Time the jitter last fell below the recover threshold.
    low_since: Option<Nanos>,
    /// When a layout change (not the network) pinned the encoder to
    /// reduced mode, the controller leaves it alone.
    pinned_reduced: bool,
}

impl Default for RateController {
    fn default() -> Self {
        Self::new()
    }
}

impl RateController {
    /// Controller with Zoom-like reaction times: degrade after ~2 s of
    /// high jitter, recover after ~8 s of calm.
    pub fn new() -> RateController {
        RateController {
            jitter_estimate: 0.0,
            jitter_baseline: 0.0,
            last_transit: None,
            observations: 0,
            degrade_threshold: 8 * MS,
            recover_threshold: 3 * MS,
            degrade_after: 2 * SEC,
            recover_after: 8 * SEC,
            high_since: None,
            low_since: None,
            pinned_reduced: false,
        }
    }

    /// Pin the encoder to reduced mode for UI reasons (thumbnail view);
    /// the controller will not upgrade it.
    pub fn pin_reduced(&mut self, pinned: bool) {
        self.pinned_reduced = pinned;
    }

    /// Current smoothed jitter estimate in nanoseconds.
    pub fn jitter(&self) -> f64 {
        self.jitter_estimate
    }

    /// Feed one uplink observation: `sent_at` → `arrived_at` (at the SFU)
    /// for consecutive packets; applies the RFC 3550 recursion
    /// `J += (|D| − J) / 16`.
    pub fn observe(&mut self, sent_at: Nanos, arrived_at: Nanos) {
        let transit = arrived_at as i64 - sent_at as i64;
        if let Some(prev) = self.last_transit {
            let d = (transit - prev).unsigned_abs();
            self.jitter_estimate += (d as f64 - self.jitter_estimate) / 16.0;
            // The baseline learns the path's normal jitter quickly during
            // the first seconds of a call (Zoom probes the path at join),
            // then adapts ~1000× slower than the estimate — so steady
            // wifi jitter is the norm while a congestion burst stands out.
            let gain = if self.observations < 512 {
                64.0
            } else {
                16_384.0
            };
            self.jitter_baseline += (d as f64 - self.jitter_baseline) / gain;
            self.observations += 1;
        }
        self.last_transit = Some(transit);
    }

    /// Decide and apply the encoder mode; call about once per frame.
    /// Returns `true` when the mode changed.
    pub fn control(&mut self, now: Nanos, encoder: &mut VideoEncoder) -> bool {
        if self.pinned_reduced {
            if encoder.mode() != VideoMode::Reduced {
                encoder.set_mode(VideoMode::Reduced);
                return true;
            }
            return false;
        }
        // Compare against the path's own baseline: congestion is a rise,
        // not a level.
        let excess = self.jitter_estimate - self.jitter_baseline;
        let high = excess > self.degrade_threshold as f64;
        let low = excess < self.recover_threshold as f64;
        if high {
            self.low_since = None;
            let since = *self.high_since.get_or_insert(now);
            if encoder.mode() == VideoMode::Full && now - since >= self.degrade_after {
                encoder.set_mode(VideoMode::Reduced);
                return true;
            }
        } else {
            self.high_since = None;
            if low {
                let since = *self.low_since.get_or_insert(now);
                if encoder.mode() == VideoMode::Reduced && now - since >= self.recover_after {
                    encoder.set_mode(VideoMode::Full);
                    self.low_since = None;
                    return true;
                }
            } else {
                self.low_since = None;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder() -> VideoEncoder {
        VideoEncoder::new(600_000.0, 28.0, 1.0, 0)
    }

    /// Feed `n` packets with inter-send 10 ms and the given per-packet
    /// delay pattern.
    fn feed(rc: &mut RateController, start: Nanos, n: u64, delay: impl Fn(u64) -> Nanos) -> Nanos {
        let mut t = start;
        for i in 0..n {
            rc.observe(t, t + delay(i));
            t += 10 * MS;
        }
        t
    }

    #[test]
    fn stable_network_keeps_full_mode() {
        let mut rc = RateController::new();
        let mut enc = encoder();
        let end = feed(&mut rc, 0, 1000, |_| 20 * MS);
        assert!(!rc.control(end, &mut enc));
        assert_eq!(enc.mode(), VideoMode::Full);
        assert!(rc.jitter() < MS as f64);
    }

    #[test]
    fn sustained_jitter_degrades_then_recovers() {
        let mut rc = RateController::new();
        let mut enc = encoder();
        // Calm warm-up first: the baseline learns a quiet path (jitter
        // present from the very first packet would be learned as the
        // path's normal state instead).
        let mut t = feed(&mut rc, 0, 700, |_| 20 * MS);
        // Jittery: delays alternate 20 ms / 60 ms → |D| = 40 ms ≫ 8 ms.
        t = feed(
            &mut rc,
            t,
            50,
            |i| if i % 2 == 0 { 20 * MS } else { 60 * MS },
        );
        rc.control(t, &mut enc);
        // Keep jitter high past the 2 s hold-down.
        for _ in 0..10 {
            t = feed(
                &mut rc,
                t,
                50,
                |i| if i % 2 == 0 { 20 * MS } else { 60 * MS },
            );
            rc.control(t, &mut enc);
        }
        assert_eq!(enc.mode(), VideoMode::Reduced);

        // Calm again: recover after the 8 s hold-down.
        for _ in 0..40 {
            t = feed(&mut rc, t, 50, |_| 20 * MS);
            rc.control(t, &mut enc);
        }
        assert_eq!(enc.mode(), VideoMode::Full);
    }

    #[test]
    fn brief_spike_does_not_degrade() {
        let mut rc = RateController::new();
        let mut enc = encoder();
        // 0.5 s of jitter, then calm — below the 2 s hold-down.
        let t = feed(
            &mut rc,
            0,
            50,
            |i| if i % 2 == 0 { 20 * MS } else { 60 * MS },
        );
        rc.control(t, &mut enc);
        let t2 = feed(&mut rc, t, 500, |_| 20 * MS);
        rc.control(t2, &mut enc);
        assert_eq!(enc.mode(), VideoMode::Full);
    }

    #[test]
    fn pinned_reduced_wins() {
        let mut rc = RateController::new();
        let mut enc = encoder();
        rc.pin_reduced(true);
        assert!(rc.control(0, &mut enc));
        assert_eq!(enc.mode(), VideoMode::Reduced);
        // Perfect network; still reduced.
        let t = feed(&mut rc, 0, 2000, |_| 20 * MS);
        assert!(!rc.control(t, &mut enc));
        assert_eq!(enc.mode(), VideoMode::Reduced);
    }

    #[test]
    fn jitter_recursion_matches_rfc_form() {
        let mut rc = RateController::new();
        rc.observe(0, 20 * MS);
        rc.observe(10 * MS, 10 * MS + 36 * MS); // transit +16 ms
                                                // First difference: |16 ms| / 16 = 1 ms.
        assert!((rc.jitter() - MS as f64).abs() < 1.0);
    }
}
