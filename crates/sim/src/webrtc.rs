//! Native-WebRTC session generator: the cross-family ground truth for
//! the `webrtc` scenario.
//!
//! Unlike the Zoom scenarios (which model meetings through
//! [`crate::meeting::MeetingSim`]), a WebRTC session is a direct
//! client↔peer exchange with standards-track framing end to end:
//!
//! 1. **STUN binding** — request/response between the campus client and
//!    the peer (RFC 5389), which is also what registers the session with
//!    the capture filter's WebRTC stage.
//! 2. **DTLS handshake** — a short burst of DTLS 1.2 records
//!    (`ClientHello` onward), content types 20/22 with the 0xfe version
//!    bytes the wire-level [`zoom_wire::webrtc`] checks pin down.
//! 3. **DTLS-SRTP media** — standard RTP headers in the clear (RFC
//!    3711): Opus-style audio at 50 packets/s (payload type 111) and
//!    VP8-style video at 30 frames/s (payload type 96, 2–5 packets per
//!    frame, marker on the last packet, 90 kHz clock), both directions.
//! 4. **SRTCP sender reports** — packet type 200 once per second per
//!    direction, with everything past the first SSRC opaque.
//!
//! All sizes and counts derive from the seed, so a `(seed, duration)`
//! pair is fully reproducible across runs and shard counts.

use crate::time::{Nanos, MS as MSEC, SEC};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use zoom_wire::pcap::Record;
use zoom_wire::webrtc::{
    DtlsRepr, DTLS_APPLICATION_DATA, DTLS_CHANGE_CIPHER_SPEC, DTLS_HANDSHAKE, SRTP_AUTH_TAG_LEN,
};
use zoom_wire::{compose, rtp, stun};

/// Off-campus peer the campus clients call (a public STUN/media host,
/// deliberately outside the published Zoom networks).
pub const DEFAULT_PEER: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

/// Audio payload type (dynamic range, Opus by convention).
pub const AUDIO_PT: u8 = 111;

/// Video payload type (dynamic range, VP8 by convention).
pub const VIDEO_PT: u8 = 96;

/// SRTCP sender-report packet type (RFC 3550).
const SRTCP_SR: u8 = 200;

/// Configuration of one simulated WebRTC session.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Deterministic seed; every byte of the session derives from it.
    pub seed: u64,
    /// Campus-side client address.
    pub client: Ipv4Addr,
    /// Remote peer address.
    pub peer: Ipv4Addr,
    /// Client-side UDP port (single ICE candidate pair: media, STUN,
    /// and DTLS all multiplex on one 5-tuple, as RFC 7983 prescribes).
    pub client_port: u16,
    /// Peer-side UDP port.
    pub peer_port: u16,
    /// Session length.
    pub duration: Nanos,
}

impl SessionConfig {
    /// The standard single-session shape: one campus client calling
    /// [`DEFAULT_PEER`] for `duration`.
    pub fn single(seed: u64, duration: Nanos) -> SessionConfig {
        SessionConfig {
            seed,
            client: Ipv4Addr::new(10, 8, (seed >> 8) as u8, 2u8.wrapping_add(seed as u8)),
            peer: DEFAULT_PEER,
            client_port: 52_000 + (seed % 997) as u16,
            peer_port: 3478,
            duration,
        }
    }
}

/// A timestamped datagram payload before IP/Ethernet composition.
struct Event {
    ts: Nanos,
    uplink: bool,
    payload: Vec<u8>,
}

/// Generate the timestamp-sorted records of one WebRTC session.
pub fn session_records(cfg: SessionConfig) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eb_47c);
    let mut events: Vec<Event> = Vec::new();

    // --- STUN binding (connectivity check) -------------------------------
    let txid: [u8; 12] = core::array::from_fn(|i| (cfg.seed as u8).wrapping_add(i as u8));
    let req = stun::Repr {
        message_type: stun::MessageType::BindingRequest,
        transaction_id: txid,
        xor_mapped_address: None,
    };
    let mut buf = vec![0u8; req.buffer_len()];
    req.emit(&mut buf);
    events.push(Event {
        ts: 0,
        uplink: true,
        payload: buf,
    });
    let resp = stun::Repr {
        message_type: stun::MessageType::BindingSuccess,
        transaction_id: txid,
        xor_mapped_address: None,
    };
    let mut buf = vec![0u8; resp.buffer_len()];
    resp.emit(&mut buf);
    events.push(Event {
        ts: 20 * MSEC,
        uplink: false,
        payload: buf,
    });

    // --- DTLS handshake ---------------------------------------------------
    // ClientHello/ServerHello+certs/keys/Finished plus the change-cipher
    // records: six records over ~100 ms, alternating directions.
    let handshake = [
        (DTLS_HANDSHAKE, true, 180usize),  // ClientHello
        (DTLS_HANDSHAKE, false, 700),      // ServerHello..ServerHelloDone
        (DTLS_HANDSHAKE, true, 300),       // ClientKeyExchange
        (DTLS_CHANGE_CIPHER_SPEC, true, 1),
        (DTLS_CHANGE_CIPHER_SPEC, false, 1),
        (DTLS_HANDSHAKE, false, 60),       // Finished
    ];
    let mut seq: u64 = 0;
    for (i, (content_type, uplink, body_len)) in handshake.into_iter().enumerate() {
        let repr = DtlsRepr {
            content_type,
            version_minor: 0xfd, // DTLS 1.2
            epoch: u16::from(content_type == DTLS_CHANGE_CIPHER_SPEC && !uplink),
            sequence: seq,
            length: body_len as u16,
        };
        seq += 1;
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf);
        for b in &mut buf[zoom_wire::webrtc::DTLS_HEADER_LEN..] {
            *b = rng.gen();
        }
        events.push(Event {
            ts: 40 * MSEC + (i as Nanos) * 12 * MSEC,
            uplink,
            payload: buf,
        });
    }

    // One DTLS application-data record (e.g. an SCTP data channel probe)
    // so the application-data content type is exercised too.
    let appdata = DtlsRepr {
        content_type: DTLS_APPLICATION_DATA,
        version_minor: 0xfd,
        epoch: 1,
        sequence: seq,
        length: 48,
    };
    let mut buf = vec![0u8; appdata.buffer_len()];
    appdata.emit(&mut buf);
    for b in &mut buf[zoom_wire::webrtc::DTLS_HEADER_LEN..] {
        *b = rng.gen();
    }
    events.push(Event {
        ts: 150 * MSEC,
        uplink: true,
        payload: buf,
    });

    // --- SRTP media -------------------------------------------------------
    let media_start = 200 * MSEC;
    if cfg.duration > media_start {
        let media_len = cfg.duration - media_start;
        for uplink in [true, false] {
            let dir_bit = u32::from(uplink);
            let audio_ssrc = 0x5000_0000 | (cfg.seed as u32 & 0xFFFF) << 4 | dir_bit;
            let video_ssrc = 0x6000_0000 | (cfg.seed as u32 & 0xFFFF) << 4 | dir_bit;

            // Audio: 50 packets/s, 80-120 B encrypted payload, 48 kHz
            // clock (960 ticks per 20 ms frame).
            let mut audio_seq: u16 = rng.gen();
            let frames = media_len / (20 * MSEC);
            for n in 0..frames {
                let payload_len = rng.gen_range(80..=120);
                events.push(srtp_event(
                    media_start + n * 20 * MSEC,
                    uplink,
                    rtp::Repr {
                        marker: n == 0,
                        payload_type: AUDIO_PT,
                        sequence_number: audio_seq,
                        timestamp: (n as u32).wrapping_mul(960),
                        ssrc: audio_ssrc,
                        csrc_count: 0,
                        has_extension: false,
                    },
                    payload_len,
                    &mut rng,
                ));
                audio_seq = audio_seq.wrapping_add(1);
            }

            // Video: 30 frames/s on a 90 kHz clock, 2-5 packets per
            // frame, marker on the last packet of each frame.
            let mut video_seq: u16 = rng.gen();
            let frame_interval = SEC / 30;
            let frames = media_len / frame_interval;
            for n in 0..frames {
                let pkts = rng.gen_range(2..=5);
                let ts90k = ((n * frame_interval) / (SEC / 90_000)) as u32;
                for k in 0..pkts {
                    let payload_len = rng.gen_range(700..=1150);
                    events.push(srtp_event(
                        media_start + n * frame_interval + k * MSEC,
                        uplink,
                        rtp::Repr {
                            marker: k + 1 == pkts,
                            payload_type: VIDEO_PT,
                            sequence_number: video_seq,
                            timestamp: ts90k,
                            ssrc: video_ssrc,
                            csrc_count: 0,
                            has_extension: true,
                        },
                        payload_len,
                        &mut rng,
                    ));
                    video_seq = video_seq.wrapping_add(1);
                }
            }

            // SRTCP sender reports: one compound packet per second.
            for n in 0..media_len / SEC {
                events.push(srtcp_sr_event(
                    media_start + 500 * MSEC + n * SEC,
                    uplink,
                    video_ssrc,
                    &mut rng,
                ));
            }
        }
    }

    // --- compose ---------------------------------------------------------
    events.sort_by_key(|e| e.ts);
    events
        .into_iter()
        .map(|e| {
            let (src, dst, sport, dport) = if e.uplink {
                (cfg.client, cfg.peer, cfg.client_port, cfg.peer_port)
            } else {
                (cfg.peer, cfg.client, cfg.peer_port, cfg.client_port)
            };
            let data = compose::udp_ipv4_ethernet(src, dst, sport, dport, &e.payload);
            Record::full(e.ts, data)
        })
        .collect()
}

/// The `webrtc` scenario: a handful of concurrent campus WebRTC calls,
/// staggered so sessions overlap the way independent calls would.
pub fn scenario(seed: u64, duration: Nanos) -> Vec<Record> {
    let sessions = 3;
    let mut records: Vec<Record> = Vec::new();
    for i in 0..sessions {
        let offset = i * 2 * SEC;
        if duration <= offset {
            continue;
        }
        let cfg = SessionConfig::single(seed.wrapping_add(i * 101), duration - offset);
        records.extend(session_records(cfg).into_iter().map(|mut r| {
            r.ts_nanos += offset;
            r
        }));
    }
    records.sort_by_key(|r| r.ts_nanos);
    records
}

/// One SRTP packet: cleartext RTP header, random "encrypted" payload,
/// and the trailing auth tag.
fn srtp_event(ts: Nanos, uplink: bool, repr: rtp::Repr, payload_len: usize, rng: &mut StdRng) -> Event {
    let total = repr.header_len() + payload_len + SRTP_AUTH_TAG_LEN;
    let mut buf = vec![0u8; total];
    let mut pkt = rtp::Packet::new_unchecked(&mut buf[..]);
    repr.emit(&mut pkt);
    for b in &mut buf[repr.header_len()..] {
        *b = rng.gen();
    }
    Event {
        ts,
        uplink,
        payload: buf,
    }
}

/// One SRTCP sender report: a cleartext RTCP SR header + SSRC, then the
/// encrypted report body, SRTCP index, and auth tag.
fn srtcp_sr_event(ts: Nanos, uplink: bool, ssrc: u32, rng: &mut StdRng) -> Event {
    // SR with no report blocks: 6 th 32-bit words follow the first word.
    let words: u16 = 6;
    let first_len = (usize::from(words) + 1) * 4;
    let total = first_len + 4 + SRTP_AUTH_TAG_LEN; // + SRTCP index + tag
    let mut buf = vec![0u8; total];
    buf[0] = 2 << 6; // version 2, no padding, RC 0
    buf[1] = SRTCP_SR;
    buf[2..4].copy_from_slice(&words.to_be_bytes());
    buf[4..8].copy_from_slice(&ssrc.to_be_bytes());
    for b in &mut buf[8..] {
        *b = rng.gen();
    }
    Event {
        ts,
        uplink,
        payload: buf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_wire::webrtc::{classify, Pdu};

    fn udp_payload(rec: &Record) -> Vec<u8> {
        let ip = &rec.data[zoom_wire::ethernet::HEADER_LEN..];
        let ipp = zoom_wire::ipv4::Packet::new_checked(ip).unwrap();
        let u = zoom_wire::udp::Packet::new_checked(ipp.payload()).unwrap();
        u.payload().to_vec()
    }

    #[test]
    fn session_is_deterministic() {
        let a = session_records(SessionConfig::single(7, 3 * SEC));
        let b = session_records(SessionConfig::single(7, 3 * SEC));
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.data == y.data));
        let c = session_records(SessionConfig::single(8, 3 * SEC));
        assert!(a.iter().zip(&c).any(|(x, y)| x.data != y.data));
    }

    #[test]
    fn every_non_stun_payload_classifies_as_webrtc() {
        let records = session_records(SessionConfig::single(3, 2 * SEC));
        assert!(records.len() > 100, "too few records: {}", records.len());
        let mut dtls = 0;
        let mut srtp = 0;
        let mut srtcp = 0;
        for rec in &records {
            let payload = udp_payload(rec);
            if zoom_wire::stun::looks_like_stun(&payload) {
                continue;
            }
            match classify(&payload).expect("generated payload must classify") {
                Pdu::Dtls(_) => dtls += 1,
                Pdu::Srtp(s) => {
                    assert!(matches!(s.rtp.payload_type, AUDIO_PT | VIDEO_PT));
                    srtp += 1;
                }
                Pdu::Srtcp(s) => {
                    assert_eq!(s.packet_type, 200);
                    srtcp += 1;
                }
                _ => unreachable!("non-exhaustive Pdu grew a variant"),
            }
        }
        assert!(dtls >= 7, "dtls records: {dtls}");
        assert!(srtp > 100, "srtp packets: {srtp}");
        assert!(srtcp >= 2, "srtcp packets: {srtcp}");
    }

    #[test]
    fn timestamps_sorted_and_sessions_overlap() {
        let records = scenario(1, 6 * SEC);
        assert!(records.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos));
        // Three sessions staggered by 2 s inside 6 s must interleave:
        // more than one client address appears.
        let mut clients = std::collections::HashSet::new();
        for rec in &records {
            let ip = zoom_wire::ipv4::Packet::new_checked(
                &rec.data[zoom_wire::ethernet::HEADER_LEN..],
            )
            .unwrap();
            let (src, dst) = (ip.src_addr(), ip.dst_addr());
            let campus = if src.octets()[0] == 10 { src } else { dst };
            clients.insert(campus);
        }
        assert!(clients.len() >= 2, "clients: {clients:?}");
    }
}
