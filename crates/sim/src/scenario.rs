//! Canned scenarios used by examples, tests, and the experiment harness.
//!
//! Each function returns a ready-to-run configuration that mirrors one of
//! the paper's experimental setups, so every table/figure regenerator and
//! every integration test shares identical, documented workloads.

use crate::campus::{CampusConfig, CampusScenario};
use crate::infra::Infrastructure;
use crate::meeting::{AudioParams, MeetingConfig, ParticipantConfig, VideoParams};
use crate::path::validation_bursts;
use crate::time::{Nanos, SEC};
use std::net::Ipv4Addr;

/// Default campus client subnet used across scenarios.
pub const CAMPUS_NET: &str = "10.8.0.0/16";

/// Default SFU address for single-meeting scenarios (inside Zoom's
/// 170.114.0.0/16, covered by the sample IP list).
pub const DEFAULT_SFU: Ipv4Addr = Ipv4Addr::new(170, 114, 1, 10);
/// Default zone-controller (STUN) address.
pub const DEFAULT_ZC: Ipv4Addr = Ipv4Addr::new(170, 114, 2, 20);

/// The paper's validation experiment (§5, Fig. 10): a two-person
/// SFU meeting, 5–6 minutes long, with cross-traffic injected twice for
/// 10–20 s. One participant is on campus (the instrumented "SDK client"),
/// the other off campus.
pub fn validation_experiment(seed: u64) -> MeetingConfig {
    let duration = 330 * SEC; // 5.5 minutes
                              // Both clients sit on campus, as in the paper's controlled runs —
                              // which is what makes Method-1 RTT estimation possible: the second
                              // client's uplink stream is forwarded back through the border tap to
                              // the first.
    let sender = ParticipantConfig {
        video: Some(VideoParams {
            bitrate: 700_000.0,
            fps: 28.0,
            motion: 1.1,
            reduced: false,
        }),
        ..ParticipantConfig::standard(Ipv4Addr::new(10, 8, 7, 7), 0, duration)
    };
    // The competing download runs at the instrumented "SDK" client
    // (where the paper ran its bandwidth test): its WAN legs congest
    // around t≈100 s and t≈210 s, raising its latency and — through the
    // receiver-feedback loop — driving the remote sender's rate down.
    let sdk_client = ParticipantConfig {
        congestion: validation_bursts(100 * SEC, 210 * SEC),
        ..ParticipantConfig::standard(Ipv4Addr::new(10, 8, 3, 3), 0, duration)
    };
    MeetingConfig {
        id: 99,
        sfu_ip: DEFAULT_SFU,
        zc_ip: DEFAULT_ZC,
        participants: vec![sdk_client, sender],
        p2p_switch_at: None,
        control_tcp: true,
        keepalives: true,
        seed,
    }
}

/// A two-party meeting that switches to P2P (Fig. 2 / §4.1): campus
/// client and off-campus peer, switch ~20 s in.
pub fn p2p_meeting(seed: u64, duration: Nanos) -> MeetingConfig {
    MeetingConfig {
        id: 7,
        sfu_ip: DEFAULT_SFU,
        zc_ip: DEFAULT_ZC,
        participants: vec![
            ParticipantConfig::standard(Ipv4Addr::new(10, 8, 5, 5), 0, duration),
            ParticipantConfig {
                on_campus: false,
                ..ParticipantConfig::standard(Ipv4Addr::new(67, 40, 2, 2), 2 * SEC, duration)
            },
        ],
        p2p_switch_at: Some(20 * SEC),
        control_tcp: true,
        keepalives: true,
        seed,
    }
}

/// A multi-party meeting with mixed media: two campus participants (so
/// stream copies cross the monitor — the precondition for Method-1 RTT
/// estimation, §5.3), one off-campus mobile-audio sender, and a passive
/// off-campus participant, plus a screen sharer.
pub fn multi_party(seed: u64, duration: Nanos) -> MeetingConfig {
    MeetingConfig {
        id: 21,
        sfu_ip: DEFAULT_SFU,
        zc_ip: DEFAULT_ZC,
        participants: vec![
            // Campus participant A: video + audio + screen share.
            ParticipantConfig {
                screen_share: Some((30 * SEC, duration.saturating_sub(20 * SEC))),
                ..ParticipantConfig::standard(Ipv4Addr::new(10, 8, 1, 10), 0, duration)
            },
            // Campus participant B: thumbnail-mode video.
            ParticipantConfig {
                video: Some(VideoParams {
                    reduced: true,
                    ..VideoParams::default()
                }),
                ..ParticipantConfig::standard(Ipv4Addr::new(10, 8, 2, 20), 3 * SEC, duration)
            },
            // Off-campus sender on mobile audio.
            ParticipantConfig {
                on_campus: false,
                video: Some(VideoParams::default()),
                audio: Some(AudioParams {
                    mobile: true,
                    talk_fraction: 0.5,
                }),
                ..ParticipantConfig::standard(Ipv4Addr::new(151, 14, 8, 8), 5 * SEC, duration)
            },
            // Passive off-campus participant: invisible to the monitor.
            ParticipantConfig {
                on_campus: false,
                video: None,
                audio: None,
                ..ParticipantConfig::standard(Ipv4Addr::new(203, 6, 7, 8), 8 * SEC, duration)
            },
        ],
        p2p_switch_at: None,
        control_tcp: true,
        keepalives: true,
        seed,
    }
}

/// Meeting churn: several short, staggered meetings that start and end
/// throughout the trace, each with its own SFU and client subnet.
///
/// Streams from early meetings go permanently silent long before the
/// trace ends, which is exactly the workload the streaming engine's
/// idle-timeout eviction is for — `tests/streaming_differential.rs` uses
/// this to verify that evicted-stream report fragments still sum to the
/// batch totals and that the tracked-entry count stays bounded.
pub fn churn(seed: u64, duration: Nanos) -> Vec<MeetingConfig> {
    let n: u64 = 6;
    // Each meeting runs for a quarter of the trace; starts are spread so
    // the last one still finishes inside the trace.
    let dwell = duration / 4;
    let step = duration.saturating_sub(dwell) / (n - 1).max(1);
    (0..n)
        .map(|i| {
            let start = i * step;
            let end = start + dwell;
            let subnet = (i + 1) as u8;
            MeetingConfig {
                id: 100 + i as u32,
                sfu_ip: Ipv4Addr::new(170, 114, 1, 10 + i as u8),
                zc_ip: DEFAULT_ZC,
                participants: vec![
                    ParticipantConfig::standard(Ipv4Addr::new(10, 8, subnet, 1), start, end),
                    ParticipantConfig::standard(
                        Ipv4Addr::new(10, 8, subnet, 2),
                        start + SEC / 2,
                        end,
                    ),
                ],
                p2p_switch_at: None,
                control_tcp: true,
                keepalives: true,
                seed: seed.wrapping_add(i),
            }
        })
        .collect()
}

/// Campus `scale` behind [`campus_10x`], calibrated so one bench-length
/// (60 s) trace carries ~10x the [`churn`] scenario's meeting count.
pub const CAMPUS_10X_SCALE: f64 = 12.0;

/// The `campus-10x` workload — the standard heavy load for
/// `BENCH_ingest.json` and the CI bench gate: the campus study with its
/// `scale` knob cranked far past the default. The diurnal arrival model
/// needs tens of minutes to build concurrency, so a bench-length trace
/// buys its meeting population through scale instead of wall-clock
/// hours — at the default 60 s this lands ~10x the `churn` scenario's
/// meeting count, with meetings arriving, clipping, and leaving
/// throughout (heavy churn).
pub fn campus_10x(seed: u64, duration: Nanos) -> Vec<MeetingConfig> {
    let (scenario, _infra) = campus_study(seed, duration, CAMPUS_10X_SCALE, 0.0);
    scenario.meetings
}

/// The 12-hour campus study (Table 6, Figs. 14–17) at the given load
/// scale. `background_ratio > 0` adds non-Zoom traffic for capture-
/// pipeline experiments.
pub fn campus_study(
    seed: u64,
    duration: Nanos,
    scale: f64,
    background_ratio: f64,
) -> (CampusScenario, Infrastructure) {
    let infra = Infrastructure::generate();
    let scenario = CampusScenario::generate(
        CampusConfig {
            duration,
            scale,
            background_ratio,
            seed,
            ..Default::default()
        },
        &infra,
    );
    (scenario, infra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meeting::MeetingSim;

    #[test]
    fn validation_experiment_runs_to_completion() {
        let mut sink = |_: zoom_wire::pcap::Record| {};
        let sim = MeetingSim::new(validation_experiment(1));
        let (stats, gt) = sim.run(&mut sink);
        assert!(stats.packets_emitted > 10_000);
        assert_eq!(gt.len(), 2);
        // The campus participant observed ~330 one-second QoS samples.
        assert!(gt[0].len() >= 300, "samples {}", gt[0].len());
        // Cross traffic raised true latency during the bursts.
        let calm: f64 = gt[0]
            .iter()
            .filter(|s| s.at > 20 * SEC && s.at < 90 * SEC)
            .map(|s| s.true_latency_ms)
            .sum::<f64>()
            / 70.0;
        let burst: f64 = gt[0]
            .iter()
            .filter(|s| s.at > 104 * SEC && s.at < 112 * SEC)
            .map(|s| s.true_latency_ms)
            .sum::<f64>()
            / 8.0;
        assert!(burst > calm + 10.0, "calm {calm:.1} burst {burst:.1}");
    }

    #[test]
    fn multi_party_has_screen_share_traffic() {
        let sim = MeetingSim::new(multi_party(2, 60 * SEC));
        let mut screen = 0;
        for r in sim {
            let d = zoom_wire::dissect::dissect(
                r.ts_nanos,
                &r.data,
                zoom_wire::pcap::LinkType::Ethernet,
                zoom_wire::dissect::P2pProbe::Off,
            )
            .unwrap();
            if let Some(z) = d.zoom() {
                if z.media.media_type == zoom_wire::zoom::MediaType::ScreenShare {
                    screen += 1;
                }
            }
        }
        assert!(screen > 20, "screen packets {screen}");
    }
}
