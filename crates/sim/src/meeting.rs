//! Event-driven simulation of a single Zoom meeting, as observed from a
//! campus border tap.
//!
//! The simulator reproduces the traffic structure the paper reverse-
//! engineered (§3, §4): per-media UDP flows to an SFU on port 8801 wrapped
//! in Zoom SFU + media encapsulations; P2P switchover for two-party calls
//! preceded by STUN exchanges with a zone controller (§4.1, Fig. 2);
//! RTCP sender reports at 1 Hz; FEC sub-streams sharing timestamps but not
//! sequence numbers; fixed 40-byte silent-audio packets; retransmissions
//! that reuse RTP sequence numbers after a ~100 ms + RTT timeout (§5.5);
//! and ~10 % non-media control packets (Table 2's undecoded remainder).
//!
//! The iterator yields exactly the packets a border monitor would record,
//! in capture-timestamp order. Ground-truth QoS (the "Zoom SDK feed") is
//! accumulated per participant for validation experiments.

use crate::codec::{
    packets_for, AudioSource, ScreenShareSource, VideoEncoder, VideoMode, AUDIO_PTIME,
    MAX_RTP_PAYLOAD,
};
use crate::path::{CongestionEvent, SfuPath};
use crate::qos::{QosLogger, QosSample};
use crate::rate::RateController;
use crate::time::{EventQueue, Nanos, MS, SEC, US};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;
use zoom_wire::compose;
use zoom_wire::pcap::Record;
use zoom_wire::rtcp;
use zoom_wire::rtp;
use zoom_wire::stun;
use zoom_wire::tcp;
use zoom_wire::zoom::{
    self, MediaEncapRepr, MediaType, SfuEncapRepr, DIR_FROM_SFU, DIR_TO_SFU, SFU_TYPE_MEDIA,
    ZOOM_SFU_PORT,
};

/// Video source parameters for a participant.
#[derive(Debug, Clone, Copy)]
pub struct VideoParams {
    /// Full-mode target bit rate, bits/s.
    pub bitrate: f64,
    /// Full-mode frame rate (Zoom aims at ~28).
    pub fps: f64,
    /// Content motion factor (≥ 1 = high motion).
    pub motion: f64,
    /// Start pinned in reduced (thumbnail) mode.
    pub reduced: bool,
}

impl Default for VideoParams {
    fn default() -> Self {
        VideoParams {
            bitrate: 600_000.0,
            fps: 28.0,
            motion: 1.0,
            reduced: false,
        }
    }
}

/// Audio source parameters.
#[derive(Debug, Clone, Copy)]
pub struct AudioParams {
    /// Mobile app (PT 113 exclusively).
    pub mobile: bool,
    /// Fraction of time talking.
    pub talk_fraction: f64,
}

impl Default for AudioParams {
    fn default() -> Self {
        AudioParams {
            mobile: false,
            talk_fraction: 0.35,
        }
    }
}

/// One meeting participant.
#[derive(Debug, Clone)]
pub struct ParticipantConfig {
    pub ip: Ipv4Addr,
    /// On-campus participants' traffic crosses the monitor.
    pub on_campus: bool,
    /// Absolute join/leave times.
    pub join_at: Nanos,
    pub leave_at: Nanos,
    /// `None` = camera off.
    pub video: Option<VideoParams>,
    /// `None` = fully muted (a "passive participant" when video is also
    /// off — §4.3.1's grouping challenge).
    pub audio: Option<AudioParams>,
    /// Screen-sharing window (absolute times), if any.
    pub screen_share: Option<(Nanos, Nanos)>,
    /// One-way WAN delay to the SFU, milliseconds.
    pub wan_ms: u64,
    /// Access-link jitter standard deviation, microseconds (applied to
    /// the client's side of the tap — see `SfuPath::for_participant`).
    pub wan_jitter_us: u64,
    /// Steady-state WAN loss probability.
    pub wan_loss: f64,
    /// Congestion bursts on this participant's WAN legs.
    pub congestion: Vec<CongestionEvent>,
}

impl ParticipantConfig {
    /// A standard on-campus participant with camera and microphone.
    pub fn standard(ip: Ipv4Addr, join_at: Nanos, leave_at: Nanos) -> ParticipantConfig {
        ParticipantConfig {
            ip,
            on_campus: true,
            join_at,
            leave_at,
            video: Some(VideoParams::default()),
            audio: Some(AudioParams::default()),
            screen_share: None,
            wan_ms: 22,
            wan_jitter_us: 2_000,
            wan_loss: 0.0015,
            congestion: Vec::new(),
        }
    }
}

/// Whole-meeting configuration.
#[derive(Debug, Clone)]
pub struct MeetingConfig {
    pub id: u32,
    pub sfu_ip: Ipv4Addr,
    /// Zone controller (STUN server) address.
    pub zc_ip: Ipv4Addr,
    pub participants: Vec<ParticipantConfig>,
    /// For exactly-two-party meetings: switch to P2P at this absolute
    /// time (the paper: "within tens of seconds" of the second join).
    pub p2p_switch_at: Option<Nanos>,
    /// Emit the TLS control connection (TCP 443) for each client.
    pub control_tcp: bool,
    /// Emit non-media control/keepalive packets (~10 % of packets).
    pub keepalives: bool,
    pub seed: u64,
}

impl MeetingConfig {
    /// SSRCs are unique within a meeting but deliberately *small and
    /// reused across meetings* (§4.2.3: "neither globally unique nor ...
    /// randomly sampled").
    fn ssrc_for(&self, participant: usize, media: usize) -> u32 {
        16 + (self.id % 8) + (participant as u32) * 4 + media as u32
    }
}

/// Per-(media, payload-type) sub-stream sequence state: FEC sub-streams
/// share timestamps with the main stream but use their own sequence space
/// (§4.2.3).
type SubStreamKey = (u8, u8);

const MEDIA_AUDIO: usize = 0;
const MEDIA_VIDEO: usize = 1;
const MEDIA_SCREEN: usize = 2;

/// A media packet, described abstractly so retransmissions can rebuild the
/// identical RTP content (same sequence number) later.
#[derive(Debug, Clone, Copy)]
struct PacketSpec {
    sender: usize,
    media: MediaType,
    payload_type: u8,
    marker: bool,
    rtp_seq: u16,
    rtp_ts: u32,
    ssrc: u32,
    payload_len: usize,
    frame_seq: Option<u16>,
    pkts_in_frame: Option<u8>,
    /// Total frame size, for ground-truth delivery accounting.
    frame_bytes: usize,
    /// Counts toward frame completion (FEC and audio do not).
    part_of_frame: bool,
    has_extension: bool,
    /// Which per-media flow this packet rides (RTCP accompanies its
    /// media stream's flow).
    flow_midx: usize,
}

/// Interned media-section bytes (media encap + RTP + payload), shared
/// between the uplink packet and all forwarded copies.
type MediaBytes = Rc<Vec<u8>>;

/// Simulator events.
enum Ev {
    Join(usize),
    Leave(usize),
    VideoFrame(usize),
    AudioTick(usize),
    ScreenFrame(usize, u32, usize),
    ScheduleNextScreen(usize),
    Rtcp(usize),
    Keepalive(usize),
    TcpCtrl(usize, bool),
    StunExchange(usize, u8),
    P2pSwitch,
    QosTick(usize),
    SfuArrival {
        spec: PacketSpec,
        media_bytes: MediaBytes,
        sent_at: Nanos,
    },
    Retransmit {
        spec: PacketSpec,
        attempt: u8,
    },
    ForwardRetransmit {
        spec: PacketSpec,
        media_bytes: MediaBytes,
        to: usize,
        sent_at: Nanos,
        attempt: u8,
    },
    P2pArrival {
        spec: PacketSpec,
        to: usize,
        sent_at: Nanos,
    },
    Emit(Record),
}

#[derive(Debug)]
struct FrameAsm {
    expected: u8,
    seqs: Vec<u16>,
    bytes: usize,
    first_at: Nanos,
}

struct PState {
    cfg: ParticipantConfig,
    active: bool,
    path: SfuPath,
    /// Per-media client ports (server mode).
    ports: [u16; 3],
    /// The single flow port used after a P2P switch (and for the STUN
    /// exchange that precedes it — the correlation §4.1 exploits).
    p2p_port: u16,
    tcp_port: u16,
    video_enc: Option<VideoEncoder>,
    rate: RateController,
    audio_src: Option<AudioSource>,
    screen_src: Option<ScreenShareSource>,
    rtp_seq: HashMap<SubStreamKey, u16>,
    media_seq: [u16; 3],
    other_seq: u16,
    frame_seq: u16,
    ssrc: [u32; 3],
    sfu_seq: u16,
    /// Cumulative (packets, octets) per media stream for RTCP SRs.
    sr_counts: [(u32, u32); 3],
    tcp_seq: u32,
    tcp_server_seq: u32,
    qos: QosLogger,
    frame_asm: HashMap<(u32, u32), FrameAsm>,
    jitter_truth: f64,
    last_transit: Option<i64>,
    screen_active: bool,
}

/// Transport mode of the meeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Sfu,
    P2p,
}

/// Counters describing what the meeting generated.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeetingStats {
    pub packets_emitted: u64,
    pub bytes_emitted: u64,
    pub media_packets_sent: u64,
    pub retransmissions: u64,
    pub packets_lost_for_good: u64,
    pub stun_exchanges: u64,
}

/// The meeting simulator; iterate to obtain monitor-visible records.
pub struct MeetingSim {
    cfg: MeetingConfig,
    rng: StdRng,
    queue: EventQueue<Ev>,
    participants: Vec<PState>,
    mode: Mode,
    stats: MeetingStats,
    now: Nanos,
}

impl MeetingSim {
    /// Build the simulator and schedule the initial events.
    pub fn new(cfg: MeetingConfig) -> MeetingSim {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (u64::from(cfg.id) << 20));
        let mut queue = EventQueue::new();
        let mut participants = Vec::new();
        for (i, pc) in cfg.participants.iter().enumerate() {
            let mut path =
                SfuPath::for_participant(pc.wan_ms, pc.wan_loss, pc.wan_jitter_us, pc.on_campus);
            for ev in &pc.congestion {
                path.wan_up = path.wan_up.clone().with_congestion(*ev);
                path.wan_down = path.wan_down.clone().with_congestion(*ev);
            }
            let ports = [
                rng.gen_range(40_000..64_000),
                rng.gen_range(40_000..64_000),
                rng.gen_range(40_000..64_000),
            ];
            let video_enc = pc.video.map(|v| {
                let mut enc = VideoEncoder::new(v.bitrate, v.fps, v.motion, rng.gen::<u32>());
                if v.reduced {
                    enc.set_mode(VideoMode::Reduced);
                }
                enc
            });
            let mut rate = RateController::new();
            if pc.video.map(|v| v.reduced).unwrap_or(false) {
                rate.pin_reduced(true);
            }
            let audio_src = pc
                .audio
                .map(|a| AudioSource::new(a.mobile, a.talk_fraction, rng.gen::<u32>()));
            let screen_src = pc
                .screen_share
                .map(|_| ScreenShareSource::new(rng.gen::<u32>()));
            participants.push(PState {
                cfg: pc.clone(),
                active: false,
                path,
                ports,
                p2p_port: rng.gen_range(40_000..64_000),
                tcp_port: rng.gen_range(40_000..64_000),
                video_enc,
                rate,
                audio_src,
                screen_src,
                rtp_seq: HashMap::new(),
                media_seq: [0; 3],
                other_seq: 0,
                frame_seq: 0,
                ssrc: [
                    cfg.ssrc_for(i, MEDIA_AUDIO),
                    cfg.ssrc_for(i, MEDIA_VIDEO),
                    cfg.ssrc_for(i, MEDIA_SCREEN),
                ],
                sfu_seq: 0,
                sr_counts: [(0, 0); 3],
                tcp_seq: rng.gen::<u32>() / 2,
                tcp_server_seq: rng.gen::<u32>() / 2,
                qos: QosLogger::new(),
                frame_asm: HashMap::new(),
                jitter_truth: 0.0,
                last_transit: None,
                screen_active: false,
            });
            queue.push(pc.join_at, Ev::Join(i));
            queue.push(pc.leave_at, Ev::Leave(i));
        }
        if let Some(at) = cfg.p2p_switch_at {
            if cfg.participants.len() == 2 {
                // STUN exchanges precede the switch (Fig. 2).
                for i in 0..2 {
                    for round in 0..2u8 {
                        queue.push(
                            at.saturating_sub(2 * SEC) + u64::from(round) * 300 * MS,
                            Ev::StunExchange(i, round),
                        );
                    }
                }
                queue.push(at, Ev::P2pSwitch);
            }
        }
        MeetingSim {
            cfg,
            rng,
            queue,
            participants,
            mode: Mode::Sfu,
            stats: MeetingStats::default(),
            now: 0,
        }
    }

    /// Counters (final after exhaustion).
    pub fn stats(&self) -> MeetingStats {
        self.stats
    }

    /// Ground-truth QoS per participant; call after exhausting the
    /// iterator.
    pub fn ground_truth(self) -> Vec<Vec<QosSample>> {
        let end = self.now;
        self.participants
            .into_iter()
            .map(|p| p.qos.finish(end))
            .collect()
    }

    /// Drain the whole meeting through `sink`, returning stats and ground
    /// truth.
    pub fn run(mut self, sink: &mut dyn FnMut(Record)) -> (MeetingStats, Vec<Vec<QosSample>>) {
        for record in &mut self {
            sink(record);
        }
        let stats = self.stats;
        (stats, self.ground_truth())
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, now: Nanos, ev: Ev) -> Option<Record> {
        self.now = now;
        match ev {
            Ev::Emit(r) => {
                self.stats.packets_emitted += 1;
                self.stats.bytes_emitted += r.data.len() as u64;
                return Some(r);
            }
            Ev::Join(i) => self.on_join(now, i),
            Ev::Leave(i) => self.participants[i].active = false,
            Ev::VideoFrame(i) => self.on_video_frame(now, i),
            Ev::AudioTick(i) => self.on_audio_tick(now, i),
            Ev::ScheduleNextScreen(i) => self.on_schedule_screen(now, i),
            Ev::ScreenFrame(i, ts, size) => self.on_screen_frame(now, i, ts, size),
            Ev::Rtcp(i) => self.on_rtcp(now, i),
            Ev::Keepalive(i) => self.on_keepalive(now, i),
            Ev::TcpCtrl(i, client_first) => self.on_tcp_ctrl(now, i, client_first),
            Ev::StunExchange(i, round) => self.on_stun(now, i, round),
            Ev::P2pSwitch => self.mode = Mode::P2p,
            Ev::QosTick(i) => self.on_qos_tick(now, i),
            Ev::SfuArrival {
                spec,
                media_bytes,
                sent_at,
            } => self.on_sfu_arrival(now, spec, media_bytes, sent_at),
            Ev::Retransmit { spec, attempt } => {
                if self.alive(spec.sender) {
                    self.stats.retransmissions += 1;
                    self.send_media(now, spec, attempt);
                }
            }
            Ev::ForwardRetransmit {
                spec,
                media_bytes,
                to,
                sent_at,
                attempt,
            } => {
                if self.alive(to) {
                    self.stats.retransmissions += 1;
                    self.forward_copy(now, spec, media_bytes, to, sent_at, attempt);
                }
            }
            Ev::P2pArrival { spec, to, sent_at } => {
                self.deliver(now, spec, to, sent_at);
            }
        }
        None
    }

    fn on_join(&mut self, now: Nanos, i: usize) {
        let p = &mut self.participants[i];
        p.active = true;
        if p.video_enc.is_some() {
            self.queue.push(now + 30 * MS, Ev::VideoFrame(i));
        }
        if p.audio_src.is_some() {
            self.queue.push(now + 15 * MS, Ev::AudioTick(i));
        }
        if let Some((start, _)) = p.cfg.screen_share {
            self.queue.push(start.max(now), Ev::ScheduleNextScreen(i));
        }
        self.queue.push(now + SEC, Ev::Rtcp(i));
        self.queue.push(now + 500 * MS, Ev::QosTick(i));
        if self.cfg.keepalives {
            self.queue.push(now + 40 * MS, Ev::Keepalive(i));
        }
        if self.cfg.control_tcp {
            self.queue.push(now + 100 * MS, Ev::TcpCtrl(i, true));
        }
    }

    fn alive(&self, i: usize) -> bool {
        self.participants[i].active
    }

    fn next_rtp_seq(&mut self, i: usize, media: u8, pt: u8) -> u16 {
        let p = &mut self.participants[i];
        let seq = p.rtp_seq.entry((media, pt)).or_insert(0);
        *seq = seq.wrapping_add(1);
        *seq
    }

    // -------------------------- media sources --------------------------

    fn on_video_frame(&mut self, now: Nanos, i: usize) {
        if !self.alive(i) {
            return;
        }
        let (interval, frame) = {
            let p = &mut self.participants[i];
            let enc = p.video_enc.as_mut().expect("video event without encoder");
            p.rate.control(now, enc);
            let interval = enc.frame_interval(&mut self.rng);
            let frame = enc.next_frame(interval, &mut self.rng);
            (interval, frame)
        };
        self.queue.push(now + interval, Ev::VideoFrame(i));

        let npkts = packets_for(frame.size);
        let frame_seq = {
            let p = &mut self.participants[i];
            p.frame_seq = p.frame_seq.wrapping_add(1);
            p.frame_seq
        };
        let ssrc = self.participants[i].ssrc[MEDIA_VIDEO];
        let fec_p = self.participants[i]
            .video_enc
            .as_ref()
            .map(|e| e.fec_probability())
            .unwrap_or(0.0);
        let mut remaining = frame.size;
        for k in 0..npkts {
            let payload_len = remaining.min(MAX_RTP_PAYLOAD);
            remaining -= payload_len;
            let rtp_seq = self.next_rtp_seq(i, MEDIA_VIDEO as u8, 98);
            let spec = PacketSpec {
                sender: i,
                media: MediaType::Video,
                payload_type: 98,
                marker: k == npkts - 1,
                rtp_seq,
                rtp_ts: frame.rtp_timestamp,
                ssrc,
                payload_len,
                frame_seq: Some(frame_seq),
                pkts_in_frame: Some(npkts.min(255) as u8),
                frame_bytes: frame.size,
                part_of_frame: true,
                has_extension: true,
                flow_midx: MEDIA_VIDEO,
            };
            self.send_media(now + k as u64 * 250 * US, spec, 0);
            // FEC sub-stream: same timestamp, own sequence space.
            if self.rng.gen_bool(fec_p) {
                let fec_seq = self.next_rtp_seq(i, MEDIA_VIDEO as u8, 110);
                let fec = PacketSpec {
                    payload_type: 110,
                    marker: false,
                    rtp_seq: fec_seq,
                    payload_len: payload_len.min(900),
                    part_of_frame: false,
                    ..spec
                };
                self.send_media(now + k as u64 * 250 * US + 80 * US, fec, 0);
            }
        }
    }

    fn on_audio_tick(&mut self, now: Nanos, i: usize) {
        if !self.alive(i) {
            return;
        }
        self.queue.push(now + AUDIO_PTIME, Ev::AudioTick(i));
        let Some(pkt) = ({
            let p = &mut self.participants[i];
            let src = p.audio_src.as_mut().expect("audio event without source");
            src.next_packet(&mut self.rng)
        }) else {
            return; // suppressed silence interval
        };
        let ssrc = self.participants[i].ssrc[MEDIA_AUDIO];
        let rtp_seq = self.next_rtp_seq(i, MEDIA_AUDIO as u8, pkt.payload_type);
        let spec = PacketSpec {
            sender: i,
            media: MediaType::Audio,
            payload_type: pkt.payload_type,
            marker: false,
            rtp_seq,
            rtp_ts: pkt.rtp_timestamp,
            ssrc,
            payload_len: pkt.payload_len,
            frame_seq: None,
            pkts_in_frame: None,
            frame_bytes: pkt.payload_len,
            part_of_frame: false,
            has_extension: false,
            flow_midx: MEDIA_AUDIO,
        };
        self.send_media(now, spec, 0);
        if pkt.with_fec {
            let fec_seq = self.next_rtp_seq(i, MEDIA_AUDIO as u8, 110);
            let fec = PacketSpec {
                payload_type: 110,
                rtp_seq: fec_seq,
                payload_len: pkt.payload_len.min(80),
                ..spec
            };
            self.send_media(now + 100 * US, fec, 0);
        }
    }

    fn on_schedule_screen(&mut self, now: Nanos, i: usize) {
        if !self.alive(i) {
            return;
        }
        let Some((start, end)) = self.participants[i].cfg.screen_share else {
            return;
        };
        if now < start || now >= end {
            self.participants[i].screen_active = false;
            return;
        }
        self.participants[i].screen_active = true;
        let (gap, frame) = {
            let p = &mut self.participants[i];
            let src = p.screen_src.as_mut().expect("screen event without source");
            src.next_frame(&mut self.rng)
        };
        let at = now + gap;
        if at < end {
            self.queue
                .push(at, Ev::ScreenFrame(i, frame.rtp_timestamp, frame.size));
            self.queue.push(at, Ev::ScheduleNextScreen(i));
        } else {
            self.participants[i].screen_active = false;
        }
    }

    fn on_screen_frame(&mut self, now: Nanos, i: usize, rtp_ts: u32, size: usize) {
        if !self.alive(i) {
            return;
        }
        let npkts = packets_for(size);
        let ssrc = self.participants[i].ssrc[MEDIA_SCREEN];
        let mut remaining = size;
        for k in 0..npkts {
            let payload_len = remaining.min(MAX_RTP_PAYLOAD);
            remaining -= payload_len;
            let rtp_seq = self.next_rtp_seq(i, MEDIA_SCREEN as u8, 99);
            let spec = PacketSpec {
                sender: i,
                media: MediaType::ScreenShare,
                payload_type: 99,
                marker: k == npkts - 1,
                rtp_seq,
                rtp_ts,
                ssrc,
                payload_len,
                frame_seq: None,
                pkts_in_frame: None,
                frame_bytes: size,
                part_of_frame: true,
                has_extension: false,
                flow_midx: MEDIA_SCREEN,
            };
            self.send_media(now + k as u64 * 250 * US, spec, 0);
        }
    }

    fn on_rtcp(&mut self, now: Nanos, i: usize) {
        if !self.alive(i) {
            return;
        }
        self.queue.push(now + SEC, Ev::Rtcp(i));
        let medias: Vec<usize> = {
            let p = &self.participants[i];
            let mut m = Vec::new();
            if p.audio_src.is_some() {
                m.push(MEDIA_AUDIO);
            }
            if p.video_enc.is_some() {
                m.push(MEDIA_VIDEO);
            }
            if p.screen_active {
                m.push(MEDIA_SCREEN);
            }
            m
        };
        // One SR per active media stream; Zoom sends SR alone or with an
        // empty SDES — Table 2's 33/34 split (0.27 % vs 0.89 %).
        for media in medias {
            let with_sdes = self.rng.gen_bool(0.75);
            let (pkts, octets) = self.participants[i].sr_counts[media];
            let ssrc = self.participants[i].ssrc[media];
            let sr = rtcp::SenderReportRepr {
                ssrc,
                info: rtcp::SenderInfo {
                    ntp_timestamp: ((now / SEC) << 32) | (now % SEC),
                    rtp_timestamp: (now / MS) as u32,
                    packet_count: pkts,
                    octet_count: octets,
                },
                with_sdes,
            };
            let mut body = vec![0u8; sr.buffer_len()];
            sr.emit(&mut body);
            let media_type = if with_sdes {
                MediaType::RtcpSrSdes
            } else {
                MediaType::RtcpSr
            };
            let spec = PacketSpec {
                sender: i,
                media: media_type,
                payload_type: 0,
                marker: false,
                rtp_seq: 0,
                rtp_ts: 0,
                ssrc,
                payload_len: body.len(),
                frame_seq: None,
                pkts_in_frame: None,
                frame_bytes: 0,
                part_of_frame: false,
                has_extension: false,
                flow_midx: media,
            };
            self.send_rtcp(now, spec, body, media);
        }
    }

    fn on_keepalive(&mut self, now: Nanos, i: usize) {
        if !self.alive(i) {
            return;
        }
        let jitter_ms = self.rng.gen_range(0..30);
        self.queue
            .push(now + 65 * MS + jitter_ms * MS, Ev::Keepalive(i));
        let seq = {
            let p = &mut self.participants[i];
            p.other_seq = p.other_seq.wrapping_add(1);
            p.other_seq
        };
        match self.mode {
            Mode::Sfu => self.keepalive_sfu(now, i, seq),
            Mode::P2p => self.keepalive_p2p(now, i, seq),
        }
    }

    /// Non-media control packet body: Zoom media encapsulation with an
    /// unknown type (we use 30) carrying a sequence number, sometimes
    /// under a non-0x05 SFU encapsulation type.
    fn control_media_bytes(&mut self, now: Nanos, seq: u16) -> Vec<u8> {
        let body_len = self.rng.gen_range(120..1_000);
        let mut payload = vec![0u8; body_len];
        self.rng.fill(&mut payload[..]);
        zoom::Builder {
            sfu: None,
            media: MediaEncapRepr {
                media_type: MediaType::Other(30),
                sequence: seq,
                timestamp: (now / MS) as u32,
                frame_sequence: None,
                packets_in_frame: None,
            },
            rtp: None,
            payload,
        }
        .build()
    }

    fn keepalive_sfu(&mut self, now: Nanos, i: usize, seq: u16) {
        if !self.participants[i].cfg.on_campus {
            return; // invisible at the monitor; no analysis impact
        }
        let sfu_type = if self.rng.gen_bool(0.16) {
            0x02
        } else {
            SFU_TYPE_MEDIA
        };
        let body = self.control_media_bytes(now, seq);
        let (src, sport, dst, dport) = self.flow_for(i, MEDIA_AUDIO);
        let sfu_seq = {
            let p = &mut self.participants[i];
            p.sfu_seq = p.sfu_seq.wrapping_add(1);
            p.sfu_seq
        };
        let wrap = |direction: u8| -> Vec<u8> {
            let mut out = vec![0u8; zoom::SFU_ENCAP_LEN + body.len()];
            SfuEncapRepr {
                encap_type: sfu_type,
                sequence: sfu_seq,
                direction,
            }
            .emit(&mut zoom::SfuEncap::new_unchecked(
                &mut out[..zoom::SFU_ENCAP_LEN],
            ));
            out[zoom::SFU_ENCAP_LEN..].copy_from_slice(&body);
            out
        };
        let up = compose::udp_ipv4_ethernet(src, dst, sport, dport, &wrap(DIR_TO_SFU));
        let down = compose::udp_ipv4_ethernet(dst, src, dport, sport, &wrap(DIR_FROM_SFU));
        let d1 = {
            let p = &mut self.participants[i];
            p.path.campus_up.traverse(now, &mut self.rng)
        };
        if let Some(d1) = d1 {
            self.queue.push(now + d1, Ev::Emit(Record::full(0, up)));
        }
        let d2 = {
            let p = &mut self.participants[i];
            p.path.wan_down.traverse(now, &mut self.rng)
        };
        if let Some(d2) = d2 {
            self.queue.push(now + d2, Ev::Emit(Record::full(0, down)));
        }
    }

    fn keepalive_p2p(&mut self, now: Nanos, i: usize, seq: u16) {
        let j = 1 - i;
        let crosses_tap = self.participants[i].cfg.on_campus != self.participants[j].cfg.on_campus;
        if !crosses_tap {
            return;
        }
        let body = self.control_media_bytes(now, seq);
        let (src, sport, dst, dport) = self.flow_for(i, 0);
        let d = {
            let p = &mut self.participants[i];
            if p.cfg.on_campus {
                p.path.campus_up.traverse(now, &mut self.rng)
            } else {
                p.path.wan_up.traverse(now, &mut self.rng)
            }
        };
        if let Some(d) = d {
            let rec = Record::full(0, compose::udp_ipv4_ethernet(src, dst, sport, dport, &body));
            self.queue.push(now + d, Ev::Emit(rec));
        }
    }

    fn on_tcp_ctrl(&mut self, now: Nanos, i: usize, client_first: bool) {
        if !self.alive(i) {
            return;
        }
        let jitter_ms = self.rng.gen_range(0..500);
        self.queue.push(
            now + 600 * MS + jitter_ms * MS,
            Ev::TcpCtrl(i, !client_first),
        );
        if !self.participants[i].cfg.on_campus {
            return;
        }
        let payload_len = self.rng.gen_range(80..400usize);
        let client_ip = self.participants[i].cfg.ip;
        let server_ip = self.cfg.sfu_ip;
        let tcp_port = self.participants[i].tcp_port;
        let (cseq, sseq) = {
            let p = &mut self.participants[i];
            let c = p.tcp_seq;
            let s = p.tcp_server_seq;
            if client_first {
                p.tcp_seq = p.tcp_seq.wrapping_add(payload_len as u32);
            } else {
                p.tcp_server_seq = p.tcp_server_seq.wrapping_add(payload_len as u32);
            }
            (c, s)
        };
        let mut payload = vec![0u8; payload_len];
        self.rng.fill(&mut payload[..]);
        let flags = tcp::Flags {
            ack: true,
            psh: true,
            ..Default::default()
        };
        let ack_flags = tcp::Flags {
            ack: true,
            ..Default::default()
        };
        if client_first {
            let data = compose::tcp_ipv4_ethernet(
                client_ip, server_ip, tcp_port, 443, cseq, sseq, flags, &payload,
            );
            let ack = compose::tcp_ipv4_ethernet(
                server_ip,
                client_ip,
                443,
                tcp_port,
                sseq,
                cseq.wrapping_add(payload_len as u32),
                ack_flags,
                &[],
            );
            let d1 = {
                let p = &mut self.participants[i];
                p.path.campus_up.traverse(now, &mut self.rng)
            };
            if let Some(d1) = d1 {
                self.queue.push(now + d1, Ev::Emit(Record::full(0, data)));
                let d2 = {
                    let p = &mut self.participants[i];
                    p.path.wan_up.traverse(now + d1, &mut self.rng)
                };
                if let Some(d2) = d2 {
                    let t_srv = now + d1 + d2 + self.participants[i].path.sfu_processing;
                    let d3 = {
                        let p = &mut self.participants[i];
                        p.path.wan_down.traverse(t_srv, &mut self.rng)
                    };
                    if let Some(d3) = d3 {
                        self.queue.push(t_srv + d3, Ev::Emit(Record::full(0, ack)));
                    }
                }
            }
        } else {
            let data = compose::tcp_ipv4_ethernet(
                server_ip, client_ip, 443, tcp_port, sseq, cseq, flags, &payload,
            );
            let ack = compose::tcp_ipv4_ethernet(
                client_ip,
                server_ip,
                tcp_port,
                443,
                cseq,
                sseq.wrapping_add(payload_len as u32),
                ack_flags,
                &[],
            );
            let d1 = {
                let p = &mut self.participants[i];
                p.path.wan_down.traverse(now, &mut self.rng)
            };
            if let Some(d1) = d1 {
                self.queue.push(now + d1, Ev::Emit(Record::full(0, data)));
                let d2 = {
                    let p = &mut self.participants[i];
                    p.path.campus_down.traverse(now + d1, &mut self.rng)
                };
                if let Some(d2) = d2 {
                    let t_client = now + d1 + d2 + 200 * US;
                    let d3 = {
                        let p = &mut self.participants[i];
                        p.path.campus_up.traverse(t_client, &mut self.rng)
                    };
                    if let Some(d3) = d3 {
                        self.queue
                            .push(t_client + d3, Ev::Emit(Record::full(0, ack)));
                    }
                }
            }
        }
    }

    fn on_stun(&mut self, now: Nanos, i: usize, round: u8) {
        self.stats.stun_exchanges += 1;
        if !self.participants[i].cfg.on_campus {
            return; // the peer's STUN exchange doesn't cross our tap
        }
        let (client_ip, p2p_port) = {
            let p = &self.participants[i];
            (p.cfg.ip, p.p2p_port)
        };
        let mut tid = [0u8; 12];
        tid[0] = i as u8;
        tid[1] = round;
        tid[11] = self.cfg.id as u8;
        let request = stun::Repr {
            message_type: stun::MessageType::BindingRequest,
            transaction_id: tid,
            xor_mapped_address: None,
        };
        let mut req = vec![0u8; request.buffer_len()];
        request.emit(&mut req);
        let response = stun::Repr {
            message_type: stun::MessageType::BindingSuccess,
            transaction_id: tid,
            xor_mapped_address: Some(std::net::SocketAddr::new(
                std::net::IpAddr::V4(client_ip),
                p2p_port,
            )),
        };
        let mut resp = vec![0u8; response.buffer_len()];
        response.emit(&mut resp);

        let up =
            compose::udp_ipv4_ethernet(client_ip, self.cfg.zc_ip, p2p_port, stun::STUN_PORT, &req);
        let down =
            compose::udp_ipv4_ethernet(self.cfg.zc_ip, client_ip, stun::STUN_PORT, p2p_port, &resp);
        let d1 = {
            let p = &mut self.participants[i];
            p.path.campus_up.traverse(now, &mut self.rng)
        };
        if let Some(d1) = d1 {
            self.queue.push(now + d1, Ev::Emit(Record::full(0, up)));
            let d2 = {
                let p = &mut self.participants[i];
                p.path.wan_up.traverse(now + d1, &mut self.rng)
            };
            if let Some(d2) = d2 {
                let t_zc = now + d1 + d2 + MS;
                let d3 = {
                    let p = &mut self.participants[i];
                    p.path.wan_down.traverse(t_zc, &mut self.rng)
                };
                if let Some(d3) = d3 {
                    self.queue.push(t_zc + d3, Ev::Emit(Record::full(0, down)));
                }
            }
        }
    }

    fn on_qos_tick(&mut self, now: Nanos, i: usize) {
        if !self.alive(i) {
            return;
        }
        self.queue.push(now + SEC, Ev::QosTick(i));
        let p = &mut self.participants[i];
        let rtt =
            p.path.current_up_delay(now) + p.path.current_down_delay(now) + p.path.sfu_processing;
        let jitter = p.jitter_truth as Nanos;
        p.qos.network_truth(now, rtt, jitter);
        p.frame_asm
            .retain(|_, asm| now.saturating_sub(asm.first_at) < 5 * SEC);
    }

    // ----------------------- packet transmission -----------------------

    /// The uplink 5-tuple for participant `i`'s `media` flow.
    fn flow_for(&self, i: usize, media: usize) -> (Ipv4Addr, u16, Ipv4Addr, u16) {
        let p = &self.participants[i];
        match self.mode {
            Mode::Sfu => (p.cfg.ip, p.ports[media], self.cfg.sfu_ip, ZOOM_SFU_PORT),
            Mode::P2p => {
                let peer = &self.participants[1 - i];
                (p.cfg.ip, p.p2p_port, peer.cfg.ip, peer.p2p_port)
            }
        }
    }

    fn media_index(media: MediaType) -> usize {
        match media {
            MediaType::Audio => MEDIA_AUDIO,
            MediaType::Video => MEDIA_VIDEO,
            MediaType::ScreenShare => MEDIA_SCREEN,
            _ => MEDIA_AUDIO,
        }
    }

    /// Build the media-encapsulation section (media encap + RTP + payload)
    /// for `spec`, assigning a fresh media-level sequence number.
    fn build_media_bytes(&mut self, now: Nanos, spec: &PacketSpec) -> MediaBytes {
        let midx = Self::media_index(spec.media);
        let mseq = {
            let p = &mut self.participants[spec.sender];
            p.media_seq[midx] = p.media_seq[midx].wrapping_add(1);
            p.media_seq[midx]
        };
        let mut payload = vec![0u8; spec.payload_len];
        self.rng.fill(&mut payload[..]);
        Rc::new(
            zoom::Builder {
                sfu: None,
                media: MediaEncapRepr {
                    media_type: spec.media,
                    sequence: mseq,
                    timestamp: (now / MS) as u32,
                    frame_sequence: spec.frame_seq,
                    packets_in_frame: spec.pkts_in_frame,
                },
                rtp: Some(rtp::Repr {
                    marker: spec.marker,
                    payload_type: spec.payload_type,
                    sequence_number: spec.rtp_seq,
                    timestamp: spec.rtp_ts,
                    ssrc: spec.ssrc,
                    csrc_count: 0,
                    has_extension: spec.has_extension,
                }),
                payload,
            }
            .build(),
        )
    }

    /// Wrap media bytes in the SFU encapsulation, using participant `i`'s
    /// per-flow SFU sequence counter.
    fn wrap_sfu(&mut self, i: usize, direction: u8, media_bytes: &[u8]) -> Vec<u8> {
        let sfu_seq = {
            let p = &mut self.participants[i];
            p.sfu_seq = p.sfu_seq.wrapping_add(1);
            p.sfu_seq
        };
        let mut out = vec![0u8; zoom::SFU_ENCAP_LEN + media_bytes.len()];
        SfuEncapRepr {
            encap_type: SFU_TYPE_MEDIA,
            sequence: sfu_seq,
            direction,
        }
        .emit(&mut zoom::SfuEncap::new_unchecked(
            &mut out[..zoom::SFU_ENCAP_LEN],
        ));
        out[zoom::SFU_ENCAP_LEN..].copy_from_slice(media_bytes);
        out
    }

    /// Send a media packet from its sender, attempt-aware for
    /// retransmission.
    fn send_media(&mut self, now: Nanos, spec: PacketSpec, attempt: u8) {
        if !self.alive(spec.sender) {
            return;
        }
        self.stats.media_packets_sent += 1;
        if spec.media.is_rtp_media() && attempt == 0 {
            let midx = Self::media_index(spec.media);
            let p = &mut self.participants[spec.sender];
            let c = &mut p.sr_counts[midx];
            c.0 = c.0.wrapping_add(1);
            c.1 = c.1.wrapping_add(spec.payload_len as u32);
        }
        let media_bytes = self.build_media_bytes(now, &spec);
        match self.mode {
            Mode::Sfu => self.send_media_sfu(now, spec, media_bytes, attempt),
            Mode::P2p => self.send_media_p2p(now, spec, media_bytes, attempt),
        }
    }

    fn send_rtcp(&mut self, now: Nanos, spec: PacketSpec, body: Vec<u8>, media: usize) {
        let mseq = {
            let p = &mut self.participants[spec.sender];
            p.media_seq[media] = p.media_seq[media].wrapping_add(1);
            p.media_seq[media]
        };
        let media_bytes = Rc::new(
            zoom::Builder {
                sfu: None,
                media: MediaEncapRepr {
                    media_type: spec.media,
                    sequence: mseq,
                    timestamp: (now / MS) as u32,
                    frame_sequence: None,
                    packets_in_frame: None,
                },
                rtp: None,
                payload: body,
            }
            .build(),
        );
        match self.mode {
            Mode::Sfu => self.send_media_sfu(now, spec, media_bytes, 2), // no retx
            Mode::P2p => self.send_media_p2p(now, spec, media_bytes, 2),
        }
    }

    fn send_media_sfu(
        &mut self,
        now: Nanos,
        spec: PacketSpec,
        media_bytes: MediaBytes,
        attempt: u8,
    ) {
        let i = spec.sender;
        let on_campus = self.participants[i].cfg.on_campus;
        let (src, sport, dst, dport) = self.flow_for(i, spec.flow_midx);

        // Leg 1: client → tap (campus clients) / part of the WAN path
        // (off-campus clients, invisible here).
        let (tap_time, leg1_ok) = if on_campus {
            let d1 = {
                let p = &mut self.participants[i];
                p.path.campus_up.traverse(now, &mut self.rng)
            };
            match d1 {
                Some(d1) => (now + d1, true),
                None => (now, false),
            }
        } else {
            (now, true)
        };
        if on_campus && leg1_ok {
            let up_payload = self.wrap_sfu(i, DIR_TO_SFU, &media_bytes);
            let rec = Record::full(
                0,
                compose::udp_ipv4_ethernet(src, dst, sport, dport, &up_payload),
            );
            self.queue.push(tap_time, Ev::Emit(rec));
        }
        if !leg1_ok {
            self.schedule_retransmit(now, spec, attempt);
            return;
        }
        // Leg 2: tap → SFU.
        let d2 = {
            let p = &mut self.participants[i];
            p.path.wan_up.traverse(tap_time, &mut self.rng)
        };
        match d2 {
            Some(d2) => {
                let proc = self.participants[i].path.sfu_processing;
                self.queue.push(
                    tap_time + d2 + proc,
                    Ev::SfuArrival {
                        spec,
                        media_bytes,
                        sent_at: now,
                    },
                );
            }
            None => self.schedule_retransmit(now, spec, attempt),
        }
    }

    fn schedule_retransmit(&mut self, now: Nanos, spec: PacketSpec, attempt: u8) {
        if attempt >= 2 || !spec.media.is_rtp_media() {
            // Lost for good (Zoom retransmits at most twice; RTCP and
            // control packets are never retransmitted).
            if spec.media.is_rtp_media() {
                self.stats.packets_lost_for_good += 1;
                for j in 0..self.participants.len() {
                    if j != spec.sender && self.alive(j) {
                        self.participants[j].qos.packet_lost(now);
                    }
                }
            }
            return;
        }
        let rto = self.participants[spec.sender].path.nominal_client_sfu_rtt() + 100 * MS;
        self.queue.push(
            now + rto,
            Ev::Retransmit {
                spec,
                attempt: attempt + 1,
            },
        );
    }

    fn on_sfu_arrival(
        &mut self,
        now: Nanos,
        spec: PacketSpec,
        media_bytes: MediaBytes,
        sent_at: Nanos,
    ) {
        for j in 0..self.participants.len() {
            if j == spec.sender || !self.alive(j) {
                continue;
            }
            self.forward_copy(now, spec, Rc::clone(&media_bytes), j, sent_at, 0);
        }
    }

    fn forward_copy(
        &mut self,
        t_sfu: Nanos,
        spec: PacketSpec,
        media_bytes: MediaBytes,
        j: usize,
        sent_at: Nanos,
        attempt: u8,
    ) {
        let on_campus = self.participants[j].cfg.on_campus;
        // Leg 3: SFU → tap (campus receivers) / SFU → client (off campus).
        let d3 = {
            let p = &mut self.participants[j];
            p.path.wan_down.traverse(t_sfu, &mut self.rng)
        };
        let Some(d3) = d3 else {
            self.schedule_forward_retransmit(t_sfu, spec, media_bytes, j, sent_at, attempt);
            return;
        };
        let t_tap = t_sfu + d3;
        if on_campus {
            let down_payload = self.wrap_sfu(j, DIR_FROM_SFU, &media_bytes);
            let dst_ip = self.participants[j].cfg.ip;
            let dport = self.participants[j].ports[spec.flow_midx];
            let rec = Record::full(
                0,
                compose::udp_ipv4_ethernet(
                    self.cfg.sfu_ip,
                    dst_ip,
                    ZOOM_SFU_PORT,
                    dport,
                    &down_payload,
                ),
            );
            self.queue.push(t_tap, Ev::Emit(rec));
        }
        // Leg 4: tap → client (campus only; off-campus delivery is the
        // WAN leg above).
        let d4 = if on_campus {
            let p = &mut self.participants[j];
            p.path.campus_down.traverse(t_tap, &mut self.rng)
        } else {
            Some(0)
        };
        match d4 {
            Some(d4) => self.deliver(t_tap + d4, spec, j, sent_at),
            None => self.schedule_forward_retransmit(t_tap, spec, media_bytes, j, sent_at, attempt),
        }
    }

    fn schedule_forward_retransmit(
        &mut self,
        now: Nanos,
        spec: PacketSpec,
        media_bytes: MediaBytes,
        j: usize,
        sent_at: Nanos,
        attempt: u8,
    ) {
        if attempt >= 2 || !spec.media.is_rtp_media() {
            if spec.media.is_rtp_media() {
                self.stats.packets_lost_for_good += 1;
                self.participants[j].qos.packet_lost(now);
            }
            return;
        }
        let rto = self.participants[j].path.nominal_tap_sfu_rtt() + 100 * MS;
        self.queue.push(
            now + rto,
            Ev::ForwardRetransmit {
                spec,
                media_bytes,
                to: j,
                sent_at,
                attempt: attempt + 1,
            },
        );
    }

    fn send_media_p2p(
        &mut self,
        now: Nanos,
        spec: PacketSpec,
        media_bytes: MediaBytes,
        attempt: u8,
    ) {
        let i = spec.sender;
        let j = 1 - i; // P2P is strictly two-party
        let (src, sport, dst, dport) = self.flow_for(i, 0);
        let sender_campus = self.participants[i].cfg.on_campus;
        let receiver_campus = self.participants[j].cfg.on_campus;
        // The packet crosses the border tap only when exactly one endpoint
        // is on campus.
        let crosses_tap = sender_campus != receiver_campus;

        let d_a = {
            let p = &mut self.participants[i];
            if sender_campus {
                p.path.campus_up.traverse(now, &mut self.rng)
            } else {
                p.path.wan_up.traverse(now, &mut self.rng)
            }
        };
        let Some(d_a) = d_a else {
            self.schedule_retransmit(now, spec, attempt);
            return;
        };
        let t_tap = now + d_a;
        if crosses_tap {
            let rec = Record::full(
                0,
                compose::udp_ipv4_ethernet(src, dst, sport, dport, &media_bytes),
            );
            self.queue.push(t_tap, Ev::Emit(rec));
        }
        let d_b = {
            let p = &mut self.participants[j];
            if receiver_campus {
                p.path.campus_down.traverse(t_tap, &mut self.rng)
            } else {
                p.path.wan_down.traverse(t_tap, &mut self.rng)
            }
        };
        match d_b {
            Some(d) => self.queue.push(
                t_tap + d,
                Ev::P2pArrival {
                    spec,
                    to: j,
                    sent_at: now,
                },
            ),
            None => self.schedule_retransmit(t_tap, spec, attempt),
        }
    }

    /// Receiver-side bookkeeping: true jitter (over transit times, RFC
    /// 3550 style) and frame assembly for delivered-fps ground truth.
    /// Also feeds the *sender's* rate controller with the end-to-end
    /// transit — modeling Zoom's receiver-feedback loop, which is what
    /// lets the sender adapt when the congestion sits on the receiver's
    /// side of the SFU. Only ONE designated receiver feeds the loop:
    /// mixing transits of different receivers (whose paths differ by tens
    /// of ms) would read as huge jitter and spuriously degrade everyone.
    fn deliver(&mut self, now: Nanos, spec: PacketSpec, j: usize, sent_at: Nanos) {
        let feedback_receiver = (spec.sender + 1) % self.participants.len();
        if spec.media == MediaType::Video && j == feedback_receiver {
            let sender = &mut self.participants[spec.sender];
            sender.rate.observe(sent_at, now);
        }
        let p = &mut self.participants[j];
        if spec.media == MediaType::Video {
            let transit = now as i64 - sent_at as i64;
            if let Some(prev) = p.last_transit {
                let d = (transit - prev).unsigned_abs() as f64;
                p.jitter_truth += (d - p.jitter_truth) / 16.0;
            }
            p.last_transit = Some(transit);
        }
        if spec.part_of_frame && spec.media == MediaType::Video {
            let key = (spec.ssrc, spec.rtp_ts);
            let expected = spec.pkts_in_frame.unwrap_or(1);
            let asm = p.frame_asm.entry(key).or_insert_with(|| FrameAsm {
                expected,
                seqs: Vec::new(),
                bytes: spec.frame_bytes,
                first_at: now,
            });
            if !asm.seqs.contains(&spec.rtp_seq) {
                asm.seqs.push(spec.rtp_seq);
                if asm.seqs.len() >= usize::from(asm.expected) {
                    let bytes = asm.bytes;
                    p.frame_asm.remove(&key);
                    p.qos.frame_delivered(now, bytes);
                }
            }
        }
    }
}

impl Iterator for MeetingSim {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        while let Some((t, ev)) = self.queue.pop() {
            if let Some(mut record) = self.handle(t, ev) {
                record.ts_nanos = t;
                return Some(record);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_wire::dissect::{self, P2pProbe};
    use zoom_wire::pcap::LinkType;

    fn two_party(p2p_at: Option<Nanos>, duration: Nanos) -> MeetingConfig {
        MeetingConfig {
            id: 1,
            sfu_ip: Ipv4Addr::new(170, 114, 1, 10),
            zc_ip: Ipv4Addr::new(170, 114, 2, 20),
            participants: vec![
                ParticipantConfig::standard(Ipv4Addr::new(10, 8, 0, 5), 0, duration),
                ParticipantConfig {
                    on_campus: false,
                    ..ParticipantConfig::standard(Ipv4Addr::new(98, 23, 1, 7), 0, duration)
                },
            ],
            p2p_switch_at: p2p_at,
            control_tcp: true,
            keepalives: true,
            seed: 42,
        }
    }

    #[test]
    fn records_are_time_ordered_and_parse() {
        let sim = MeetingSim::new(two_party(None, 10 * SEC));
        let mut last = 0;
        let mut media = 0;
        let mut count = 0;
        for r in sim {
            assert!(r.ts_nanos >= last);
            last = r.ts_nanos;
            count += 1;
            let d = dissect::dissect(r.ts_nanos, &r.data, LinkType::Ethernet, P2pProbe::Off)
                .expect("dissectable");
            if d.zoom().and_then(|z| z.rtp.as_ref()).is_some() {
                media += 1;
            }
        }
        assert!(count > 500, "only {count} records");
        assert!(media > 300, "only {media} media records");
    }

    #[test]
    fn both_directions_visible_for_campus_client() {
        let sim = MeetingSim::new(two_party(None, 10 * SEC));
        let mut up = 0;
        let mut down = 0;
        for r in sim {
            let d =
                dissect::dissect(r.ts_nanos, &r.data, LinkType::Ethernet, P2pProbe::Off).unwrap();
            if d.five_tuple.dst_port == ZOOM_SFU_PORT {
                up += 1;
            } else if d.five_tuple.src_port == ZOOM_SFU_PORT {
                down += 1;
            }
        }
        assert!(up > 100, "up {up}");
        assert!(down > 100, "down {down}");
    }

    #[test]
    fn off_campus_address_never_at_monitor_in_sfu_mode() {
        let sim = MeetingSim::new(two_party(None, 10 * SEC));
        let peer: std::net::IpAddr = "98.23.1.7".parse().unwrap();
        for r in sim {
            let d =
                dissect::dissect(r.ts_nanos, &r.data, LinkType::Ethernet, P2pProbe::Off).unwrap();
            assert_ne!(d.five_tuple.src_ip, peer);
            assert_ne!(d.five_tuple.dst_ip, peer);
        }
    }

    #[test]
    fn p2p_switch_changes_framing_and_ports() {
        let sim = MeetingSim::new(two_party(Some(6 * SEC), 12 * SEC));
        let mut saw_stun = false;
        let mut saw_p2p_media = false;
        let mut p2p_flow_port = None;
        for r in sim {
            let d =
                dissect::dissect(r.ts_nanos, &r.data, LinkType::Ethernet, P2pProbe::Auto).unwrap();
            if d.is_stun() {
                saw_stun = true;
            }
            if let dissect::App::Zoom(zoom::Framing::P2p, ref z) = d.app {
                if z.rtp.is_some() {
                    saw_p2p_media = true;
                    let peer: std::net::IpAddr = "98.23.1.7".parse().unwrap();
                    assert!(d.five_tuple.src_ip == peer || d.five_tuple.dst_ip == peer);
                    let campus_port = if d.five_tuple.src_ip == peer {
                        d.five_tuple.dst_port
                    } else {
                        d.five_tuple.src_port
                    };
                    p2p_flow_port.get_or_insert(campus_port);
                    assert_eq!(p2p_flow_port, Some(campus_port));
                }
            }
        }
        assert!(saw_stun, "no STUN exchange observed");
        assert!(saw_p2p_media, "no P2P media observed");
    }

    #[test]
    fn stun_port_matches_later_p2p_port() {
        // The detection invariant of §4.1: the campus-side port of the
        // STUN exchange equals the campus-side port of the P2P flow.
        let sim = MeetingSim::new(two_party(Some(6 * SEC), 12 * SEC));
        let mut stun_port = None;
        let mut p2p_ports = std::collections::HashSet::new();
        let campus: std::net::IpAddr = "10.8.0.5".parse().unwrap();
        for r in sim {
            let d =
                dissect::dissect(r.ts_nanos, &r.data, LinkType::Ethernet, P2pProbe::Auto).unwrap();
            if d.is_stun() && d.five_tuple.src_ip == campus {
                stun_port = Some(d.five_tuple.src_port);
            }
            if let dissect::App::Zoom(zoom::Framing::P2p, _) = d.app {
                if d.five_tuple.src_ip == campus {
                    p2p_ports.insert(d.five_tuple.src_port);
                }
            }
        }
        let stun_port = stun_port.expect("stun seen");
        assert!(
            p2p_ports.contains(&stun_port),
            "{stun_port} vs {p2p_ports:?}"
        );
    }

    #[test]
    fn ssrc_set_is_small_and_distinct_per_media() {
        let sim = MeetingSim::new(two_party(None, 8 * SEC));
        let mut ssrcs = std::collections::HashSet::new();
        for r in sim {
            let d =
                dissect::dissect(r.ts_nanos, &r.data, LinkType::Ethernet, P2pProbe::Off).unwrap();
            if let Some(rtp) = d.zoom().and_then(|z| z.rtp) {
                ssrcs.insert(rtp.ssrc);
                assert!(rtp.ssrc < 64, "Zoom-style small SSRC, got {}", rtp.ssrc);
            }
        }
        assert!(ssrcs.len() >= 3, "ssrcs: {ssrcs:?}");
    }

    #[test]
    fn loss_produces_duplicate_rtp_seqs() {
        let mut cfg = two_party(None, 20 * SEC);
        cfg.participants[0].wan_loss = 0.08;
        let sim = MeetingSim::new(cfg);
        let mut seen: HashMap<(u32, u8, u16), u32> = HashMap::new();
        for r in sim {
            let d =
                dissect::dissect(r.ts_nanos, &r.data, LinkType::Ethernet, P2pProbe::Off).unwrap();
            if d.five_tuple.dst_port != ZOOM_SFU_PORT {
                continue;
            }
            if let Some(rtp) = d.zoom().and_then(|z| z.rtp) {
                *seen
                    .entry((rtp.ssrc, rtp.payload_type, rtp.sequence_number))
                    .or_default() += 1;
            }
        }
        let dups = seen.values().filter(|&&c| c > 1).count();
        assert!(dups > 3, "expected retransmission duplicates, got {dups}");
    }

    #[test]
    fn silent_audio_packets_have_fixed_payload() {
        let mut cfg = two_party(None, 15 * SEC);
        cfg.participants[0].audio = Some(AudioParams {
            mobile: false,
            talk_fraction: 0.05,
        });
        let sim = MeetingSim::new(cfg);
        let mut silent = 0;
        for r in sim {
            let d =
                dissect::dissect(r.ts_nanos, &r.data, LinkType::Ethernet, P2pProbe::Off).unwrap();
            if let Some(z) = d.zoom() {
                if z.payload_kind() == Some(zoom::RtpPayloadKind::AudioSilent) {
                    assert_eq!(z.media_payload_len, zoom::SILENT_AUDIO_PAYLOAD_LEN);
                    silent += 1;
                }
            }
        }
        assert!(silent > 50, "only {silent} silent packets");
    }

    #[test]
    fn rtcp_sender_reports_flow_once_per_second() {
        let sim = MeetingSim::new(two_party(None, 10 * SEC));
        let mut srs = 0;
        for r in sim {
            let d =
                dissect::dissect(r.ts_nanos, &r.data, LinkType::Ethernet, P2pProbe::Off).unwrap();
            if let Some(z) = d.zoom() {
                if !z.rtcp.is_empty() {
                    srs += 1;
                    assert!(matches!(z.rtcp[0], rtcp::Item::SenderReport { .. }));
                }
            }
        }
        assert!(srs >= 10, "only {srs} sender reports");
    }

    #[test]
    fn ground_truth_qos_collected() {
        let mut sim = MeetingSim::new(two_party(None, 12 * SEC));
        for _ in &mut sim {}
        let gt = sim.ground_truth();
        assert_eq!(gt.len(), 2);
        let fps_samples: Vec<f64> = gt[0].iter().map(|s| s.true_fps).collect();
        assert!(
            fps_samples.iter().sum::<f64>() / fps_samples.len() as f64 > 5.0,
            "fps {fps_samples:?}"
        );
        let latency = gt[0].last().unwrap().true_latency_ms;
        assert!(latency > 20.0 && latency < 120.0, "latency {latency}");
    }

    #[test]
    fn congestion_reduces_frame_rate() {
        let mut cfg = two_party(None, 90 * SEC);
        cfg.participants[1].congestion = vec![CongestionEvent {
            start: 30 * SEC,
            end: 80 * SEC,
            added_delay: 60 * MS,
            added_loss: 0.01,
        }];
        let mut sim = MeetingSim::new(cfg);
        for _ in &mut sim {}
        let gt = sim.ground_truth();
        let early: f64 = gt[0]
            .iter()
            .filter(|s| s.at > 5 * SEC && s.at < 28 * SEC)
            .map(|s| s.true_fps)
            .sum::<f64>()
            / 22.0;
        let late: f64 = gt[0]
            .iter()
            .filter(|s| s.at > 55 * SEC && s.at < 78 * SEC)
            .map(|s| s.true_fps)
            .sum::<f64>()
            / 22.0;
        assert!(
            late < early * 0.75,
            "expected rate adaptation: early {early:.1} late {late:.1}"
        );
    }

    #[test]
    fn passive_participant_emits_no_media_but_receives() {
        let mut cfg = two_party(None, 10 * SEC);
        cfg.participants[0].video = None;
        cfg.participants[0].audio = None;
        let sim = MeetingSim::new(cfg);
        let mut uplink_media = 0;
        let mut downlink_media = 0;
        for r in sim {
            let d =
                dissect::dissect(r.ts_nanos, &r.data, LinkType::Ethernet, P2pProbe::Off).unwrap();
            if d.zoom().and_then(|z| z.rtp.as_ref()).is_some() {
                if d.five_tuple.dst_port == ZOOM_SFU_PORT {
                    uplink_media += 1;
                } else {
                    downlink_media += 1;
                }
            }
        }
        assert_eq!(uplink_media, 0);
        assert!(downlink_media > 100);
    }
}
