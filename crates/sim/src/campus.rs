//! Campus-scale workload: many concurrent meetings plus background
//! traffic, merged into a single time-ordered packet stream.
//!
//! Reproduces the structure of the paper's 12-hour campus trace
//! (Appendix A, Figs. 14 & 17): a diurnal meeting-arrival process with
//! pronounced on-the-hour (and smaller half-hour) spikes, a lunchtime dip,
//! a mix of meeting sizes and media configurations, and — optionally —
//! non-Zoom background traffic so the capture pipeline has something to
//! filter.
//!
//! Absolute load is scaled by `scale` relative to the paper's campus
//! (1.8 B Zoom packets / 12 h ≈ 42.7 k pkt/s): at the default 1/32 the
//! trace keeps every distributional shape at ~3 % of the packet volume.

use crate::infra::{diurnal_intensity, Infrastructure};
use crate::meeting::{AudioParams, MeetingConfig, MeetingSim, ParticipantConfig, VideoParams};
use crate::path::CongestionEvent;
use crate::time::{Nanos, MS, SEC};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;
use zoom_wire::compose;
use zoom_wire::pcap::Record;
use zoom_wire::tcp;

/// Campus workload configuration.
#[derive(Debug, Clone)]
pub struct CampusConfig {
    /// Trace duration (the paper's is 12 h).
    pub duration: Nanos,
    /// Load scale relative to the paper's campus (1.0 = full 42.7 k pkt/s
    /// average Zoom load; default 1/32).
    pub scale: f64,
    /// Local time of day at trace start, hours.
    pub start_hour: f64,
    /// Campus client network (a /16 like the paper's).
    pub campus_net: Ipv4Addr,
    /// Emit non-Zoom background traffic at roughly this many packets per
    /// Zoom packet (the paper: 626 k pps total vs 42.7 k Zoom ≈ 13.6×).
    /// Zero disables background traffic.
    pub background_ratio: f64,
    pub seed: u64,
}

impl Default for CampusConfig {
    fn default() -> Self {
        CampusConfig {
            duration: 12 * 3_600 * SEC,
            scale: 1.0 / 32.0,
            start_hour: 9.0,
            campus_net: Ipv4Addr::new(10, 8, 0, 0),
            background_ratio: 0.0,
            seed: 7,
        }
    }
}

/// Ground-truth summary of one generated meeting, for validating the
/// grouping heuristic.
#[derive(Debug, Clone)]
pub struct MeetingTruth {
    pub id: u32,
    pub start: Nanos,
    pub end: Nanos,
    pub participants: usize,
    pub on_campus: usize,
    pub p2p: bool,
    pub sfu_ip: Ipv4Addr,
    /// Participants that send any media — the only ones a passive monitor
    /// can possibly count (§4.3.1).
    pub active_participants: usize,
}

/// The generated campus scenario: meeting configs plus ground truth.
pub struct CampusScenario {
    pub meetings: Vec<MeetingConfig>,
    pub truth: Vec<MeetingTruth>,
    pub config: CampusConfig,
}

/// Concurrent meetings at peak for scale 1.0, calibrated so that the
/// generated *monitor-visible* Zoom packet rate matches the paper's
/// average (42.7 k pkt/s at scale 1.0): each meeting contributes several
/// hundred pps of uplink + fanned-out downlink copies at the tap.
const PEAK_CONCURRENT_AT_FULL_SCALE: f64 = 60.0;
/// Mean meeting duration, minutes.
const MEAN_DURATION_MIN: f64 = 38.0;

/// Sample a small-λ Poisson variate (Knuth's product method).
fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1_000 {
            return k; // guard against pathological λ
        }
    }
}

impl CampusScenario {
    /// Generate the meeting population for `config`.
    pub fn generate(config: CampusConfig, infra: &Infrastructure) -> CampusScenario {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut meetings = Vec::new();
        let mut truth = Vec::new();
        let minutes = config.duration / (60 * SEC);
        // Arrival rate: peak concurrency over mean duration, modulated by
        // the diurnal curve and hour/half-hour spikes.
        let peak_per_min = PEAK_CONCURRENT_AT_FULL_SCALE * config.scale / MEAN_DURATION_MIN;
        let mut id = 0u32;
        for m in 0..minutes {
            let tod = ((config.start_hour * 3_600.0) as u64) * SEC + m * 60 * SEC;
            let spike = match m % 60 {
                0 => 6.0,
                30 => 2.5,
                _ => 0.55,
            };
            let lambda = peak_per_min * diurnal_intensity(tod) * spike;
            for _ in 0..poisson(&mut rng, lambda) {
                id += 1;
                let start = m * 60 * SEC + rng.gen_range(0..50_000) * MS;
                if let Some((cfg, t)) = Self::one_meeting(&mut rng, &config, infra, id, start) {
                    meetings.push(cfg);
                    truth.push(t);
                }
            }
        }
        CampusScenario {
            meetings,
            truth,
            config,
        }
    }

    fn one_meeting(
        rng: &mut StdRng,
        config: &CampusConfig,
        infra: &Infrastructure,
        id: u32,
        start: Nanos,
    ) -> Option<(MeetingConfig, MeetingTruth)> {
        // Meeting size distribution.
        let size = match rng.gen_range(0..100) {
            0..=34 => 2,
            35..=74 => rng.gen_range(3..=5),
            75..=94 => rng.gen_range(6..=10),
            _ => rng.gen_range(11..=20),
        };
        // Duration, with many meetings scheduled for ~30/60 minutes.
        let dur_min = match rng.gen_range(0..100) {
            0..=29 => 30.0 - rng.gen_range(1.0..5.0),
            30..=54 => 60.0 - rng.gen_range(1.0..8.0),
            _ => rng.gen_range(6.0..90.0),
        };
        let end = (start + (dur_min * 60.0) as u64 * SEC).min(config.duration);
        if end <= start + 30 * SEC {
            return None;
        }

        let campus_octets = config.campus_net.octets();
        let mut participants = Vec::new();
        let mut on_campus_count = 0;
        let mut active = 0;
        for p in 0..size {
            // At least one participant is on campus; otherwise the
            // meeting would be invisible at the border tap.
            let on_campus = p == 0 || rng.gen_bool(0.3);
            let ip = if on_campus {
                on_campus_count += 1;
                Ipv4Addr::new(
                    campus_octets[0],
                    campus_octets[1],
                    rng.gen_range(1..250),
                    rng.gen_range(2..250),
                )
            } else {
                const PUBLIC_FIRST_OCTETS: [u8; 8] = [24, 67, 73, 98, 142, 151, 186, 203];
                Ipv4Addr::new(
                    PUBLIC_FIRST_OCTETS[rng.gen_range(0..8)],
                    rng.gen_range(1..250),
                    rng.gen_range(1..250),
                    rng.gen_range(2..250),
                )
            };
            let join_at = if p == 0 {
                start
            } else {
                start + rng.gen_range(0..20) * SEC
            };
            let leave_at = if rng.gen_bool(0.1) {
                join_at + (end - join_at) / 2 // early leaver
            } else {
                end
            };
            let video = if rng.gen_bool(0.8) {
                Some(VideoParams {
                    bitrate: rng.gen_range(160_000.0..560_000.0),
                    fps: rng.gen_range(26.0..29.0),
                    motion: rng.gen_range(0.6..1.8),
                    // Thumbnail/"speaker-only" layouts pin many streams to
                    // reduced mode — the 14 fps cluster of Fig. 16b.
                    reduced: rng.gen_bool(0.65),
                })
            } else {
                None
            };
            let audio = if rng.gen_bool(0.95) {
                Some(AudioParams {
                    mobile: rng.gen_bool(0.04),
                    talk_fraction: rng.gen_range(0.3..(1.0 / size as f64 + 0.75)),
                })
            } else {
                None
            };
            if video.is_some() || audio.is_some() {
                active += 1;
            }
            // Occasional cross-traffic congestion.
            let congestion = if rng.gen_bool(0.12) {
                let at = start + rng.gen_range(0..((end - start) / SEC).max(1)) * SEC;
                vec![CongestionEvent {
                    start: at,
                    end: at + rng.gen_range(8..30) * SEC,
                    added_delay: rng.gen_range(15..70) * MS,
                    added_loss: rng.gen_range(0.0..0.03),
                }]
            } else {
                Vec::new()
            };
            participants.push(ParticipantConfig {
                ip,
                on_campus,
                join_at,
                leave_at,
                video,
                audio,
                screen_share: None,
                wan_ms: rng.gen_range(10..55),
                // Residential/wifi path diversity: jitter spans more than
                // an order of magnitude across participants.
                wan_jitter_us: match rng.gen_range(0..100) {
                    // A few really bad links: cellular/overloaded wifi —
                    // Fig. 15d's >40 ms tail.
                    0..=6 => rng.gen_range(60_000..140_000),
                    7..=41 => rng.gen_range(10_000..60_000), // wifi
                    _ => rng.gen_range(800..6_000),          // wired
                },
                wan_loss: if rng.gen_bool(0.1) {
                    rng.gen_range(0.005..0.03)
                } else {
                    rng.gen_range(0.0002..0.004)
                },
                congestion,
            });
        }
        // One sharer in ~45 % of meetings.
        if rng.gen_bool(0.45) {
            let sharer = rng.gen_range(0..participants.len());
            let p = &mut participants[sharer];
            let s0 = p.join_at + rng.gen_range(10..60) * SEC;
            let s1 = (s0 + rng.gen_range(120..1_800) * SEC).min(p.leave_at);
            if s1 > s0 + 10 * SEC {
                p.screen_share = Some((s0, s1));
            }
        }

        let p2p = size == 2 && rng.gen_bool(0.4);
        let sfu_ip = infra.pick_mmr(rng).ip;
        let zc_ip = infra.pick_zc(rng).ip;
        let cfg = MeetingConfig {
            id,
            sfu_ip,
            zc_ip,
            participants,
            p2p_switch_at: if p2p {
                Some(start + rng.gen_range(10..40) * SEC)
            } else {
                None
            },
            control_tcp: true,
            keepalives: true,
            seed: u64::from(id) ^ 0x5eed,
        };
        let t = MeetingTruth {
            id,
            start,
            end,
            participants: size,
            on_campus: on_campus_count,
            p2p,
            sfu_ip,
            active_participants: active,
        };
        Some((cfg, t))
    }

    /// Run the scenario as one merged, time-ordered record stream.
    pub fn into_stream(self) -> CampusStream {
        let background = if self.config.background_ratio > 0.0 {
            Some(BackgroundGen::new(&self.config))
        } else {
            None
        };
        CampusStream::new(
            self.meetings.into_iter().map(MeetingSim::new).collect(),
            background,
        )
    }
}

/// Background (non-Zoom) traffic generator: web, DNS, and bulk flows from
/// random campus clients — what the capture pipeline must reject.
pub struct BackgroundGen {
    rng: StdRng,
    now: Nanos,
    end: Nanos,
    /// Mean packets per second at peak.
    rate: f64,
    campus_net: Ipv4Addr,
}

impl BackgroundGen {
    fn new(config: &CampusConfig) -> BackgroundGen {
        let zoom_pps = 42_733.0 * config.scale;
        BackgroundGen {
            rng: StdRng::seed_from_u64(config.seed ^ 0xbac6_0000),
            now: 0,
            end: config.duration,
            rate: zoom_pps * config.background_ratio,
            campus_net: config.campus_net,
        }
    }
}

impl Iterator for BackgroundGen {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        if self.rate <= 0.0 {
            return None;
        }
        let intensity = diurnal_intensity(9 * 3_600 * SEC + self.now).max(0.2);
        let mean_gap = SEC as f64 / (self.rate * intensity);
        let gap = (-self.rng.gen::<f64>().max(1e-12).ln() * mean_gap) as Nanos;
        self.now += gap.max(1);
        if self.now >= self.end {
            return None;
        }
        let o = self.campus_net.octets();
        let client = Ipv4Addr::new(
            o[0],
            o[1],
            self.rng.gen_range(1..250),
            self.rng.gen_range(2..250),
        );
        const PUBLIC_FIRST_OCTETS: [u8; 8] = [13, 23, 31, 34, 104, 142, 151, 172];
        let server = Ipv4Addr::new(
            PUBLIC_FIRST_OCTETS[self.rng.gen_range(0..8)],
            self.rng.gen_range(1..250),
            self.rng.gen_range(1..250),
            self.rng.gen_range(2..250),
        );
        let outbound = self.rng.gen_bool(0.45);
        let data = match self.rng.gen_range(0..10) {
            // DNS.
            0 => {
                let len = self.rng.gen_range(30..90);
                let mut payload = vec![0u8; len];
                self.rng.fill(&mut payload[..]);
                if outbound {
                    compose::udp_ipv4_ethernet(
                        client,
                        server,
                        self.rng.gen_range(30_000..60_000),
                        53,
                        &payload,
                    )
                } else {
                    compose::udp_ipv4_ethernet(
                        server,
                        client,
                        53,
                        self.rng.gen_range(30_000..60_000),
                        &payload,
                    )
                }
            }
            // QUIC-ish UDP 443.
            1 | 2 => {
                let len = self.rng.gen_range(100..1_300);
                let mut payload = vec![0u8; len];
                self.rng.fill(&mut payload[..]);
                if outbound {
                    compose::udp_ipv4_ethernet(
                        client,
                        server,
                        self.rng.gen_range(30_000..60_000),
                        443,
                        &payload,
                    )
                } else {
                    compose::udp_ipv4_ethernet(
                        server,
                        client,
                        443,
                        self.rng.gen_range(30_000..60_000),
                        &payload,
                    )
                }
            }
            // HTTPS TCP (the bulk).
            _ => {
                let len = self.rng.gen_range(0..1_400);
                let mut payload = vec![0u8; len];
                self.rng.fill(&mut payload[..]);
                let flags = tcp::Flags {
                    ack: true,
                    psh: !payload.is_empty(),
                    ..Default::default()
                };
                if outbound {
                    compose::tcp_ipv4_ethernet(
                        client,
                        server,
                        self.rng.gen_range(30_000..60_000),
                        443,
                        self.rng.gen(),
                        self.rng.gen(),
                        flags,
                        &payload,
                    )
                } else {
                    compose::tcp_ipv4_ethernet(
                        server,
                        client,
                        443,
                        self.rng.gen_range(30_000..60_000),
                        self.rng.gen(),
                        self.rng.gen(),
                        flags,
                        &payload,
                    )
                }
            }
        };
        Some(Record::full(self.now, data))
    }
}

/// K-way time-ordered merge of meeting streams plus optional background.
pub struct CampusStream {
    sources: Vec<SourceState>,
    heap: BinaryHeap<std::cmp::Reverse<(Nanos, usize)>>,
    /// Total records yielded so far.
    pub records: u64,
}

enum SourceKind {
    Meeting(MeetingSim),
    Background(BackgroundGen),
}

struct SourceState {
    kind: SourceKind,
    buffered: Option<Record>,
}

impl SourceState {
    /// Replace the buffer with the next record, returning the old buffer.
    fn pull(&mut self) -> Option<Record> {
        let next = match &mut self.kind {
            SourceKind::Meeting(m) => m.next(),
            SourceKind::Background(b) => b.next(),
        };
        std::mem::replace(&mut self.buffered, next)
    }
}

impl CampusStream {
    fn new(meetings: Vec<MeetingSim>, background: Option<BackgroundGen>) -> CampusStream {
        let mut sources: Vec<SourceState> = meetings
            .into_iter()
            .map(|m| SourceState {
                kind: SourceKind::Meeting(m),
                buffered: None,
            })
            .collect();
        if let Some(b) = background {
            sources.push(SourceState {
                kind: SourceKind::Background(b),
                buffered: None,
            });
        }
        let mut heap = BinaryHeap::new();
        for (i, s) in sources.iter_mut().enumerate() {
            s.pull(); // prime the buffer
            if let Some(r) = &s.buffered {
                heap.push(std::cmp::Reverse((r.ts_nanos, i)));
            }
        }
        CampusStream {
            sources,
            heap,
            records: 0,
        }
    }
}

impl Iterator for CampusStream {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        let std::cmp::Reverse((_, i)) = self.heap.pop()?;
        let record = self.sources[i].pull();
        if let Some(r) = &self.sources[i].buffered {
            self.heap.push(std::cmp::Reverse((r.ts_nanos, i)));
        }
        self.records += 1;
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CampusConfig {
        CampusConfig {
            duration: 600 * SEC, // 10 minutes
            scale: 1.0 / 3.0,
            start_hour: 10.0,
            background_ratio: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn scenario_generates_meetings_with_campus_participants() {
        let infra = Infrastructure::generate();
        let s = CampusScenario::generate(small_config(), &infra);
        assert!(!s.meetings.is_empty());
        for (cfg, t) in s.meetings.iter().zip(&s.truth) {
            assert!(cfg.participants.iter().any(|p| p.on_campus));
            assert_eq!(cfg.participants.len(), t.participants);
            assert!(t.end > t.start);
        }
    }

    #[test]
    fn stream_is_time_ordered() {
        let infra = Infrastructure::generate();
        let s = CampusScenario::generate(small_config(), &infra);
        let mut last = 0;
        let mut n = 0u64;
        for r in s.into_stream() {
            assert!(r.ts_nanos >= last, "out of order at {n}");
            last = r.ts_nanos;
            n += 1;
        }
        assert!(n > 1_000, "only {n} records");
    }

    #[test]
    fn hour_spike_visible_in_arrivals() {
        let infra = Infrastructure::generate();
        let cfg = CampusConfig {
            duration: 2 * 3_600 * SEC,
            scale: 0.25,
            ..small_config()
        };
        let s = CampusScenario::generate(cfg, &infra);
        let hour_start = s
            .truth
            .iter()
            .filter(|t| (t.start / (60 * SEC)) % 60 < 5)
            .count();
        let mid_hour = s
            .truth
            .iter()
            .filter(|t| {
                let m = (t.start / (60 * SEC)) % 60;
                (40..45).contains(&m)
            })
            .count();
        assert!(
            hour_start > mid_hour,
            "hour-start {hour_start} vs mid-hour {mid_hour}"
        );
    }

    #[test]
    fn background_traffic_is_non_zoom() {
        let infra = Infrastructure::generate();
        let mut cfg = small_config();
        cfg.duration = 30 * SEC;
        cfg.background_ratio = 3.0;
        let s = CampusScenario::generate(cfg, &infra);
        let mut zoomish = 0u64;
        let mut other = 0u64;
        for r in s.into_stream() {
            let d = zoom_wire::dissect::dissect(
                r.ts_nanos,
                &r.data,
                zoom_wire::pcap::LinkType::Ethernet,
                zoom_wire::dissect::P2pProbe::Off,
            );
            match d {
                Ok(d) if d.five_tuple.involves_port(8801) || d.is_stun() => zoomish += 1,
                _ => other += 1,
            }
        }
        assert!(other > zoomish / 2, "background {other} vs zoom {zoomish}");
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let total: u64 = (0..n).map(|_| u64::from(poisson(&mut rng, 2.5))).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn deterministic_for_seed() {
        let infra = Infrastructure::generate();
        let a: Vec<u64> = CampusScenario::generate(small_config(), &infra)
            .into_stream()
            .take(200)
            .map(|r| r.ts_nanos)
            .collect();
        let b: Vec<u64> = CampusScenario::generate(small_config(), &infra)
            .into_stream()
            .take(200)
            .map(|r| r.ts_nanos)
            .collect();
        assert_eq!(a, b);
    }
}
