//! Synthetic Zoom server infrastructure (Appendix B of the paper).
//!
//! The paper analyzed Zoom's published IP list (117 IPv4 networks, /16 to
//! /27, 427,168 addresses; 36.7 % in Zoom's AS30103, 39.6 % AWS, 23.2 %
//! Oracle Cloud, 0.5 % other), reverse-resolved every address, and found
//! 5,452 multi-media routers (MMRs — Zoom's SFUs) and 256 zone controllers
//! (ZCs — STUN servers) named `zoom<loc><id><type>.<loc>.zoom.us`,
//! distributed over the sites of Table 7.
//!
//! We cannot ship Zoom's proprietary data feed, so this module *generates*
//! an infrastructure database with exactly that structure: the address
//! arithmetic, name parsing, and per-site rollups — the actual deliverable
//! code — run unchanged against the real list.

use crate::time::Nanos;
use rand::Rng;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use zoom_capture::cidr::Cidr;
use zoom_capture::zoom_nets::{Owner, ZoomIpList, ZoomNetwork};

/// Server roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerType {
    /// Multi-media router — Zoom's SFU.
    Mmr,
    /// Zone controller — STUN server, connection brokering.
    Zc,
}

impl ServerType {
    /// The suffix used in the reverse-DNS naming scheme.
    pub fn suffix(self) -> &'static str {
        match self {
            ServerType::Mmr => "mmr",
            ServerType::Zc => "zc",
        }
    }
}

/// One deployment site (a row of Table 7).
#[derive(Debug, Clone, Copy)]
pub struct Site {
    /// Human-readable location, as Table 7 prints it.
    pub location: &'static str,
    /// Two-letter code used in server names.
    pub code: &'static str,
    /// The location GeoIP reports — differs from the naming for the
    /// Frankfurt quirk the paper noticed (named like Denver, located in
    /// Germany).
    pub geo: &'static str,
    pub mmrs: u32,
    pub zcs: u32,
}

/// Table 7, encoded. MMRs sum to 5,452 and ZCs to 256.
pub const SITES: &[Site] = &[
    Site {
        location: "United States, California",
        code: "sjc",
        geo: "United States",
        mmrs: 1410,
        zcs: 68,
    },
    Site {
        location: "United States, New York",
        code: "ny",
        geo: "United States",
        mmrs: 1280,
        zcs: 62,
    },
    Site {
        location: "United States, Denver",
        code: "dv",
        geo: "United States",
        mmrs: 758,
        zcs: 21,
    },
    Site {
        location: "United States, Washington D.C.",
        code: "iad",
        geo: "United States",
        mmrs: 166,
        zcs: 4,
    },
    Site {
        location: "United States, Seattle",
        code: "sea",
        geo: "United States",
        mmrs: 96,
        zcs: 12,
    },
    Site {
        location: "Netherlands, Amsterdam",
        code: "am",
        geo: "Netherlands",
        mmrs: 419,
        zcs: 21,
    },
    Site {
        location: "China, Hongkong",
        code: "hk",
        geo: "China (Hongkong)",
        mmrs: 274,
        zcs: 8,
    },
    // The Frankfurt quirk: named with the Denver code, geolocated in
    // Germany (Appendix B).
    Site {
        location: "Germany, Frankfurt",
        code: "dv",
        geo: "Germany",
        mmrs: 214,
        zcs: 2,
    },
    Site {
        location: "Australia, Sydney/Melbourne",
        code: "sy",
        geo: "Australia",
        mmrs: 210,
        zcs: 20,
    },
    Site {
        location: "India, Mumbai/Hyderabad",
        code: "mb",
        geo: "India",
        mmrs: 196,
        zcs: 10,
    },
    Site {
        location: "Japan, Tokyo",
        code: "ty",
        geo: "Japan",
        mmrs: 128,
        zcs: 2,
    },
    Site {
        location: "Brasil, Sao Paulo",
        code: "sp",
        geo: "Brasil",
        mmrs: 124,
        zcs: 6,
    },
    Site {
        location: "Canada, Toronto",
        code: "tr",
        geo: "Canada",
        mmrs: 93,
        zcs: 12,
    },
    Site {
        location: "China, Mainland",
        code: "cn",
        geo: "China (Mainland)",
        mmrs: 84,
        zcs: 8,
    },
];

/// One server in the database.
#[derive(Debug, Clone)]
pub struct ZoomServer {
    pub ip: Ipv4Addr,
    pub name: String,
    pub server_type: ServerType,
    pub site: &'static Site,
}

/// The generated infrastructure: IP list, servers, and lookup tables.
#[derive(Debug)]
pub struct Infrastructure {
    pub ip_list: ZoomIpList,
    pub servers: Vec<ZoomServer>,
    by_ip: HashMap<Ipv4Addr, usize>,
    mmr_indices: Vec<usize>,
    zc_indices: Vec<usize>,
}

/// Target totals from Appendix B.
pub const TOTAL_NETWORKS: usize = 117;
pub const TOTAL_ADDRESSES: u64 = 427_168;
const ZOOM_AS_ADDRS: u64 = 156_672; // 36.7 %
const AWS_ADDRS: u64 = 169_152; // 39.6 %
const ORACLE_ADDRS: u64 = 99_456; // 23.2 %
const OTHER_ADDRS: u64 = TOTAL_ADDRESSES - ZOOM_AS_ADDRS - AWS_ADDRS - ORACLE_ADDRS;

/// Decompose `budget` addresses into power-of-two prefixes no larger than
/// /16 and no smaller than /27, carving from `base`/8 space.
fn carve(base: u8, budget: u64) -> Vec<Cidr> {
    let mut out = Vec::new();
    let mut remaining = budget;
    let mut cursor = u32::from(Ipv4Addr::new(base, 0, 0, 0));
    while remaining > 0 {
        // Largest power of two ≤ remaining, capped at /16 (65,536) and
        // floored at /27 (32).
        let mut block = 1u64 << (63 - remaining.leading_zeros() as u64);
        block = block.clamp(32, 65_536);
        if block > remaining {
            block = 32; // final sliver: one /27 (budgets are /27-aligned)
        }
        let prefix_len = 32 - (block as u32).trailing_zeros() as u8;
        out.push(Cidr::new(Ipv4Addr::from(cursor), prefix_len));
        cursor += block as u32 * 2; // leave gaps so networks are disjoint
        remaining -= block.min(remaining);
    }
    out
}

/// Split prefixes (each split turns one /n into two /(n+1)) until the list
/// reaches `target` entries, preserving total coverage.
fn split_to_count(mut nets: Vec<(Cidr, Owner)>, target: usize) -> Vec<(Cidr, Owner)> {
    while nets.len() < target {
        // Split the currently largest network.
        let (idx, _) = nets
            .iter()
            .enumerate()
            .max_by_key(|(_, (c, _))| c.size())
            .expect("non-empty");
        let (c, o) = nets.remove(idx);
        if c.prefix_len() >= 27 {
            break; // cannot split further within the /16../27 band
        }
        let half = c.size() / 2;
        let a = Cidr::new(c.address(), c.prefix_len() + 1);
        let b = Cidr::new(c.nth(half), c.prefix_len() + 1);
        nets.push((a, o));
        nets.push((b, o));
    }
    nets
}

impl Infrastructure {
    /// Generate the synthetic infrastructure. Deterministic — no RNG: the
    /// structure is fixed by the paper's published numbers.
    pub fn generate() -> Infrastructure {
        let mut nets: Vec<(Cidr, Owner)> = Vec::new();
        for c in carve(170, ZOOM_AS_ADDRS) {
            nets.push((c, Owner::ZoomAs));
        }
        for c in carve(52, AWS_ADDRS) {
            nets.push((c, Owner::Aws));
        }
        for c in carve(129, ORACLE_ADDRS) {
            nets.push((c, Owner::OracleCloud));
        }
        for c in carve(101, OTHER_ADDRS) {
            nets.push((c, Owner::Other));
        }
        let nets = split_to_count(nets, TOTAL_NETWORKS);
        let ip_list = ZoomIpList::from_networks(
            nets.iter()
                .map(|(cidr, owner)| ZoomNetwork {
                    cidr: *cidr,
                    owner: *owner,
                })
                .collect(),
        );

        // Allocate server addresses from the Zoom-AS networks, in order.
        let zoom_nets: Vec<Cidr> = nets
            .iter()
            .filter(|(_, o)| *o == Owner::ZoomAs)
            .map(|(c, _)| *c)
            .collect();
        let mut alloc = AddressAllocator::new(zoom_nets);

        let mut servers = Vec::new();
        for site in SITES {
            for id in 0..site.mmrs {
                let ip = alloc.next();
                servers.push(ZoomServer {
                    ip,
                    name: format!("zoom{}{}mmr.{}.zoom.us", site.code, id + 1, site.code),
                    server_type: ServerType::Mmr,
                    site,
                });
            }
            for id in 0..site.zcs {
                let ip = alloc.next();
                servers.push(ZoomServer {
                    ip,
                    name: format!("zoom{}{}zc.{}.zoom.us", site.code, id + 1, site.code),
                    server_type: ServerType::Zc,
                    site,
                });
            }
        }

        let by_ip = servers.iter().enumerate().map(|(i, s)| (s.ip, i)).collect();
        let mmr_indices = servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.server_type == ServerType::Mmr)
            .map(|(i, _)| i)
            .collect();
        let zc_indices = servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.server_type == ServerType::Zc)
            .map(|(i, _)| i)
            .collect();

        Infrastructure {
            ip_list,
            servers,
            by_ip,
            mmr_indices,
            zc_indices,
        }
    }

    /// Reverse-DNS: the name for a server address.
    pub fn reverse_dns(&self, ip: Ipv4Addr) -> Option<&str> {
        self.by_ip.get(&ip).map(|&i| self.servers[i].name.as_str())
    }

    /// Look a server up by IP.
    pub fn server(&self, ip: Ipv4Addr) -> Option<&ZoomServer> {
        self.by_ip.get(&ip).map(|&i| &self.servers[i])
    }

    /// Pick a random MMR, preferring US sites the way a US campus would.
    pub fn pick_mmr<R: Rng>(&self, rng: &mut R) -> &ZoomServer {
        // 85 % of the time pick from the first 3,710 MMRs (US sites).
        let us = 3_710.min(self.mmr_indices.len());
        let idx = if rng.gen_bool(0.85) && us > 0 {
            self.mmr_indices[rng.gen_range(0..us)]
        } else {
            self.mmr_indices[rng.gen_range(0..self.mmr_indices.len())]
        };
        &self.servers[idx]
    }

    /// Pick a random zone controller.
    pub fn pick_zc<R: Rng>(&self, rng: &mut R) -> &ZoomServer {
        &self.servers[self.zc_indices[rng.gen_range(0..self.zc_indices.len())]]
    }

    /// The Table 7 rollup: (geo location, MMR count, ZC count), aggregated
    /// from reverse DNS + geo the way the paper built it.
    pub fn table7(&self) -> Vec<(String, u32, u32)> {
        let mut counts: HashMap<&str, (u32, u32)> = HashMap::new();
        for s in &self.servers {
            let entry = counts.entry(s.site.location).or_default();
            match s.server_type {
                ServerType::Mmr => entry.0 += 1,
                ServerType::Zc => entry.1 += 1,
            }
        }
        let mut rows: Vec<(String, u32, u32)> = counts
            .into_iter()
            .map(|(loc, (m, z))| (loc.to_string(), m, z))
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }
}

/// Parse a server name back into `(site_code, id, type)` — the inverse of
/// the naming scheme, used when classifying reverse-DNS results.
pub fn parse_server_name(name: &str) -> Option<(&str, u32, ServerType)> {
    let host = name.strip_suffix(".zoom.us")?;
    let (front, _site) = host.split_once('.')?;
    let rest = front.strip_prefix("zoom")?;
    let (body, server_type) = if let Some(b) = rest.strip_suffix("mmr") {
        (b, ServerType::Mmr)
    } else if let Some(b) = rest.strip_suffix("zc") {
        (b, ServerType::Zc)
    } else {
        return None;
    };
    let split = body.find(|c: char| c.is_ascii_digit())?;
    let (code, digits) = body.split_at(split);
    let id: u32 = digits.parse().ok()?;
    Some((code, id, server_type))
}

/// Sequential allocator over a list of prefixes.
struct AddressAllocator {
    nets: Vec<Cidr>,
    net_idx: usize,
    offset: u64,
}

impl AddressAllocator {
    fn new(nets: Vec<Cidr>) -> Self {
        AddressAllocator {
            nets,
            net_idx: 0,
            offset: 1, // skip the network address
        }
    }

    fn next(&mut self) -> Ipv4Addr {
        let net = self.nets[self.net_idx];
        let ip = net.nth(self.offset);
        self.offset += 1;
        if self.offset >= net.size() - 1 {
            self.net_idx = (self.net_idx + 1) % self.nets.len();
            self.offset = 1;
        }
        ip
    }
}

/// A simple diurnal load profile: relative meeting-arrival intensity for a
/// time of day, normalized to peak 1.0. Mirrors Fig. 14: busy 9:00–17:00
/// with a lunch dip, spikes handled separately by the campus generator.
pub fn diurnal_intensity(time_of_day: Nanos) -> f64 {
    let hour = time_of_day as f64 / 3.6e12;
    let h = hour % 24.0;
    if h < 8.0 {
        0.05
    } else if h < 9.0 {
        0.3
    } else if h < 12.0 {
        1.0
    } else if h < 13.0 {
        0.6 // lunch dip
    } else if h < 17.0 {
        0.95
    } else if h < 20.0 {
        0.35
    } else {
        0.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_appendix_b() {
        let infra = Infrastructure::generate();
        assert_eq!(infra.ip_list.len(), TOTAL_NETWORKS);
        assert_eq!(infra.ip_list.total_addresses(), TOTAL_ADDRESSES);
        let mmrs = infra
            .servers
            .iter()
            .filter(|s| s.server_type == ServerType::Mmr)
            .count();
        let zcs = infra
            .servers
            .iter()
            .filter(|s| s.server_type == ServerType::Zc)
            .count();
        assert_eq!(mmrs, 5_452);
        assert_eq!(zcs, 256);
    }

    #[test]
    fn owner_fractions_match() {
        let infra = Infrastructure::generate();
        let breakdown = infra.ip_list.owner_breakdown();
        let total = TOTAL_ADDRESSES as f64;
        for (owner, addrs) in breakdown {
            let frac = addrs as f64 / total;
            let expected = match owner {
                Owner::ZoomAs => 0.367,
                Owner::Aws => 0.396,
                Owner::OracleCloud => 0.232,
                Owner::Other => 0.005,
            };
            assert!(
                (frac - expected).abs() < 0.005,
                "{owner:?}: {frac} vs {expected}"
            );
        }
    }

    #[test]
    fn all_server_ips_are_in_the_list_and_unique() {
        let infra = Infrastructure::generate();
        let mut seen = std::collections::HashSet::new();
        for s in &infra.servers {
            assert!(infra.ip_list.contains(s.ip), "{} not in list", s.ip);
            assert!(seen.insert(s.ip), "duplicate {}", s.ip);
        }
    }

    #[test]
    fn names_roundtrip_through_parser() {
        let infra = Infrastructure::generate();
        let s = &infra.servers[0];
        let (code, id, ty) = parse_server_name(&s.name).unwrap();
        assert_eq!(code, s.site.code);
        assert_eq!(id, 1);
        assert_eq!(ty, ServerType::Mmr);
        assert!(parse_server_name("www.zoom.us").is_none());
        assert!(parse_server_name("zoomny5mmr.ny.example.com").is_none());
    }

    #[test]
    fn table7_shape() {
        let infra = Infrastructure::generate();
        let rows = infra.table7();
        assert_eq!(rows.len(), SITES.len());
        // Sorted by MMR count descending; California first.
        assert!(rows[0].0.contains("California"));
        assert_eq!(rows[0].1, 1410);
        let mmr_total: u32 = rows.iter().map(|r| r.1).sum();
        let zc_total: u32 = rows.iter().map(|r| r.2).sum();
        assert_eq!(mmr_total, 5_452);
        assert_eq!(zc_total, 256);
    }

    #[test]
    fn frankfurt_quirk_preserved() {
        let frankfurt = SITES.iter().find(|s| s.geo == "Germany").unwrap();
        let denver = SITES
            .iter()
            .find(|s| s.location.contains("Denver"))
            .unwrap();
        assert_eq!(frankfurt.code, denver.code);
    }

    #[test]
    fn reverse_dns_hits_and_misses() {
        let infra = Infrastructure::generate();
        let s = &infra.servers[10];
        assert_eq!(infra.reverse_dns(s.ip), Some(s.name.as_str()));
        assert_eq!(infra.reverse_dns(Ipv4Addr::new(8, 8, 8, 8)), None);
    }

    #[test]
    fn picks_are_deterministic_per_seed() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let infra = Infrastructure::generate();
        let a = infra.pick_mmr(&mut StdRng::seed_from_u64(5)).ip;
        let b = infra.pick_mmr(&mut StdRng::seed_from_u64(5)).ip;
        assert_eq!(a, b);
        let zc = infra.pick_zc(&mut StdRng::seed_from_u64(5));
        assert_eq!(zc.server_type, ServerType::Zc);
    }

    #[test]
    fn diurnal_profile_peaks_midmorning() {
        let h = |x: u64| diurnal_intensity(x * 3_600 * crate::time::SEC);
        assert!(h(10) > h(12)); // lunch dip
        assert!(h(10) > h(21)); // evening
        assert!(h(3) < 0.1); // night
    }
}
