//! # zoom-sim — deterministic Zoom traffic simulator
//!
//! Synthesizes the packet streams a campus border monitor would record
//! during Zoom meetings, byte-exact in the wire format the paper
//! reverse-engineered, so that the `zoom-analysis` crate can be exercised
//! and validated without access to Zoom clients or a production network
//! (the substitution documented in `DESIGN.md`).
//!
//! Modules:
//! * [`time`] — nanosecond clock and the discrete-event queue
//! * [`path`] — network legs with delay/jitter/loss and congestion bursts
//! * [`codec`] — video/audio/screen-share source models
//! * [`rate`] — jitter-driven sender rate adaptation
//! * [`qos`] — ground-truth QoS feed (the "Zoom SDK" stand-in)
//! * [`meeting`] — one meeting, end to end, as seen at the border tap
//! * [`campus`] — a whole campus: many meetings plus background traffic
//! * [`infra`] — Zoom server infrastructure (Appendix B), synthetic
//! * [`scenario`] — canned experiment scenarios used by the bench harness
//!
//! Everything is seeded; no wall clocks, no global RNG.

pub mod campus;
pub mod codec;
pub mod infra;
pub mod meeting;
pub mod path;
pub mod qos;
pub mod rate;
pub mod scenario;
pub mod time;
pub mod webrtc;

/// Fixed RTP payload size of silent-audio packets (paper §4.2.3);
/// re-exported from `zoom-wire` for the codec model.
pub use zoom_wire::zoom::SILENT_AUDIO_PAYLOAD_LEN;
