//! Network path models: delay, jitter, loss, and congestion events.
//!
//! A meeting participant's traffic traverses two legs in SFU mode —
//! client ⇄ border tap (campus) and tap ⇄ SFU (WAN) — or a single direct
//! leg in P2P mode. Each leg is an [`Leg`] with a base one-way delay, an
//! autocorrelated jitter process, a loss probability, and a queueing term
//! driven by [`CongestionEvent`]s (the "cross-traffic" bursts of the
//! paper's validation experiments, §5).

use crate::time::{Nanos, MS, SEC};
use rand::Rng;

/// A time window during which a leg is congested.
///
/// During the window, queueing delay ramps up toward `added_delay` and loss
/// rises to `added_loss` — a coarse but well-shaped stand-in for a
/// bandwidth-limited queue being filled by a competing download.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionEvent {
    pub start: Nanos,
    pub end: Nanos,
    /// Peak extra one-way delay at the height of the event.
    pub added_delay: Nanos,
    /// Extra loss probability at the height of the event.
    pub added_loss: f64,
}

impl CongestionEvent {
    /// Intensity in [0, 1]: ramps up over the first quarter of the window
    /// and down over the last quarter, mimicking queue fill/drain.
    fn intensity(&self, now: Nanos) -> f64 {
        if now < self.start || now > self.end {
            return 0.0;
        }
        let span = (self.end - self.start).max(1) as f64;
        let pos = (now - self.start) as f64 / span;
        if pos < 0.25 {
            pos / 0.25
        } else if pos > 0.75 {
            (1.0 - pos) / 0.25
        } else {
            1.0
        }
    }
}

/// One direction of one network leg.
#[derive(Debug, Clone)]
pub struct Leg {
    /// Propagation + transmission baseline.
    pub base_delay: Nanos,
    /// Standard deviation of the jitter process.
    pub jitter_std: Nanos,
    /// Steady-state loss probability.
    pub loss: f64,
    /// Scheduled congestion windows.
    pub congestion: Vec<CongestionEvent>,
    /// Autocorrelated jitter state (an AR(1) process), so consecutive
    /// packets see similar queueing — real jitter is not white noise.
    jitter_state: f64,
}

impl Leg {
    /// A leg with the given base delay and jitter, no loss.
    pub fn new(base_delay: Nanos, jitter_std: Nanos) -> Leg {
        Leg {
            base_delay,
            jitter_std,
            loss: 0.0,
            congestion: Vec::new(),
            jitter_state: 0.0,
        }
    }

    /// Set steady-state loss.
    pub fn with_loss(mut self, loss: f64) -> Leg {
        self.loss = loss;
        self
    }

    /// Add a congestion window.
    pub fn with_congestion(mut self, ev: CongestionEvent) -> Leg {
        self.congestion.push(ev);
        self
    }

    /// Current congestion intensity (max over scheduled events).
    pub fn congestion_intensity(&self, now: Nanos) -> f64 {
        self.congestion
            .iter()
            .map(|c| c.intensity(now))
            .fold(0.0, f64::max)
    }

    /// Sample the one-way delay for a packet sent `now`, or `None` when
    /// the packet is lost.
    pub fn traverse<R: Rng>(&mut self, now: Nanos, rng: &mut R) -> Option<Nanos> {
        let intensity = self.congestion_intensity(now);
        let extra_loss: f64 = self
            .congestion
            .iter()
            .map(|c| c.added_loss * c.intensity(now))
            .fold(0.0, f64::max);
        if rng.gen_bool((self.loss + extra_loss).clamp(0.0, 0.9)) {
            return None;
        }
        // AR(1) jitter: x' = 0.75 x + e, e ~ approx normal via sum of
        // uniforms; the 0.75 decay keeps per-packet correlation while
        // letting most of the configured std show up between frames.
        let e: f64 = (0..4).map(|_| rng.gen_range(-1.0..1.0)).sum::<f64>() / 2.0;
        self.jitter_state = 0.75 * self.jitter_state + e * self.jitter_std as f64 * 0.66;
        // Congestion delay: a deterministic queue-level component plus a
        // substantial per-packet random component — a congested queue's
        // occupancy varies packet to packet, which is what makes jitter
        // (not just delay) rise under cross-traffic (the signal Zoom's
        // rate adaptation keys on).
        let congestion_delay: f64 = self
            .congestion
            .iter()
            .map(|c| {
                let level = c.added_delay as f64 * c.intensity(now);
                level * 0.6 + rng.gen_range(0.0..1.0) * level * 0.8
            })
            .fold(0.0, f64::max);
        let delay = self.base_delay as f64
            + self.jitter_state.max(-(self.base_delay as f64) * 0.5)
            + self.jitter_state.abs() * 0.2
            + congestion_delay
            + intensity * rng.gen_range(0.0..5.0) * MS as f64;
        Some(delay.max(0.1 * MS as f64) as Nanos)
    }
}

/// The two-leg path of an SFU participant as seen from the border tap.
#[derive(Debug, Clone)]
pub struct SfuPath {
    /// Client ⇄ tap (campus-internal; absent for off-campus clients whose
    /// packets never cross the tap on this side).
    pub campus_up: Leg,
    pub campus_down: Leg,
    /// Tap ⇄ SFU (WAN). For off-campus clients this models the whole
    /// client ⇄ SFU path instead.
    pub wan_up: Leg,
    pub wan_down: Leg,
    /// SFU forwarding latency.
    pub sfu_processing: Nanos,
}

impl SfuPath {
    /// A typical on-campus participant: ~1.5 ms to the tap, `wan_ms` to
    /// the SFU, light (2 ms) jitter, the given steady-state WAN loss.
    pub fn typical(wan_ms: u64, wan_loss: f64) -> SfuPath {
        Self::with_jitter(wan_ms, wan_loss, 2_000)
    }

    /// Like [`SfuPath::typical`] with an explicit WAN jitter standard
    /// deviation in microseconds.
    pub fn with_jitter(wan_ms: u64, wan_loss: f64, wan_jitter_us: u64) -> SfuPath {
        SfuPath {
            campus_up: Leg::new(1_500_000, 300_000),
            campus_down: Leg::new(1_500_000, 300_000),
            wan_up: Leg::new(wan_ms * MS, wan_jitter_us * 1_000).with_loss(wan_loss),
            wan_down: Leg::new(wan_ms * MS, wan_jitter_us * 1_000).with_loss(wan_loss),
            sfu_processing: 700_000,
        }
    }

    /// Path for a participant whose dominant jitter source is the client
    /// *access link* (wifi/cellular): for on-campus clients the access
    /// jitter sits on the campus legs (client ⇄ tap) and the WAN is a
    /// clean backbone; for off-campus clients the WAN legs are the access
    /// path. This is what makes access-link jitter visible at the border
    /// monitor — it rides the client's own side of the tap.
    pub fn for_participant(
        wan_ms: u64,
        wan_loss: f64,
        access_jitter_us: u64,
        on_campus: bool,
    ) -> SfuPath {
        let access = access_jitter_us * 1_000;
        if on_campus {
            SfuPath {
                campus_up: Leg::new(1_500_000, access.max(300_000)),
                campus_down: Leg::new(1_500_000, access.max(300_000)),
                wan_up: Leg::new(wan_ms * MS, 1_200_000).with_loss(wan_loss),
                wan_down: Leg::new(wan_ms * MS, 1_200_000).with_loss(wan_loss),
                sfu_processing: 700_000,
            }
        } else {
            SfuPath {
                campus_up: Leg::new(1_500_000, 300_000),
                campus_down: Leg::new(1_500_000, 300_000),
                wan_up: Leg::new(wan_ms * MS, access.max(1_200_000)).with_loss(wan_loss),
                wan_down: Leg::new(wan_ms * MS, access.max(1_200_000)).with_loss(wan_loss),
                sfu_processing: 700_000,
            }
        }
    }

    /// The RTT between the tap and the SFU under current conditions,
    /// excluding jitter — what "Method 1" latency estimation measures in
    /// expectation (§5.3).
    pub fn nominal_tap_sfu_rtt(&self) -> Nanos {
        self.wan_up.base_delay + self.wan_down.base_delay + self.sfu_processing
    }

    /// The client ⇄ SFU RTT — what the Zoom client reports as latency.
    pub fn nominal_client_sfu_rtt(&self) -> Nanos {
        self.campus_up.base_delay + self.campus_down.base_delay + self.nominal_tap_sfu_rtt()
    }

    /// Instantaneous one-way client→SFU delay including congestion (used
    /// by the ground-truth QoS logger).
    pub fn current_up_delay(&self, now: Nanos) -> Nanos {
        let extra: f64 = self
            .wan_up
            .congestion
            .iter()
            .map(|c| c.added_delay as f64 * c.intensity(now))
            .fold(0.0, f64::max);
        self.campus_up.base_delay + self.wan_up.base_delay + extra as Nanos
    }

    /// Instantaneous SFU→client delay including congestion.
    pub fn current_down_delay(&self, now: Nanos) -> Nanos {
        let extra: f64 = self
            .wan_down
            .congestion
            .iter()
            .map(|c| c.added_delay as f64 * c.intensity(now))
            .fold(0.0, f64::max);
        self.campus_down.base_delay + self.wan_down.base_delay + extra as Nanos
    }
}

/// Convenience: two 10–20 s congestion bursts like the paper's validation
/// runs ("we introduced cross-traffic twice during each call").
pub fn validation_bursts(first_at: Nanos, second_at: Nanos) -> Vec<CongestionEvent> {
    vec![
        CongestionEvent {
            start: first_at,
            end: first_at + 15 * SEC,
            added_delay: 70 * MS,
            added_loss: 0.02,
        },
        CongestionEvent {
            start: second_at,
            end: second_at + 12 * SEC,
            added_delay: 55 * MS,
            added_loss: 0.015,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn congestion_intensity_ramps() {
        let ev = CongestionEvent {
            start: 100,
            end: 200,
            added_delay: MS,
            added_loss: 0.0,
        };
        assert_eq!(ev.intensity(50), 0.0);
        assert_eq!(ev.intensity(250), 0.0);
        assert!(ev.intensity(110) > 0.0 && ev.intensity(110) < 1.0);
        assert_eq!(ev.intensity(150), 1.0);
        assert!(ev.intensity(195) < 1.0);
    }

    #[test]
    fn traverse_stays_near_base_without_congestion() {
        let mut leg = Leg::new(20 * MS, MS);
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0u64;
        let n = 1000;
        for i in 0..n {
            let d = leg.traverse(i * MS, &mut rng).unwrap();
            sum += d;
            assert!(d > 10 * MS && d < 40 * MS, "delay {d} out of band");
        }
        let avg = sum / n;
        assert!((avg as i64 - (20 * MS) as i64).abs() < (4 * MS) as i64);
    }

    #[test]
    fn congestion_raises_delay() {
        let mut quiet = Leg::new(20 * MS, MS);
        let mut congested = Leg::new(20 * MS, MS).with_congestion(CongestionEvent {
            start: 0,
            end: 100 * SEC,
            added_delay: 40 * MS,
            added_loss: 0.0,
        });
        let mut rng1 = StdRng::seed_from_u64(2);
        let mut rng2 = StdRng::seed_from_u64(2);
        let t = 50 * SEC; // middle of the window, full intensity
        let dq: u64 = (0..100)
            .map(|i| quiet.traverse(t + i, &mut rng1).unwrap())
            .sum();
        let dc: u64 = (0..100)
            .map(|i| congested.traverse(t + i, &mut rng2).unwrap())
            .sum();
        assert!(dc > dq + 100 * 30 * MS);
    }

    #[test]
    fn loss_probability_honored() {
        let mut leg = Leg::new(MS, 0).with_loss(0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let lost = (0..10_000)
            .filter(|&i| leg.traverse(i, &mut rng).is_none())
            .count();
        assert!((4_500..5_500).contains(&lost), "lost {lost}");
    }

    #[test]
    fn jitter_is_autocorrelated() {
        // Consecutive delays should correlate more than distant ones.
        let mut leg = Leg::new(20 * MS, 2 * MS);
        let mut rng = StdRng::seed_from_u64(4);
        let d: Vec<f64> = (0..2000)
            .map(|i| leg.traverse(i * MS, &mut rng).unwrap() as f64)
            .collect();
        let mean = d.iter().sum::<f64>() / d.len() as f64;
        let var = d.iter().map(|x| (x - mean).powi(2)).sum::<f64>();
        let lag1: f64 = d.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
        let rho1 = lag1 / var;
        assert!(rho1 > 0.4, "lag-1 autocorrelation {rho1}");
    }

    #[test]
    fn sfu_path_rtts() {
        let p = SfuPath::typical(25, 0.0);
        assert_eq!(p.nominal_tap_sfu_rtt(), 50 * MS + 700_000);
        assert!(p.nominal_client_sfu_rtt() > p.nominal_tap_sfu_rtt());
    }

    #[test]
    fn validation_bursts_shape() {
        let b = validation_bursts(100 * SEC, 200 * SEC);
        assert_eq!(b.len(), 2);
        assert!(b[0].end - b[0].start >= 10 * SEC);
        assert!(b[0].end - b[0].start <= 20 * SEC);
    }
}
