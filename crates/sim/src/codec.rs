//! Media source models: video, audio, and screen-share encoders.
//!
//! These reproduce the *traffic-visible* behaviour of Zoom's encoders as
//! characterized by the paper and prior work:
//!
//! * video at a 90 kHz RTP clock, normally ~26–28 fps, dropping to ~14 fps
//!   in thumbnail mode or under congestion (§6.2, Fig. 16b's two clusters);
//!   frames span multiple MTU-sized packets, keyframes are several times
//!   larger; ~9 % of video packets are FEC (PT 110, same timestamps,
//!   separate sequence space — §4.2.3);
//! * audio in fixed packetization intervals with a talk/silence process:
//!   speaking packets (PT 112) are larger and silent packets (PT 99) carry
//!   a fixed 40-byte payload; mobile clients use PT 113 throughout;
//! * screen sharing generates frames only when the picture changes —
//!   ~15 % of one-second bins contain no frame at all, half have ≤ 5 fps,
//!   sizes are mostly small with a long tail (Fig. 15b/c).

use crate::time::{Nanos, MS, SEC};
use rand::Rng;

/// RTP clock rate for Zoom video (90 kHz, confirmed by the paper §5.2).
pub const VIDEO_SAMPLING_RATE: u32 = 90_000;

/// RTP clock rate we use for audio (16 kHz wideband; the paper could not
/// confirm Zoom's audio clock and neither do we rely on it).
pub const AUDIO_SAMPLING_RATE: u32 = 16_000;

/// Maximum RTP payload bytes per media packet (≈ Ethernet MTU minus all
/// the encapsulation overhead Zoom adds).
pub const MAX_RTP_PAYLOAD: usize = 1_150;

/// A video or screen-share frame produced by an encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// RTP timestamp of the frame (90 kHz clock).
    pub rtp_timestamp: u32,
    /// Encoded size in bytes.
    pub size: usize,
    /// True for intra (key) frames.
    pub keyframe: bool,
}

/// Number of packets a frame of `size` bytes occupies.
pub fn packets_for(size: usize) -> usize {
    size.div_ceil(MAX_RTP_PAYLOAD).max(1)
}

/// Video encoder operating mode — the two clusters of Fig. 16b.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VideoMode {
    /// ~26–28 fps, full bit rate.
    Full,
    /// ~13–15 fps, roughly half the bit rate (thumbnail view, or the rate
    /// controller's congestion response).
    Reduced,
}

/// The video encoder model.
#[derive(Debug, Clone)]
pub struct VideoEncoder {
    mode: VideoMode,
    /// Target bit rate in full mode, bits/second.
    full_bitrate: f64,
    /// Nominal full-mode frame rate (Zoom aims at ~28).
    full_fps: f64,
    /// Keyframe cadence in frames.
    keyframe_interval: u64,
    /// Motion factor in [0.3, 2.0]: high-motion content produces larger,
    /// more variable frames.
    motion: f64,
    frames_emitted: u64,
    rtp_timestamp: u32,
}

impl VideoEncoder {
    /// A new encoder with its RTP clock starting at `ts_init`.
    pub fn new(full_bitrate: f64, full_fps: f64, motion: f64, ts_init: u32) -> VideoEncoder {
        VideoEncoder {
            mode: VideoMode::Full,
            full_bitrate,
            full_fps,
            keyframe_interval: 300,
            motion,
            frames_emitted: 0,
            rtp_timestamp: ts_init,
        }
    }

    /// Switch mode (rate adaptation / display-layout changes).
    pub fn set_mode(&mut self, mode: VideoMode) {
        self.mode = mode;
    }

    /// Current mode.
    pub fn mode(&self) -> VideoMode {
        self.mode
    }

    /// Current nominal frame rate.
    pub fn fps(&self) -> f64 {
        match self.mode {
            VideoMode::Full => self.full_fps,
            VideoMode::Reduced => self.full_fps / 2.0,
        }
    }

    /// Current target bit rate.
    pub fn bitrate(&self) -> f64 {
        match self.mode {
            VideoMode::Full => self.full_bitrate,
            VideoMode::Reduced => self.full_bitrate * 0.45,
        }
    }

    /// Time between frames at the current rate, with ±4 % encoder timing
    /// wobble (Zoom's packetization interval is visibly variable, §5.4).
    pub fn frame_interval<R: Rng>(&self, rng: &mut R) -> Nanos {
        let nominal = SEC as f64 / self.fps();
        (nominal * rng.gen_range(0.96..1.04)) as Nanos
    }

    /// Produce the next frame, advancing the RTP clock by the true elapsed
    /// media time `elapsed` (the interval chosen by the caller).
    pub fn next_frame<R: Rng>(&mut self, elapsed: Nanos, rng: &mut R) -> Frame {
        let ticks = (elapsed as f64 * VIDEO_SAMPLING_RATE as f64 / SEC as f64).round() as u32;
        self.rtp_timestamp = self.rtp_timestamp.wrapping_add(ticks);
        let keyframe = self.frames_emitted.is_multiple_of(self.keyframe_interval);
        self.frames_emitted += 1;
        let mean = self.bitrate() / 8.0 / self.fps();
        let spread = rng.gen_range(0.55..1.6);
        let motion_term = 1.0 + (self.motion - 1.0) * rng.gen_range(0.0..1.0);
        let mut size = (mean * spread * motion_term) as usize;
        if keyframe {
            size = (mean * rng.gen_range(4.0..7.0)) as usize;
        }
        Frame {
            rtp_timestamp: self.rtp_timestamp,
            size: size.clamp(220, 60_000),
            keyframe,
        }
    }

    /// Probability that a just-sent video packet is followed by an FEC
    /// packet — calibrated to Table 3 (PT 110 ≈ 9 % of video packets).
    pub fn fec_probability(&self) -> f64 {
        0.095
    }
}

/// What an audio source produced for one packetization interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AudioPacket {
    /// RTP payload type: 112 speaking, 99 silent, 113 unknown/mobile.
    pub payload_type: u8,
    /// RTP payload size in bytes.
    pub payload_len: usize,
    /// RTP timestamp (16 kHz clock).
    pub rtp_timestamp: u32,
    /// Whether an FEC copy (PT 110) accompanies this packet.
    pub with_fec: bool,
}

/// Talk/silence state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VoiceState {
    Talking,
    Silent,
}

/// The audio source model: a two-state talk/silence process over fixed
/// 40 ms packetization intervals. During silence only every fourth
/// interval produces a packet — Zoom suppresses most comfort noise,
/// which is why silent-mode packets are rare in Table 3 (2.6 % vs
/// 22.0 % speaking).
#[derive(Debug, Clone)]
pub struct AudioSource {
    /// Mobile clients emit PT 113 exclusively (§4.2.3).
    pub mobile: bool,
    state: VoiceState,
    /// Remaining intervals in the current state.
    remaining: u32,
    rtp_timestamp: u32,
    /// Fraction of time spent talking (drives state durations).
    talk_fraction: f64,
    /// Intervals since the last emitted silent packet.
    silent_gap: u32,
}

/// Audio packetization interval (40 ms keeps the packet-share of audio in
/// line with Table 2/3).
pub const AUDIO_PTIME: Nanos = 40 * MS;

/// RTP timestamp ticks per audio packet.
pub const AUDIO_TICKS: u32 = (AUDIO_SAMPLING_RATE as u64 * AUDIO_PTIME / SEC) as u32;

impl AudioSource {
    /// New source; `talk_fraction` sets how often the participant speaks.
    pub fn new(mobile: bool, talk_fraction: f64, ts_init: u32) -> AudioSource {
        AudioSource {
            mobile,
            state: VoiceState::Silent,
            remaining: 0,
            rtp_timestamp: ts_init,
            talk_fraction: talk_fraction.clamp(0.02, 0.98),
            silent_gap: 0,
        }
    }

    /// Produce the packet for the next 40 ms interval; `None` when the
    /// interval is suppressed (silence, most of the time).
    pub fn next_packet<R: Rng>(&mut self, rng: &mut R) -> Option<AudioPacket> {
        if self.remaining == 0 {
            // Mean talk spurt ~4 s, silence scaled to hit talk_fraction;
            // geometric durations in units of intervals.
            let talk_intervals = 4.0 * SEC as f64 / AUDIO_PTIME as f64;
            let silent_intervals = talk_intervals * (1.0 - self.talk_fraction) / self.talk_fraction;
            let (next_state, mean) = match self.state {
                VoiceState::Talking => (VoiceState::Silent, silent_intervals),
                VoiceState::Silent => (VoiceState::Talking, talk_intervals),
            };
            self.state = next_state;
            self.remaining = (mean * rng.gen_range(0.4..1.8)).max(1.0) as u32;
        }
        self.remaining -= 1;
        self.rtp_timestamp = self.rtp_timestamp.wrapping_add(AUDIO_TICKS);
        let (payload_type, payload_len, with_fec) = if self.mobile {
            (113, rng.gen_range(45..140), false)
        } else {
            match self.state {
                VoiceState::Talking => {
                    self.silent_gap = 0;
                    (112, rng.gen_range(70..160), rng.gen_bool(0.05))
                }
                VoiceState::Silent => {
                    self.silent_gap += 1;
                    if !self.silent_gap.is_multiple_of(4) {
                        return None; // suppressed comfort-noise interval
                    }
                    (99, crate::SILENT_AUDIO_PAYLOAD_LEN, false)
                }
            }
        };
        Some(AudioPacket {
            payload_type,
            payload_len,
            rtp_timestamp: self.rtp_timestamp,
            with_fec,
        })
    }
}

/// The screen-share source: frames appear only on content change, plus
/// occasional "motion" episodes (video playback inside the share) that
/// run at near-video frame rates — Fig. 15b's even spread of screen-share
/// frame rates above 5 fps.
#[derive(Debug, Clone)]
pub struct ScreenShareSource {
    rtp_timestamp: u32,
    /// Frames remaining in the current motion episode.
    motion_frames: u32,
}

impl ScreenShareSource {
    /// New source with the given RTP clock start.
    pub fn new(ts_init: u32) -> ScreenShareSource {
        ScreenShareSource {
            rtp_timestamp: ts_init,
            motion_frames: 0,
        }
    }

    /// Sample the gap until the next frame and the frame itself. The gap
    /// distribution produces empty 1-second bins (idle slides), a large
    /// mass at ≤ 5 fps, and motion episodes reaching video-like rates;
    /// sizes are mostly small with a long slide-change tail.
    pub fn next_frame<R: Rng>(&mut self, rng: &mut R) -> (Nanos, Frame) {
        let (gap, size) = if self.motion_frames > 0 {
            self.motion_frames -= 1;
            (rng.gen_range(33 * MS..80 * MS), rng.gen_range(350..2_200))
        } else {
            let r: f64 = rng.gen();
            if r < 0.50 {
                // Small incremental updates (cursor, typing).
                (rng.gen_range(120 * MS..650 * MS), rng.gen_range(90..500))
            } else if r < 0.75 {
                // Moderate region updates.
                (
                    rng.gen_range(300 * MS..(3 * SEC / 2)),
                    rng.gen_range(400..3_000),
                )
            } else if r < 0.90 {
                // Slide change after a long idle gap: large frame.
                (
                    rng.gen_range(2 * SEC..9 * SEC),
                    rng.gen_range(3_000..70_000),
                )
            } else if r < 0.97 {
                // Another idle stretch.
                (
                    rng.gen_range(800 * MS..5 * SEC / 2),
                    rng.gen_range(150..900),
                )
            } else {
                // Enter a motion episode (embedded video / scrolling).
                self.motion_frames = rng.gen_range(60..300);
                (rng.gen_range(100 * MS..SEC), rng.gen_range(1_000..6_000))
            }
        };
        let ticks = (gap as f64 * VIDEO_SAMPLING_RATE as f64 / SEC as f64) as u32;
        self.rtp_timestamp = self.rtp_timestamp.wrapping_add(ticks);
        (
            gap,
            Frame {
                rtp_timestamp: self.rtp_timestamp,
                size,
                keyframe: size > 3_000,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn packets_for_sizes() {
        assert_eq!(packets_for(1), 1);
        assert_eq!(packets_for(MAX_RTP_PAYLOAD), 1);
        assert_eq!(packets_for(MAX_RTP_PAYLOAD + 1), 2);
        assert_eq!(packets_for(10 * MAX_RTP_PAYLOAD), 10);
    }

    #[test]
    fn video_mode_halves_fps() {
        let mut enc = VideoEncoder::new(600_000.0, 28.0, 1.0, 0);
        assert_eq!(enc.fps(), 28.0);
        enc.set_mode(VideoMode::Reduced);
        assert_eq!(enc.fps(), 14.0);
        assert!(enc.bitrate() < 600_000.0 / 2.0 + 1.0);
    }

    #[test]
    fn video_frames_average_near_target() {
        let mut enc = VideoEncoder::new(600_000.0, 28.0, 1.0, 0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut bytes = 0usize;
        let n = 2_000;
        for _ in 0..n {
            let interval = enc.frame_interval(&mut rng);
            bytes += enc.next_frame(interval, &mut rng).size;
        }
        let bps = bytes as f64 * 8.0 * 28.0 / n as f64;
        // Keyframes push the average above target; stay within 2x.
        assert!(bps > 400_000.0 && bps < 1_200_000.0, "got {bps}");
    }

    #[test]
    fn video_rtp_clock_advances_at_90khz() {
        let mut enc = VideoEncoder::new(600_000.0, 30.0, 1.0, 1000);
        let mut rng = StdRng::seed_from_u64(8);
        let f1 = enc.next_frame(SEC / 30, &mut rng);
        let f2 = enc.next_frame(SEC / 30, &mut rng);
        let delta = f2.rtp_timestamp.wrapping_sub(f1.rtp_timestamp);
        assert_eq!(delta, 3_000); // 90_000 / 30
    }

    #[test]
    fn keyframes_are_periodic_and_big() {
        let mut enc = VideoEncoder::new(600_000.0, 28.0, 1.0, 0);
        let mut rng = StdRng::seed_from_u64(9);
        let frames: Vec<Frame> = (0..301)
            .map(|_| enc.next_frame(SEC / 28, &mut rng))
            .collect();
        assert!(frames[0].keyframe);
        assert!(frames[300].keyframe);
        assert!(frames[1..300].iter().all(|f| !f.keyframe));
        let key_avg = frames[0].size;
        let delta_avg: usize = frames[1..50].iter().map(|f| f.size).sum::<usize>() / 49;
        assert!(key_avg > 3 * delta_avg);
    }

    #[test]
    fn audio_alternates_talking_and_silence() {
        let mut src = AudioSource::new(false, 0.4, 0);
        let mut rng = StdRng::seed_from_u64(10);
        let pkts: Vec<AudioPacket> = (0..10_000)
            .filter_map(|_| src.next_packet(&mut rng))
            .collect();
        let talking = pkts.iter().filter(|p| p.payload_type == 112).count();
        let silent = pkts.iter().filter(|p| p.payload_type == 99).count();
        assert!(talking > 1_000 && silent > 300);
        // Suppression makes speaking packets dominate the emitted set
        // even at a 40 % talk fraction (Table 3's imbalance).
        assert!(talking > 2 * silent, "talking {talking} vs silent {silent}");
        // Every silent packet has the fixed 40-byte payload.
        assert!(pkts
            .iter()
            .filter(|p| p.payload_type == 99)
            .all(|p| p.payload_len == crate::SILENT_AUDIO_PAYLOAD_LEN));
    }

    #[test]
    fn mobile_audio_is_pt113_only() {
        let mut src = AudioSource::new(true, 0.5, 0);
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..1000).all(|_| src.next_packet(&mut rng).unwrap().payload_type == 113));
    }

    #[test]
    fn audio_rtp_clock_advances_uniformly() {
        // Use a mobile source (never suppressed) to check the clock.
        let mut src = AudioSource::new(true, 0.5, 100);
        let mut rng = StdRng::seed_from_u64(12);
        let a = src.next_packet(&mut rng).unwrap();
        let b = src.next_packet(&mut rng).unwrap();
        assert_eq!(b.rtp_timestamp.wrapping_sub(a.rtp_timestamp), AUDIO_TICKS);
    }

    #[test]
    fn screen_share_has_idle_gaps_and_long_tail() {
        let mut src = ScreenShareSource::new(0);
        let mut rng = StdRng::seed_from_u64(13);
        let mut total_time = 0u64;
        let mut frames = Vec::new();
        while total_time < 600 * SEC {
            let (gap, f) = src.next_frame(&mut rng);
            total_time += gap;
            frames.push((total_time, f));
        }
        let fps = frames.len() as f64 / 600.0;
        assert!(fps > 0.5 && fps < 18.0, "screen fps {fps}");
        let small = frames.iter().filter(|(_, f)| f.size < 500).count();
        let huge = frames.iter().filter(|(_, f)| f.size > 10_000).count();
        assert!(
            small as f64 / frames.len() as f64 > 0.05,
            "small fraction too low"
        );
        assert!(huge > 0);
        // Empty 1-second bins exist.
        let mut bins = vec![0u32; 600];
        for (t, _) in &frames {
            let idx = (t / SEC) as usize;
            if idx < 600 {
                bins[idx] += 1;
            }
        }
        let empty = bins.iter().filter(|&&c| c == 0).count();
        assert!(empty > 20, "only {empty} empty bins");
        // Motion episodes reach video-like rates.
        let fast = bins.iter().filter(|&&c| c > 10).count();
        assert!(fast > 5, "no motion episodes: {fast}");
    }
}
