//! Ground-truth QoS logging — the simulator-side stand-in for the Zoom SDK
//! feed the paper used for validation (§5, "Validation of Metrics").
//!
//! The paper instrumented a custom macOS SDK client to log latency, jitter,
//! frame rate, etc. once per second, and compared those values against the
//! passive estimates (Fig. 10). Our simulator knows the true values and
//! logs them through the same reporting quirks the paper observed in
//! Zoom's own feed:
//!
//! * samples are emitted at 1 Hz;
//! * the **latency** value refreshes only every 5 seconds (Fig. 10b);
//! * the **jitter** value is implausibly small and smooth — Zoom "always
//!   reported very low jitter which never exceeded 2 ms, even in the
//!   presence of congestion" (Fig. 10c) — modeled as a heavily damped,
//!   clamped EWMA;
//! * the **frame rate** is a slightly smoothed version of truth with a
//!   coarse refresh, which is why rapid dips can be missed (Fig. 10a).

use crate::time::{Nanos, MS, SEC};

/// One 1-Hz QoS sample for one media stream, as "the Zoom client" would
/// report it, alongside the unfiltered truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosSample {
    /// Sample time (second boundary).
    pub at: Nanos,
    /// Frame rate the client reports (smoothed / refresh-limited).
    pub reported_fps: f64,
    /// True delivered frame rate over the last second.
    pub true_fps: f64,
    /// Latency (RTT to SFU) the client reports — refreshes every 5 s.
    pub reported_latency_ms: f64,
    /// True current RTT to the SFU.
    pub true_latency_ms: f64,
    /// Jitter the client reports (tiny, smooth).
    pub reported_jitter_ms: f64,
    /// Bit rate over the last second, bits/s (truthful in the client UI).
    pub bitrate_bps: f64,
    /// Packets lost in the last second (after retransmission).
    pub lost_packets: u32,
}

/// Accumulates per-second truth and emits [`QosSample`]s with Zoom-like
/// reporting behaviour.
#[derive(Debug, Clone)]
pub struct QosLogger {
    samples: Vec<QosSample>,
    // Current-second accumulators.
    second_start: Nanos,
    frames_this_second: u32,
    bytes_this_second: u64,
    lost_this_second: u32,
    // Latest truth pushed by the simulator.
    current_latency_ms: f64,
    current_jitter_ms: f64,
    // Reporting state.
    displayed_latency_ms: f64,
    last_latency_refresh: Nanos,
    smoothed_jitter_ms: f64,
    smoothed_fps: f64,
}

impl Default for QosLogger {
    fn default() -> Self {
        Self::new()
    }
}

impl QosLogger {
    /// Fresh logger starting at t = 0.
    pub fn new() -> QosLogger {
        QosLogger {
            samples: Vec::new(),
            second_start: 0,
            frames_this_second: 0,
            bytes_this_second: 0,
            lost_this_second: 0,
            current_latency_ms: 0.0,
            current_jitter_ms: 0.0,
            displayed_latency_ms: 0.0,
            last_latency_refresh: 0,
            smoothed_jitter_ms: 0.0,
            smoothed_fps: 0.0,
        }
    }

    /// Record a fully delivered frame of `bytes` bytes at `now`.
    pub fn frame_delivered(&mut self, now: Nanos, bytes: usize) {
        self.roll(now);
        self.frames_this_second += 1;
        self.bytes_this_second += bytes as u64;
    }

    /// Record a packet lost beyond recovery.
    pub fn packet_lost(&mut self, now: Nanos) {
        self.roll(now);
        self.lost_this_second += 1;
    }

    /// Push the current true RTT-to-SFU and instantaneous jitter.
    pub fn network_truth(&mut self, now: Nanos, latency: Nanos, jitter: Nanos) {
        self.roll(now);
        self.current_latency_ms = latency as f64 / MS as f64;
        self.current_jitter_ms = jitter as f64 / MS as f64;
    }

    /// Advance to `now`, emitting one sample per elapsed second boundary.
    fn roll(&mut self, now: Nanos) {
        while now >= self.second_start + SEC {
            let at = self.second_start + SEC;
            let true_fps = f64::from(self.frames_this_second);
            // Zoom-style fps display: EWMA with a modest constant.
            self.smoothed_fps = if self.samples.is_empty() {
                true_fps
            } else {
                0.6 * self.smoothed_fps + 0.4 * true_fps
            };
            // Latency refreshes every 5 s only.
            if at.saturating_sub(self.last_latency_refresh) >= 5 * SEC {
                self.displayed_latency_ms = self.current_latency_ms;
                self.last_latency_refresh = at;
            }
            // Jitter: damped hard and clamped — reproducing the paper's
            // observation that Zoom's jitter never exceeded ~2 ms.
            self.smoothed_jitter_ms =
                (0.95 * self.smoothed_jitter_ms + 0.05 * self.current_jitter_ms).min(2.0);
            self.samples.push(QosSample {
                at,
                reported_fps: self.smoothed_fps,
                true_fps,
                reported_latency_ms: self.displayed_latency_ms,
                true_latency_ms: self.current_latency_ms,
                reported_jitter_ms: self.smoothed_jitter_ms,
                bitrate_bps: self.bytes_this_second as f64 * 8.0,
                lost_packets: self.lost_this_second,
            });
            self.second_start = at;
            self.frames_this_second = 0;
            self.bytes_this_second = 0;
            self.lost_this_second = 0;
        }
    }

    /// Finish at `end`, flushing the last partial second, and return all
    /// samples.
    pub fn finish(mut self, end: Nanos) -> Vec<QosSample> {
        self.roll(end + SEC);
        self.samples
    }

    /// Samples collected so far.
    pub fn samples(&self) -> &[QosSample] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_sample_per_second() {
        let mut q = QosLogger::new();
        for s in 0..10u64 {
            for f in 0..28u64 {
                q.frame_delivered(s * SEC + f * SEC / 28, 2_000);
            }
        }
        let samples = q.finish(10 * SEC);
        assert!(samples.len() >= 10);
        assert!((samples[5].true_fps - 28.0).abs() <= 1.0);
        assert!(samples[5].bitrate_bps > 300_000.0);
    }

    #[test]
    fn latency_refreshes_every_five_seconds() {
        let mut q = QosLogger::new();
        for s in 0..20u64 {
            q.network_truth(s * SEC + 1, (20 + s) * MS, MS);
            q.frame_delivered(s * SEC + 2, 100);
        }
        let samples = q.finish(20 * SEC);
        // Reported latency forms steps: at most 5 distinct values in 20 s
        // (plus the initial zero), while the truth changes every second.
        let mut reported: Vec<u64> = samples
            .iter()
            .map(|s| s.reported_latency_ms as u64)
            .collect();
        reported.dedup();
        assert!(reported.len() <= 6, "reported steps: {reported:?}");
        let mut truth: Vec<u64> = samples.iter().map(|s| s.true_latency_ms as u64).collect();
        truth.dedup();
        assert!(truth.len() > 10);
    }

    #[test]
    fn reported_jitter_is_clamped_at_2ms() {
        let mut q = QosLogger::new();
        for s in 0..60u64 {
            q.network_truth(s * SEC, 20 * MS, 30 * MS); // true jitter 30 ms!
            q.frame_delivered(s * SEC + 1, 100);
        }
        let samples = q.finish(60 * SEC);
        assert!(samples.iter().all(|s| s.reported_jitter_ms <= 2.0));
    }

    #[test]
    fn loss_counted_per_second() {
        let mut q = QosLogger::new();
        q.packet_lost(100);
        q.packet_lost(200);
        q.packet_lost(SEC + 100);
        let samples = q.finish(2 * SEC);
        assert_eq!(samples[0].lost_packets, 2);
        assert_eq!(samples[1].lost_packets, 1);
    }

    #[test]
    fn fps_smoothing_lags_truth() {
        let mut q = QosLogger::new();
        // 5 s at 28 fps then a sudden drop to 10 fps.
        for s in 0..5u64 {
            for f in 0..28u64 {
                q.frame_delivered(s * SEC + f * SEC / 28, 1_000);
            }
        }
        for f in 0..10u64 {
            q.frame_delivered(5 * SEC + f * SEC / 10, 1_000);
        }
        let samples = q.finish(6 * SEC);
        let drop_sample = samples.iter().find(|s| s.at == 6 * SEC).unwrap();
        assert_eq!(drop_sample.true_fps, 10.0);
        assert!(drop_sample.reported_fps > drop_sample.true_fps);
    }
}
