//! Multi-source capture fan-in throughput: N replay sources merged by
//! `CaptureMux` through the bounded SPSC rings, measured bare (merge
//! only) and feeding the sequential analyzer, against the single-loop
//! direct push baseline the fan-in must not regress.
//!
//! Run on a single-core CI box the threaded fan-in can come in below
//! the inline loop — the honest numbers live in `BENCH_ingest.json` and
//! `EXPERIMENTS.md`; nothing here asserts a ratio.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::PacketSink;
use zoom_capture::mux::{CaptureMux, MuxConfig, Overflow};
use zoom_capture::source::{PacketSource, ReplaySource};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::{LinkType, Record};

/// Round-robin deal of one trace to `n` per-source record vectors (each
/// stays timestamp-ordered, as the source contract requires).
fn deal(records: &[Record], n: usize) -> Vec<Vec<Record>> {
    let mut parts = vec![Vec::new(); n];
    for (i, r) in records.iter().enumerate() {
        parts[i % n].push(r.clone());
    }
    parts
}

fn sources_from(parts: Vec<Vec<Record>>) -> Vec<Box<dyn PacketSource>> {
    parts
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            Box::new(ReplaySource::new(
                &format!("bench:{i}"),
                LinkType::Ethernet,
                p,
            )) as Box<dyn PacketSource>
        })
        .collect()
}

/// Merge all sources, counting records (no analysis behind the mux).
fn merge_only(sources: Vec<Box<dyn PacketSource>>) -> u64 {
    let mut mux = CaptureMux::start(
        sources,
        MuxConfig {
            ring_capacity: 8,
            overflow: Overflow::Block,
        },
        None,
    );
    let mut n = 0u64;
    let mut sum = 0usize;
    while let Some(r) = mux.next_record().expect("mux record") {
        sum += r.data.len();
        n += 1;
    }
    std::hint::black_box(sum);
    mux.finish().expect("teardown");
    n
}

/// Merge all sources into the sequential analyzer.
fn merge_to_analyzer(sources: Vec<Box<dyn PacketSource>>) -> u64 {
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    let mut mux = CaptureMux::start(
        sources,
        MuxConfig {
            ring_capacity: 8,
            overflow: Overflow::Block,
        },
        None,
    );
    while let Some(r) = mux.next_record().expect("mux record") {
        analyzer.push(r.ts_nanos, r.data, r.link).expect("push");
    }
    mux.finish().expect("teardown");
    std::hint::black_box(analyzer.summary().zoom_packets)
}

fn bench(c: &mut Criterion) {
    let records: Vec<Record> = MeetingSim::new(scenario::multi_party(5, 30 * SEC)).collect();

    let mut g = c.benchmark_group("capture_mux");
    g.sample_size(10);
    g.throughput(Throughput::Elements(records.len() as u64));

    // Baseline: the inline single-loop push the mux competes with.
    g.bench_function("direct_push_baseline", |b| {
        b.iter(|| {
            let mut analyzer = Analyzer::new(AnalyzerConfig::default());
            for r in &records {
                analyzer
                    .push(r.ts_nanos, &r.data, LinkType::Ethernet)
                    .expect("push");
            }
            std::hint::black_box(analyzer.summary().zoom_packets)
        })
    });

    // Replay sources are consumed per run, so each iteration re-deals
    // (clones) the trace; this bench isolates that setup cost so the
    // merge numbers below can be read net of it.
    g.bench_function("deal_clone_overhead_2_sources", |b| {
        b.iter(|| std::hint::black_box(sources_from(deal(&records, 2)).len()))
    });

    for n in [1usize, 2, 4] {
        g.bench_function(&format!("merge_only_{n}_sources"), |b| {
            b.iter(|| merge_only(sources_from(deal(&records, n))))
        });
        g.bench_function(&format!("merge_to_analyzer_{n}_sources"), |b| {
            b.iter(|| merge_to_analyzer(sources_from(deal(&records, n))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
