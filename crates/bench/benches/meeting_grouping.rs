//! Meeting-grouping heuristic throughput over many streams.

use criterion::{criterion_group, criterion_main, Criterion};
use std::net::{IpAddr, Ipv4Addr};
use zoom_analysis::meeting::{CandidateState, MeetingGrouper};
use zoom_analysis::stream::StreamKey;
use zoom_wire::flow::{Endpoint, FiveTuple};
use zoom_wire::ipv4::Protocol;

fn key(client: u32, port: u16, ssrc: u32) -> StreamKey {
    StreamKey {
        flow: FiveTuple {
            src_ip: IpAddr::V4(Ipv4Addr::from(0x0A08_0000 + client)),
            dst_ip: IpAddr::V4(Ipv4Addr::new(170, 114, 0, 1)),
            src_port: port,
            dst_port: 8801,
            protocol: Protocol::Udp,
        },
        ssrc,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("grouping");
    g.sample_size(20);
    g.bench_function("register_10k_streams", |b| {
        b.iter(|| {
            let mut grouper = MeetingGrouper::new();
            for i in 0..10_000u32 {
                let k = key(i % 2_000, (40_000 + i % 20_000) as u16, 16 + i % 64);
                grouper.on_new_stream(
                    k,
                    Endpoint::new(k.flow.src_ip, k.flow.src_port),
                    k.flow.dst_ip,
                    i.wrapping_mul(2_654_435_761),
                    (i % 65_536) as u16,
                    u64::from(i) * 1_000_000,
                    |_| None::<CandidateState>,
                );
            }
            grouper.meeting_count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
