//! End-to-end throughput: simulate → filter → analyze, packets per second,
//! plus sequential-vs-sharded analyzer scaling on the campus scenario.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use zoom_analysis::parallel::ParallelAnalyzer;
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_capture::cidr::prefix_set;
use zoom_capture::pipeline::{CapturePipeline, PipelineConfig};
use zoom_capture::zoom_nets::{Owner, ZoomIpList, ZoomNetwork};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::{LinkType, Reader, RecordBuf, SliceReader, Writer};

fn bench(c: &mut Criterion) {
    // Pre-generate the records: the benchmark measures the consumer side.
    let mut cfg = scenario::multi_party(5, 30 * SEC);
    cfg.participants.truncate(3);
    let records: Vec<_> = MeetingSim::new(cfg).collect();
    let zoom_list = ZoomIpList::from_networks(vec![ZoomNetwork {
        cidr: "170.114.0.0/16".parse().unwrap(),
        owner: Owner::ZoomAs,
    }]);

    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("capture_plus_analysis", |b| {
        b.iter(|| {
            let mut capture = CapturePipeline::new(PipelineConfig {
                campus_nets: prefix_set(&[scenario::CAMPUS_NET]),
                excluded_nets: Default::default(),
                zoom_list: zoom_list.clone(),
                stun_timeout_nanos: 120 * SEC,
                anonymizer: None,
                family: zoom_wire::family::FamilySelect::Only(zoom_wire::family::FamilyId::Zoom),
            });
            let mut analyzer = Analyzer::new(AnalyzerConfig::default());
            for r in &records {
                let (_, out) = capture.process_record(r, LinkType::Ethernet);
                if let Some(out) = out {
                    analyzer.process_packet(out.ts_nanos, &out.data, LinkType::Ethernet);
                }
            }
            analyzer.summary().zoom_packets
        })
    });
    g.finish();

    // Analyzer scaling on the campus scenario (Table 6's workload): the
    // same pre-filtered record stream through the sequential Analyzer and
    // through the sharded pipeline. Results are byte-identical (see
    // tests/parallel_differential.rs); this measures only the speedup.
    let (campus, _infra) = scenario::campus_study(5, 120 * SEC, 1.0 / 2.0, 0.0);
    let records: Vec<_> = campus.into_stream().collect();

    let mut g = c.benchmark_group("sharded_analysis");
    g.sample_size(10);
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let mut analyzer = Analyzer::new(AnalyzerConfig::default());
            for r in &records {
                analyzer.process_packet(r.ts_nanos, &r.data, LinkType::Ethernet);
            }
            analyzer.summary().zoom_packets
        })
    });
    for shards in [2usize, 4, 8] {
        g.bench_function(&format!("shards_{shards}"), |b| {
            b.iter(|| {
                let mut par = ParallelAnalyzer::new(AnalyzerConfig::default(), shards);
                for r in &records {
                    par.process_packet(r.ts_nanos, &r.data, LinkType::Ethernet);
                }
                par.summary().zoom_packets
            })
        });
    }
    g.finish();

    // Ingest fast path: the same pcap image through the owning reader,
    // the buffer-reusing `read_into` loop, and the borrowed-slice
    // `SliceReader`, each feeding the sequential analyzer. Results are
    // byte-identical (tests/*_differential.rs); this measures only the
    // per-record allocation and copy savings.
    let mut w = Writer::new(Vec::new(), LinkType::Ethernet).expect("header");
    for r in &records {
        w.write_record(r).expect("record");
    }
    let img = w.finish().expect("flush");

    let mut g = c.benchmark_group("ingest_fast_path");
    g.sample_size(10);
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("owning_reader", |b| {
        b.iter(|| {
            let mut reader = Reader::new(&img[..]).expect("header");
            let mut analyzer = Analyzer::new(AnalyzerConfig::default());
            while let Some(r) = reader.next_record().expect("record") {
                analyzer.process_packet(r.ts_nanos, &r.data, LinkType::Ethernet);
            }
            analyzer.summary().zoom_packets
        })
    });
    g.bench_function("read_into_reuse", |b| {
        b.iter(|| {
            let mut reader = Reader::new(&img[..]).expect("header");
            let mut analyzer = Analyzer::new(AnalyzerConfig::default());
            let mut buf = RecordBuf::new();
            while reader.read_into(&mut buf).expect("record") {
                analyzer.process_packet(buf.ts_nanos(), buf.data(), LinkType::Ethernet);
            }
            analyzer.summary().zoom_packets
        })
    });
    g.bench_function("slice_reader", |b| {
        b.iter(|| {
            let mut reader = SliceReader::new(&img).expect("header");
            let mut analyzer = Analyzer::new(AnalyzerConfig::default());
            while let Some(r) = reader.next_record().expect("record") {
                analyzer.process_packet(r.ts_nanos, r.data, LinkType::Ethernet);
            }
            analyzer.summary().zoom_packets
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
