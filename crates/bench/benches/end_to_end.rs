//! End-to-end throughput: simulate → filter → analyze, packets per second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_capture::cidr::prefix_set;
use zoom_capture::pipeline::{CapturePipeline, PipelineConfig};
use zoom_capture::zoom_nets::{Owner, ZoomIpList, ZoomNetwork};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::LinkType;

fn bench(c: &mut Criterion) {
    // Pre-generate the records: the benchmark measures the consumer side.
    let mut cfg = scenario::multi_party(5, 30 * SEC);
    cfg.participants.truncate(3);
    let records: Vec<_> = MeetingSim::new(cfg).collect();
    let zoom_list = ZoomIpList::from_networks(vec![ZoomNetwork {
        cidr: "170.114.0.0/16".parse().unwrap(),
        owner: Owner::ZoomAs,
    }]);

    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("capture_plus_analysis", |b| {
        b.iter(|| {
            let mut capture = CapturePipeline::new(PipelineConfig {
                campus_nets: prefix_set(&[scenario::CAMPUS_NET]),
                excluded_nets: Default::default(),
                zoom_list: zoom_list.clone(),
                stun_timeout_nanos: 120 * SEC,
                anonymizer: None,
            });
            let mut analyzer = Analyzer::new(AnalyzerConfig::default());
            for r in &records {
                let (_, out) = capture.process_record(r, LinkType::Ethernet);
                if let Some(out) = out {
                    analyzer.process_record(&out, LinkType::Ethernet);
                }
            }
            analyzer.summary().zoom_packets
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
