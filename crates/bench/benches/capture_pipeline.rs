//! Capture-pipeline (software Tofino) per-packet decision throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::net::Ipv4Addr;
use zoom_capture::anonymize::{Anonymizer, Mode};
use zoom_capture::pipeline::{CapturePipeline, PipelineConfig};
use zoom_wire::compose;
use zoom_wire::pcap::{LinkType, Record};

fn pipeline(anonymize: bool) -> CapturePipeline {
    let mut cfg = PipelineConfig::sample("10.8.0.0/16");
    if anonymize {
        cfg.anonymizer = Some(Anonymizer::new(5, Mode::PrefixPreserving));
    }
    CapturePipeline::new(cfg)
}

fn bench(c: &mut Criterion) {
    let zoom_pkt = compose::udp_ipv4_ethernet(
        Ipv4Addr::new(10, 8, 0, 2),
        Ipv4Addr::new(170, 114, 1, 1),
        51_000,
        8801,
        &[0u8; 900],
    );
    let other_pkt = compose::udp_ipv4_ethernet(
        Ipv4Addr::new(10, 8, 0, 2),
        Ipv4Addr::new(13, 8, 8, 8),
        51_000,
        443,
        &[0u8; 900],
    );
    let mut g = c.benchmark_group("capture_pipeline");
    let mut p = pipeline(false);
    g.bench_function("classify_zoom_server", |b| {
        b.iter(|| p.classify(0, black_box(&zoom_pkt), LinkType::Ethernet))
    });
    g.bench_function("classify_background", |b| {
        b.iter(|| p.classify(0, black_box(&other_pkt), LinkType::Ethernet))
    });
    let mut pa = pipeline(true);
    let record = Record::full(0, zoom_pkt.clone());
    g.bench_function("process_with_anonymization", |b| {
        b.iter(|| pa.process_record(black_box(&record), LinkType::Ethernet))
    });
    let anon = Anonymizer::new(9, Mode::PrefixPreserving);
    g.bench_function("anonymize_address", |b| {
        b.iter(|| anon.anonymize_v4(black_box(Ipv4Addr::new(10, 8, 4, 200))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
