//! Entropy-based header-analysis toolkit throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zoom_analysis::entropy::{extract_series, find_rtp_offsets, scan_flow};
use zoom_wire::rtp;

fn synthetic_flow(n: usize) -> Vec<(u64, Vec<u8>)> {
    let mut rng = StdRng::seed_from_u64(3);
    (0..n as u64)
        .map(|i| {
            let repr = rtp::Repr {
                marker: i % 30 == 0,
                payload_type: 98,
                sequence_number: 100 + i as u16,
                timestamp: 5_000 + (i as u32) * 3_000,
                ssrc: 0x21,
                csrc_count: 0,
                has_extension: false,
            };
            let mut buf = vec![0u8; 8 + 12 + 200];
            buf[0] = 5;
            repr.emit(&mut rtp::Packet::new_unchecked(&mut buf[8..20]));
            rng.fill(&mut buf[20..]);
            (i * 33_000_000, buf)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let flow = synthetic_flow(1_000);
    let mut g = c.benchmark_group("entropy");
    g.sample_size(20);
    g.bench_function("extract_series_4B", |b| {
        b.iter(|| extract_series(flow.iter().map(|(t, p)| (*t, p.as_slice())), 12, 4))
    });
    g.bench_function("classify_series", |b| {
        let s = extract_series(flow.iter().map(|(t, p)| (*t, p.as_slice())), 12, 4);
        b.iter(|| black_box(&s).classify())
    });
    g.bench_function("scan_flow_32B", |b| {
        b.iter(|| scan_flow(black_box(&flow), 32))
    });
    g.bench_function("find_rtp_offsets_32B", |b| {
        b.iter(|| find_rtp_offsets(black_box(&flow), 32))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
