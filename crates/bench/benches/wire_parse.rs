//! Wire-format parsing throughput: the per-packet cost floor of the whole
//! toolchain.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::net::Ipv4Addr;
use zoom_wire::dissect::{dissect, dissect_from, peek, P2pProbe};
use zoom_wire::pcap::LinkType;
use zoom_wire::{compose, rtp, stun, zoom};

fn video_packet() -> Vec<u8> {
    let payload = zoom::Builder {
        sfu: Some(zoom::SfuEncapRepr {
            encap_type: zoom::SFU_TYPE_MEDIA,
            sequence: 9,
            direction: zoom::DIR_FROM_SFU,
        }),
        media: zoom::MediaEncapRepr {
            media_type: zoom::MediaType::Video,
            sequence: 100,
            timestamp: 9_000,
            frame_sequence: Some(5),
            packets_in_frame: Some(3),
        },
        rtp: Some(rtp::Repr {
            marker: false,
            payload_type: 98,
            sequence_number: 700,
            timestamp: 90_000,
            ssrc: 0x21,
            csrc_count: 0,
            has_extension: true,
        }),
        payload: vec![0x5A; 1_100],
    }
    .build();
    compose::udp_ipv4_ethernet(
        Ipv4Addr::new(170, 114, 0, 1),
        Ipv4Addr::new(10, 8, 0, 3),
        8801,
        50_111,
        &payload,
    )
}

fn bench(c: &mut Criterion) {
    let pkt = video_packet();
    let mut g = c.benchmark_group("wire_parse");
    g.throughput(Throughput::Bytes(pkt.len() as u64));
    g.bench_function("dissect_full_stack", |b| {
        b.iter(|| dissect(0, black_box(&pkt), LinkType::Ethernet, P2pProbe::Off).unwrap())
    });
    // The one-pass fast path: a header-only peek (what the shard router
    // pays per packet) and a dissection resumed from its offsets (what a
    // shard pays) — together they equal dissect_full_stack by
    // construction.
    g.bench_function("peek_header_only", |b| {
        b.iter(|| peek(black_box(&pkt), LinkType::Ethernet).unwrap().info)
    });
    let peeked = peek(&pkt, LinkType::Ethernet).unwrap().info;
    g.bench_function("dissect_from_peek", |b| {
        b.iter(|| dissect_from(black_box(&peeked), 0, black_box(&pkt), P2pProbe::Off))
    });
    let udp_payload = &pkt[14 + 20 + 8..];
    g.bench_function("zoom_parse_server", |b| {
        b.iter(|| zoom::parse(black_box(udp_payload), zoom::Framing::Server).unwrap())
    });
    let rtp_bytes = &udp_payload[8 + 24..];
    g.bench_function("rtp_header_parse", |b| {
        b.iter(|| {
            rtp::Packet::new_checked(black_box(rtp_bytes))
                .unwrap()
                .sequence_number()
        })
    });
    let msg = stun::Repr {
        message_type: stun::MessageType::BindingRequest,
        transaction_id: [7; 12],
        xor_mapped_address: None,
    };
    let mut stun_buf = vec![0u8; msg.buffer_len()];
    msg.emit(&mut stun_buf);
    g.bench_function("stun_looks_like", |b| {
        b.iter(|| stun::looks_like_stun(black_box(&stun_buf)))
    });
    g.bench_function("compose_udp_packet", |b| {
        b.iter(|| {
            compose::udp_ipv4_ethernet(
                Ipv4Addr::new(10, 8, 0, 1),
                Ipv4Addr::new(170, 114, 0, 1),
                50_000,
                8801,
                black_box(&udp_payload[..200]),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
