//! Streaming-engine overhead and memory bounds: windowed streaming vs
//! one-shot batch analysis on the same record stream, plus the tracked-
//! entry gauge that eviction is supposed to hold down.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;
use zoom_analysis::engine::{EngineConfig, QoeThresholds, StreamingEngine};
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::{LinkType, Record};

fn churn_records(seed: u64, secs: u64) -> Vec<Record> {
    let mut records: Vec<Record> = scenario::churn(seed, secs * SEC)
        .into_iter()
        .flat_map(MeetingSim::new)
        .collect();
    records.sort_by_key(|r| r.ts_nanos);
    records
}

fn run_streaming(
    records: &[Record],
    shards: usize,
    window: Option<Duration>,
    idle: Option<Duration>,
) -> (u64, usize) {
    run_streaming_qoe(records, shards, window, idle, None)
}

fn run_streaming_qoe(
    records: &[Record],
    shards: usize,
    window: Option<Duration>,
    idle: Option<Duration>,
    qoe: Option<QoeThresholds>,
) -> (u64, usize) {
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: AnalyzerConfig::default(),
        shards,
        window,
        idle_timeout: idle,
        qoe,
    })
    .expect("valid config");
    for r in records {
        engine
            .push_packet(r.ts_nanos, &r.data, LinkType::Ethernet)
            .expect("push");
        engine.take_alerts();
    }
    let out = engine.drain().expect("drain");
    (out.report.summary.zoom_packets, out.peak_tracked_entries)
}

fn bench(c: &mut Criterion) {
    let records = churn_records(5, 90);

    // Report the memory story once, outside the timed loops: with the
    // same window cadence (the gauge is sampled at window ticks),
    // eviction must hold the tracked-entry peak below the never-evict
    // run.
    let (_, peak_retaining) = run_streaming(&records, 1, Some(Duration::from_secs(10)), None);
    let (_, peak_evicting) = run_streaming(
        &records,
        1,
        Some(Duration::from_secs(10)),
        Some(Duration::from_secs(10)),
    );
    eprintln!(
        "tracked entries over {} records: never-evict peak {peak_retaining}, \
         evicting peak {peak_evicting}",
        records.len()
    );
    assert!(peak_evicting < peak_retaining);

    let mut g = c.benchmark_group("streaming_vs_batch");
    g.sample_size(10);
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("batch_sequential", |b| {
        b.iter(|| {
            let mut analyzer = Analyzer::new(AnalyzerConfig::default());
            for r in &records {
                analyzer.process_packet(r.ts_nanos, &r.data, LinkType::Ethernet);
            }
            analyzer.finish().expect("finish").summary.zoom_packets
        })
    });
    g.bench_function("streaming_unwindowed", |b| {
        b.iter(|| run_streaming(&records, 1, None, None).0)
    });
    g.bench_function("streaming_10s_windows", |b| {
        b.iter(|| run_streaming(&records, 1, Some(Duration::from_secs(10)), None).0)
    });
    // Full QoE telemetry on: labeled series updated and the degradation
    // detector scored at every window tick. The delta against
    // streaming_10s_windows is the telemetry-on cost quoted in
    // docs/PERFORMANCE.md.
    g.bench_function("streaming_10s_windows_qoe_watch", |b| {
        b.iter(|| {
            run_streaming_qoe(
                &records,
                1,
                Some(Duration::from_secs(10)),
                None,
                Some(QoeThresholds::default()),
            )
            .0
        })
    });
    g.bench_function("streaming_10s_windows_evicting", |b| {
        b.iter(|| {
            run_streaming(
                &records,
                1,
                Some(Duration::from_secs(10)),
                Some(Duration::from_secs(10)),
            )
            .0
        })
    });
    for shards in [2usize, 4] {
        g.bench_function(&format!("streaming_10s_windows_shards_{shards}"), |b| {
            b.iter(|| run_streaming(&records, shards, Some(Duration::from_secs(10)), None).0)
        });
    }
    // The zero-copy entry point: same engine, records fed as borrowed
    // slices via push_packet (what a SliceReader/read_into loop does)
    // instead of owned Records.
    g.bench_function("streaming_unwindowed_push_packet", |b| {
        b.iter(|| {
            let mut engine = StreamingEngine::new(EngineConfig {
                analyzer: AnalyzerConfig::default(),
                shards: 1,
                window: None,
                idle_timeout: None,
                qoe: None,
            })
            .expect("valid config");
            for r in &records {
                engine
                    .push_packet(r.ts_nanos, &r.data, LinkType::Ethernet)
                    .expect("push");
            }
            engine.drain().expect("drain").report.summary.zoom_packets
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
