//! Analyzer and per-metric estimator throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zoom_analysis::metrics::frame::FrameTracker;
use zoom_analysis::metrics::jitter::JitterEstimator;
use zoom_analysis::metrics::loss::SeqTracker;
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::LinkType;

fn bench(c: &mut Criterion) {
    // Pre-generate a meeting's records once.
    let records: Vec<_> = MeetingSim::new(scenario::validation_experiment(3))
        .take(20_000)
        .collect();
    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    g.bench_function("analyzer_20k_packets", |b| {
        b.iter(|| {
            let mut a = Analyzer::new(AnalyzerConfig::default());
            for r in &records {
                a.process_packet(black_box(r).ts_nanos, &r.data, LinkType::Ethernet);
            }
            a.summary().zoom_packets
        })
    });
    g.finish();

    let mut g = c.benchmark_group("estimators");
    g.bench_function("jitter_on_frame", |b| {
        let mut j = JitterEstimator::video();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            j.on_frame(i * 33_000_000, (i as u32) * 3_000);
            black_box(j.jitter_nanos())
        })
    });
    g.bench_function("seq_tracker", |b| {
        let mut t = SeqTracker::new();
        let mut s = 0u16;
        b.iter(|| {
            s = s.wrapping_add(1);
            t.on_sequence(black_box(s));
        })
    });
    g.bench_function("frame_tracker_3pkt_frame", |b| {
        let mut t = FrameTracker::video();
        let mut ts = 0u32;
        let mut seq = 0u16;
        let mut at = 0u64;
        b.iter(|| {
            ts = ts.wrapping_add(3_000);
            at += 33_000_000;
            for k in 0..3 {
                seq = seq.wrapping_add(1);
                t.on_packet(at + k * 250_000, ts, seq, k == 2, 1_000, Some(3));
            }
            black_box(t.frames().len())
        })
    });
    g.finish();

    // Simulator generation throughput (packets/second of sim).
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("meeting_sim_10s_two_party", |b| {
        b.iter(|| {
            let mut cfg = scenario::validation_experiment(9);
            for p in &mut cfg.participants {
                p.leave_at = 10 * SEC;
            }
            MeetingSim::new(cfg).count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
