//! Regenerates Fig. 11: the two latency-measurement methods compared.
use zoom_bench::harness::ExpArgs;
fn main() {
    let args = ExpArgs::parse(ExpArgs::default());
    zoom_bench::figures::fig11(&args);
}
