//! Regenerates Table 7 and the Appendix B infrastructure analysis from
//! the synthetic Zoom server database.
fn main() {
    zoom_bench::tables::table7();
}
