//! Writes `BENCH_ingest.json`: packet rates and allocations per record
//! for the three pcap ingest paths (owning `Reader`, buffer-reusing
//! `read_into`, borrowed `SliceReader`), measured under a counting
//! global allocator. This file starts the `BENCH_*.json` perf
//! trajectory so later PRs have numbers to compare against; the schema
//! is documented in `docs/PERFORMANCE.md`.
//!
//! Usage: `cargo run --release -p zoom-bench --bin bench_ingest [out.json]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::PacketSink;
use zoom_capture::fragment::FragmentSource;
use zoom_capture::mux::{CaptureMux, MuxConfig, Overflow};
use zoom_capture::source::{PacketSource, ReplaySource};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::frame::{FrameWriter, Totals};
use zoom_wire::handoff::RecordBatch;
use zoom_wire::pcap::{LinkType, Reader, Record, RecordBuf, SliceReader, Writer};

/// Counts every heap allocation (and growth) made by the process so the
/// measured loops can report allocations per record.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One measured ingest path.
struct PathResult {
    name: &'static str,
    /// Reader-only loop: records per second.
    reader_pkts_per_sec: f64,
    /// Reader-only loop: heap allocations per record, cold start.
    reader_allocs_per_record: f64,
    /// Reader-only loop: total allocations on a second pass with warm
    /// state (the `read_into` buffer already grown). Target 0 for the
    /// fast paths.
    steady_state_reader_allocs: u64,
    /// Reader feeding the sequential analyzer: records per second.
    pipeline_pkts_per_sec: f64,
}

/// Runs `f` over the image, returning (records, seconds, allocs).
fn measured(f: impl FnOnce() -> u64) -> (u64, f64, u64) {
    let a0 = allocs();
    let t0 = Instant::now();
    let n = f();
    let secs = t0.elapsed().as_secs_f64();
    (n, secs, allocs() - a0)
}

fn read_owning(img: &[u8]) -> u64 {
    let mut r = Reader::new(img).expect("pcap header");
    let mut n = 0u64;
    let mut sum = 0usize;
    while let Some(rec) = r.next_record().expect("record") {
        sum += rec.data.len();
        n += 1;
    }
    black_box(sum);
    n
}

fn read_reuse(img: &[u8], buf: &mut RecordBuf) -> u64 {
    let mut r = Reader::new(img).expect("pcap header");
    let mut n = 0u64;
    let mut sum = 0usize;
    while r.read_into(buf).expect("record") {
        sum += buf.data().len();
        n += 1;
    }
    black_box(sum);
    n
}

fn read_slice(img: &[u8]) -> u64 {
    let mut r = SliceReader::new(img).expect("pcap header");
    let mut n = 0u64;
    let mut sum = 0usize;
    while let Some(rec) = r.next_record().expect("record") {
        sum += rec.data.len();
        n += 1;
    }
    black_box(sum);
    n
}

fn analyze_via(img: &[u8], name: &str) -> (u64, f64) {
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    let t0 = Instant::now();
    let n = match name {
        "owning_reader" => {
            let mut r = Reader::new(img).expect("pcap header");
            let link = r.link_type();
            let mut n = 0u64;
            while let Some(rec) = r.next_record().expect("record") {
                analyzer.push(rec.ts_nanos, &rec.data, link).expect("push");
                n += 1;
            }
            n
        }
        "read_into_reuse" => {
            let mut r = Reader::new(img).expect("pcap header");
            let link = r.link_type();
            let mut buf = RecordBuf::new();
            let mut n = 0u64;
            while r.read_into(&mut buf).expect("record") {
                analyzer
                    .push(buf.ts_nanos(), buf.data(), link)
                    .expect("push");
                n += 1;
            }
            n
        }
        _ => {
            let mut r = SliceReader::new(img).expect("pcap header");
            let link = r.link_type();
            let mut n = 0u64;
            while let Some(rec) = r.next_record().expect("record") {
                analyzer.push(rec.ts_nanos, rec.data, link).expect("push");
                n += 1;
            }
            n
        }
    };
    let secs = t0.elapsed().as_secs_f64();
    black_box(analyzer.summary().zoom_packets);
    (n, secs)
}

fn measure_path(img: &[u8], name: &'static str) -> PathResult {
    // Cold reader-only pass: rate and allocations per record.
    let mut reuse_buf = RecordBuf::new();
    let (n, secs, cold_allocs) = match name {
        "owning_reader" => measured(|| read_owning(img)),
        "read_into_reuse" => measured(|| read_reuse(img, &mut reuse_buf)),
        _ => measured(|| read_slice(img)),
    };
    // Warm second pass: the reuse buffer is already at capacity, so the
    // fast paths should not touch the allocator at all.
    let (_, _, steady) = match name {
        "owning_reader" => measured(|| read_owning(img)),
        "read_into_reuse" => measured(|| read_reuse(img, &mut reuse_buf)),
        _ => measured(|| read_slice(img)),
    };
    let (pn, psecs) = analyze_via(img, name);
    assert_eq!(pn, n, "{name}: pipeline saw a different record count");
    PathResult {
        name,
        reader_pkts_per_sec: n as f64 / secs,
        reader_allocs_per_record: cold_allocs as f64 / n as f64,
        steady_state_reader_allocs: steady,
        pipeline_pkts_per_sec: pn as f64 / psecs,
    }
}

/// Deal the trace round-robin to `n` replay sources (untimed setup;
/// sources are consumed per run).
fn deal_sources(records: &[Record], n: usize) -> Vec<Box<dyn PacketSource>> {
    let mut parts = vec![Vec::new(); n];
    for (i, r) in records.iter().enumerate() {
        parts[i % n].push(r.clone());
    }
    parts
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            Box::new(ReplaySource::new(
                &format!("bench:{i}"),
                LinkType::Ethernet,
                p,
            )) as Box<dyn PacketSource>
        })
        .collect()
}

fn start_mux(sources: Vec<Box<dyn PacketSource>>) -> CaptureMux {
    CaptureMux::start(
        sources,
        MuxConfig {
            ring_capacity: 8,
            overflow: Overflow::Block,
        },
        None,
    )
}

/// One measured multi-source run: `n_sources` in-memory replay sources
/// merged by `CaptureMux` through the lossless bounded rings. Returns
/// (records, pipeline pkts/s feeding the analyzer, capture-side
/// allocations per record). The allocation figure comes from a
/// merge-only pass so it isolates the fan-in — threads, rings, and the
/// first round of arena batches, amortized over the trace; once the
/// recycle rings are warm the hand-off allocates nothing per record.
fn analyze_multi_source(records: &[Record], n_sources: usize) -> (u64, f64, f64) {
    // Pass 1, merge only: capture-side allocations per record.
    let sources = deal_sources(records, n_sources);
    let a0 = allocs();
    let mut mux = start_mux(sources);
    let mut sum = 0usize;
    while let Some(r) = mux.next_record().expect("mux record") {
        sum += r.data.len();
    }
    mux.finish().expect("capture teardown");
    let fanin_allocs = allocs() - a0;
    black_box(sum);

    // Pass 2, merged stream feeding the sequential analyzer: pkts/s to
    // compare against the single-source pipeline rates above.
    let sources = deal_sources(records, n_sources);
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    let t0 = Instant::now();
    let mut mux = start_mux(sources);
    let mut n = 0u64;
    while let Some(r) = mux.next_record().expect("mux record") {
        analyzer.push(r.ts_nanos, r.data, r.link).expect("push");
        n += 1;
    }
    assert_eq!(mux.ring_full_drops(), 0, "lossless rings must not drop");
    mux.finish().expect("capture teardown");
    let secs = t0.elapsed().as_secs_f64();
    black_box(analyzer.summary().zoom_packets);
    (n, n as f64 / secs, fanin_allocs as f64 / n as f64)
}

/// Encode the trace dealt round-robin to `n` workers as in-memory
/// fragment streams — the wire image a `analyze --emit-fragments`
/// worker ships (untimed setup; streams are rebuilt per run).
fn deal_fragment_streams(records: &[Record], n: usize) -> Vec<Vec<u8>> {
    let mut parts = vec![Vec::new(); n];
    for (i, r) in records.iter().enumerate() {
        parts[i % n].push(r.clone());
    }
    parts
        .into_iter()
        .enumerate()
        .map(|(i, part)| {
            let mut w = FrameWriter::new(Vec::new(), &format!("bench:{i}"), LinkType::Ethernet)
                .expect("frame header");
            let mut batch = RecordBatch::new();
            let mut bytes = 0u64;
            let mut frames = 0u64;
            for chunk in part.chunks(64) {
                batch.clear();
                for r in chunk {
                    batch.push(r.ts_nanos, r.orig_len, &r.data);
                    bytes += r.data.len() as u64;
                }
                w.write_batch(&batch).expect("records frame");
                frames += 1;
            }
            w.finish(Totals {
                packets: part.len() as u64,
                bytes,
                batches: frames,
                ring_full_drops: 0,
                truncated: 0,
            })
            .expect("bye frame")
        })
        .collect()
}

fn fragment_sources(streams: Vec<Vec<u8>>) -> Vec<Box<dyn PacketSource>> {
    streams
        .into_iter()
        .map(|s| {
            Box::new(FragmentSource::open(std::io::Cursor::new(s)).expect("stream header"))
                as Box<dyn PacketSource>
        })
        .collect()
}

/// One measured merge-node run: `n_workers` wire-framed fragment
/// streams decoded by `FragmentSource` lanes and merged through the
/// fan-in. Same two-pass shape as [`analyze_multi_source`] so the
/// numbers are comparable — the delta against `multi_source` is the
/// cost of the wire protocol (frame decode + accounting).
fn analyze_merge_fragments(records: &[Record], n_workers: usize) -> (u64, f64, f64) {
    // Pass 1, merge only: decode + fan-in allocations per record.
    let sources = fragment_sources(deal_fragment_streams(records, n_workers));
    let a0 = allocs();
    let mut mux = start_mux(sources);
    let mut sum = 0usize;
    while let Some(r) = mux.next_record().expect("mux record") {
        sum += r.data.len();
    }
    mux.finish().expect("capture teardown");
    let fanin_allocs = allocs() - a0;
    black_box(sum);

    // Pass 2, merged stream feeding the sequential analyzer.
    let sources = fragment_sources(deal_fragment_streams(records, n_workers));
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    let t0 = Instant::now();
    let mut mux = start_mux(sources);
    let mut n = 0u64;
    while let Some(r) = mux.next_record().expect("mux record") {
        analyzer.push(r.ts_nanos, r.data, r.link).expect("push");
        n += 1;
    }
    assert_eq!(mux.ring_full_drops(), 0, "lossless rings must not drop");
    mux.finish().expect("capture teardown");
    let secs = t0.elapsed().as_secs_f64();
    black_box(analyzer.summary().zoom_packets);
    (n, n as f64 / secs, fanin_allocs as f64 / n as f64)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_ingest.json".to_string());

    let records: Vec<Record> = MeetingSim::new(scenario::multi_party(5, 60 * SEC)).collect();
    let mut w = Writer::new(Vec::new(), LinkType::Ethernet).expect("header");
    for r in &records {
        w.write_record(r).expect("record");
    }
    let img = w.finish().expect("flush");
    eprintln!(
        "[bench_ingest] {} records, {} pcap bytes",
        records.len(),
        img.len()
    );

    let results: Vec<PathResult> = ["owning_reader", "read_into_reuse", "slice_reader"]
        .into_iter()
        .map(|name| measure_path(&img, name))
        .collect();

    for r in &results {
        eprintln!(
            "[bench_ingest] {:<16} reader {:>12.0} pkts/s  {:.4} allocs/record \
             (steady-state {})  pipeline {:>10.0} pkts/s",
            r.name,
            r.reader_pkts_per_sec,
            r.reader_allocs_per_record,
            r.steady_state_reader_allocs,
            r.pipeline_pkts_per_sec,
        );
    }

    // The point of the fast path: strictly fewer allocations per record
    // than the owning reader, and a steady state that never allocates.
    let owning = &results[0];
    for fast in &results[1..] {
        assert!(
            fast.reader_allocs_per_record < owning.reader_allocs_per_record,
            "{} allocates as much as the owning reader",
            fast.name
        );
        assert_eq!(
            fast.steady_state_reader_allocs, 0,
            "{} allocated in steady state",
            fast.name
        );
    }

    // Multi-source fan-in: the same trace dealt to two replay sources
    // and merged back by CaptureMux into the same analyzer. On a
    // multi-core box this should meet or beat the single-source pipeline
    // rate (capture overlaps analysis); on a single core the thread
    // hand-off is pure overhead — record the number honestly either way.
    let (mn, multi_rate, multi_allocs) = analyze_multi_source(&records, 2);
    assert_eq!(mn, records.len() as u64, "multi-source lost records");
    eprintln!(
        "[bench_ingest] multi_source_2   pipeline {multi_rate:>10.0} pkts/s  \
         {multi_allocs:.4} fan-in allocs/record (setup amortized)"
    );

    // Distributed merge path: the same deal, but each worker's records
    // travel through the wire-framed fragment protocol before the
    // fan-in — the merge node's ingest cost.
    let (fn_, frag_rate, frag_allocs) = analyze_merge_fragments(&records, 2);
    assert_eq!(fn_, records.len() as u64, "fragment merge lost records");
    eprintln!(
        "[bench_ingest] merge_fragments  pipeline {frag_rate:>10.0} pkts/s  \
         {frag_allocs:.4} decode+fan-in allocs/record (setup amortized)"
    );

    let mut json = String::with_capacity(1024);
    json.push_str("{\n");
    json.push_str("  \"bench\": \"ingest\",\n");
    json.push_str(&format!("  \"records\": {},\n", records.len()));
    json.push_str(&format!("  \"pcap_bytes\": {},\n", img.len()));
    json.push_str("  \"paths\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"reader_pkts_per_sec\": {:.1}, \
             \"reader_allocs_per_record\": {:.6}, \
             \"steady_state_reader_allocs\": {}, \
             \"pipeline_pkts_per_sec\": {:.1}}}{}\n",
            r.name,
            r.reader_pkts_per_sec,
            r.reader_allocs_per_record,
            r.steady_state_reader_allocs,
            r.pipeline_pkts_per_sec,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"multi_source\": {{\"sources\": 2, \"pipeline_pkts_per_sec\": {:.1}, \
         \"fanin_allocs_per_record\": {:.6}}},\n",
        multi_rate, multi_allocs,
    ));
    json.push_str(&format!(
        "  \"merge_fragments\": {{\"workers\": 2, \"pipeline_pkts_per_sec\": {:.1}, \
         \"fanin_allocs_per_record\": {:.6}}}\n",
        frag_rate, frag_allocs,
    ));
    json.push_str("}\n");

    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write json");
    println!("[json] {out_path}");
}
