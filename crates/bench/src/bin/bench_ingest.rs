//! Writes `BENCH_ingest.json`: packet rates and allocations per record
//! for the pcap ingest paths (owning `Reader`, buffer-reusing
//! `read_into`, borrowed `SliceReader`), the batched dissection
//! pipeline (per-packet vs `push_batch`, unwindowed and windowed), and
//! the multi-source / distributed-merge fan-ins — all measured under a
//! counting global allocator over the `sim:campus-10x` standard load.
//!
//! The file carries a per-PR `history` array (`{pr, git_sha, entries}`)
//! so the perf trajectory is committed next to the numbers; each run
//! appends one entry and prints deltas against the previous one. The
//! schema is documented in `docs/PERFORMANCE.md`.
//!
//! Usage:
//!   `cargo run --release -p zoom-bench --bin bench_ingest [out.json] [--gate BASELINE.json]`
//!
//! `--gate` compares this run's pipeline rates against BASELINE.json
//! (normally the committed `BENCH_ingest.json`) and exits nonzero when
//! `batch_pipeline_pkts_per_sec` regresses more than 10 % (the other
//! rates are printed as informational trend lines). Set `BENCH_GATE_OVERRIDE=1`
//! to downgrade a gate failure to a warning (documented escape hatch for
//! known-noisy runners or intentional regressions); `BENCH_PR=N` pins
//! the history entry's PR number.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use zoom_analysis::engine::{EngineConfig, StreamingEngine};
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::PacketSink;
use zoom_capture::fragment::FragmentSource;
use zoom_capture::mux::{CaptureMux, MuxConfig, Overflow};
use zoom_capture::source::{PacketSource, ReplaySource};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::dissect::{peek_batch, PeekArena};
use zoom_wire::frame::{FrameWriter, Totals};
use zoom_wire::handoff::RecordBatch;
use zoom_wire::pcap::{LinkType, Reader, Record, RecordBuf, SliceReader, Writer};

/// The standard load: its canonical `SourceSpec` label, so the same
/// trace is reproducible as `--source sim:campus-10x,seed=7,secs=60`.
const WORKLOAD: &str = "sim:campus-10x,seed=7,secs=60";

/// The one history entry the `--gate` check hard-fails on; the rest are
/// printed as informational trend lines (see `run_gate`).
const GATE_KEY: &str = "batch_pipeline_pkts_per_sec";
/// Records per hand-off batch on the batched pipeline measurements
/// (matches the streaming engine's internal batch size).
const BATCH: usize = 256;
/// Records per fan-in drain on the multi-source measurements (matches
/// the CLI's `MUX_BATCH`).
const MUX_BATCH: usize = 1024;

/// Counts every heap allocation (and growth) made by the process so the
/// measured loops can report allocations per record.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One measured ingest path.
struct PathResult {
    name: &'static str,
    /// Reader-only loop: records per second.
    reader_pkts_per_sec: f64,
    /// Reader-only loop: heap allocations per record, cold start.
    reader_allocs_per_record: f64,
    /// Reader-only loop: total allocations on a second pass with warm
    /// state (the `read_into` buffer already grown). Target 0 for the
    /// fast paths.
    steady_state_reader_allocs: u64,
    /// Reader feeding the sequential analyzer: records per second.
    pipeline_pkts_per_sec: f64,
}

/// Runs `f` over the image, returning (records, seconds, allocs).
fn measured(f: impl FnOnce() -> u64) -> (u64, f64, u64) {
    let a0 = allocs();
    let t0 = Instant::now();
    let n = f();
    let secs = t0.elapsed().as_secs_f64();
    (n, secs, allocs() - a0)
}

/// Timed-rate repetitions for every gated pipeline measurement: the
/// fastest of `BEST_OF` runs. A shared machine only ever adds noise in
/// one direction (slower), so best-of is the stable estimator the CI
/// gate needs.
const BEST_OF: usize = 2;

/// Runs `f` (returning `(records, seconds)`) `BEST_OF` times and keeps
/// the fastest, asserting the record count is stable.
fn best_of(mut f: impl FnMut() -> (u64, f64)) -> (u64, f64) {
    let (n, mut secs) = f();
    for _ in 1..BEST_OF {
        let (n2, s2) = f();
        assert_eq!(n, n2, "repetitions saw different record counts");
        secs = secs.min(s2);
    }
    (n, secs)
}

fn read_owning(img: &[u8]) -> u64 {
    let mut r = Reader::new(img).expect("pcap header");
    let mut n = 0u64;
    let mut sum = 0usize;
    while let Some(rec) = r.next_record().expect("record") {
        sum += rec.data.len();
        n += 1;
    }
    black_box(sum);
    n
}

fn read_reuse(img: &[u8], buf: &mut RecordBuf) -> u64 {
    let mut r = Reader::new(img).expect("pcap header");
    let mut n = 0u64;
    let mut sum = 0usize;
    while r.read_into(buf).expect("record") {
        sum += buf.data().len();
        n += 1;
    }
    black_box(sum);
    n
}

fn read_slice(img: &[u8]) -> u64 {
    let mut r = SliceReader::new(img).expect("pcap header");
    let mut n = 0u64;
    let mut sum = 0usize;
    while let Some(rec) = r.next_record().expect("record") {
        sum += rec.data.len();
        n += 1;
    }
    black_box(sum);
    n
}

fn analyze_via(img: &[u8], name: &str) -> (u64, f64) {
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    let t0 = Instant::now();
    let n = match name {
        "owning_reader" => {
            let mut r = Reader::new(img).expect("pcap header");
            let link = r.link_type();
            let mut n = 0u64;
            while let Some(rec) = r.next_record().expect("record") {
                analyzer.push(rec.ts_nanos, &rec.data, link).expect("push");
                n += 1;
            }
            n
        }
        "read_into_reuse" => {
            let mut r = Reader::new(img).expect("pcap header");
            let link = r.link_type();
            let mut buf = RecordBuf::new();
            let mut n = 0u64;
            while r.read_into(&mut buf).expect("record") {
                analyzer
                    .push(buf.ts_nanos(), buf.data(), link)
                    .expect("push");
                n += 1;
            }
            n
        }
        _ => {
            let mut r = SliceReader::new(img).expect("pcap header");
            let link = r.link_type();
            let mut n = 0u64;
            while let Some(rec) = r.next_record().expect("record") {
                analyzer.push(rec.ts_nanos, rec.data, link).expect("push");
                n += 1;
            }
            n
        }
    };
    let secs = t0.elapsed().as_secs_f64();
    black_box(analyzer.summary().zoom_packets);
    (n, secs)
}

fn measure_path(img: &[u8], name: &'static str) -> PathResult {
    // Cold reader-only pass: rate and allocations per record.
    let mut reuse_buf = RecordBuf::new();
    let (n, secs, cold_allocs) = match name {
        "owning_reader" => measured(|| read_owning(img)),
        "read_into_reuse" => measured(|| read_reuse(img, &mut reuse_buf)),
        _ => measured(|| read_slice(img)),
    };
    // Warm second pass: the reuse buffer is already at capacity, so the
    // fast paths should not touch the allocator at all.
    let (_, _, steady) = match name {
        "owning_reader" => measured(|| read_owning(img)),
        "read_into_reuse" => measured(|| read_reuse(img, &mut reuse_buf)),
        _ => measured(|| read_slice(img)),
    };
    let (pn, psecs) = best_of(|| analyze_via(img, name));
    assert_eq!(pn, n, "{name}: pipeline saw a different record count");
    PathResult {
        name,
        reader_pkts_per_sec: n as f64 / secs,
        reader_allocs_per_record: cold_allocs as f64 / n as f64,
        steady_state_reader_allocs: steady,
        pipeline_pkts_per_sec: pn as f64 / psecs,
    }
}

/// The batched-dissection measurements.
struct BatchResult {
    /// Batch fill + `peek_batch` classification only (the type-sorted
    /// dispatch front half), records per second.
    classify_pkts_per_sec: f64,
    /// Classification loop allocations on a warm second pass: the batch
    /// arena and peek arena are at capacity, so this must be 0 — the
    /// batch-path extension of the reader invariant.
    steady_state_classify_allocs: u64,
    /// `SliceReader` → `RecordBatch` → `Analyzer::push_batch`:
    /// records per second. The headline batch pipeline rate, comparable
    /// to the per-packet `pipeline_pkts_per_sec` above.
    pipeline_pkts_per_sec: f64,
    /// The streaming engine (1 shard, 10 s windows) fed whole batches:
    /// records per second, including window emission.
    windowed_pipeline_pkts_per_sec: f64,
    /// Allocations per record on a second, warm windowed pass (same
    /// flow population, windows still rolling): the arena-recycling
    /// target is ~0 — only per-window report assembly may allocate.
    windowed_steady_state_allocs_per_record: f64,
}

/// Fill-and-classify: the reader half of the batch path. One
/// `RecordBatch` and one `PeekArena` are reused across calls, so a warm
/// pass must not allocate.
fn classify_batched(img: &[u8], batch: &mut RecordBatch, arena: &mut PeekArena) -> u64 {
    let mut r = SliceReader::new(img).expect("pcap header");
    let link = r.link_type();
    let mut n = 0u64;
    let mut classes = 0usize;
    loop {
        batch.clear();
        while batch.len() < BATCH {
            match r.next_record().expect("record") {
                Some(rec) => batch.push(rec.ts_nanos, rec.orig_len, rec.data),
                None => break,
            }
        }
        if batch.is_empty() {
            break;
        }
        peek_batch(batch, link, arena);
        // Touch the type-sorted dispatch output so it isn't optimized out.
        for c in [
            zoom_wire::dissect::PacketClass::Stun,
            zoom_wire::dissect::PacketClass::ZmeMedia,
            zoom_wire::dissect::PacketClass::ZmeControl,
            zoom_wire::dissect::PacketClass::NotZoom,
        ] {
            classes += arena.class_count(c);
        }
        n += batch.len() as u64;
    }
    black_box(classes);
    n
}

/// `SliceReader` → `RecordBatch` → sequential `Analyzer::push_batch`.
fn analyze_batched(img: &[u8]) -> (u64, f64) {
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    let mut r = SliceReader::new(img).expect("pcap header");
    let link = r.link_type();
    let mut batch = RecordBatch::new();
    let t0 = Instant::now();
    let mut n = 0u64;
    loop {
        batch.clear();
        while batch.len() < BATCH {
            match r.next_record().expect("record") {
                Some(rec) => batch.push(rec.ts_nanos, rec.orig_len, rec.data),
                None => break,
            }
        }
        if batch.is_empty() {
            break;
        }
        analyzer.push_batch(&batch, link).expect("push_batch");
        n += batch.len() as u64;
    }
    let secs = t0.elapsed().as_secs_f64();
    black_box(analyzer.summary().zoom_packets);
    (n, secs)
}

/// One windowed engine pass over the trace with all timestamps shifted
/// by `offset`, feeding whole batches and draining window reports as
/// they close. Returns (records, seconds).
fn windowed_batch_pass(engine: &mut StreamingEngine, records: &[Record], offset: u64) -> (u64, f64) {
    let mut batch = RecordBatch::new();
    let t0 = Instant::now();
    let mut n = 0u64;
    for chunk in records.chunks(BATCH) {
        batch.clear();
        for r in chunk {
            batch.push(r.ts_nanos + offset, r.orig_len, &r.data);
        }
        engine
            .push_batch(&batch, LinkType::Ethernet)
            .expect("push_batch");
        black_box(engine.take_windows().len());
        n += chunk.len() as u64;
    }
    (n, t0.elapsed().as_secs_f64())
}

fn measure_batch(img: &[u8], records: &[Record]) -> BatchResult {
    // Classification front half: cold, then warm (must be alloc-free).
    let mut batch = RecordBatch::new();
    let mut arena = PeekArena::new();
    let (cn, csecs, _) = measured(|| classify_batched(img, &mut batch, &mut arena));
    let (_, _, steady_classify) = measured(|| classify_batched(img, &mut batch, &mut arena));
    drop((batch, arena));

    // Whole-pipeline batch rate, sequential analyzer.
    let (bn, bsecs) = best_of(|| analyze_batched(img));
    assert_eq!(bn, cn, "batch pipeline saw a different record count");

    // Windowed engine: pass 1 warms the flow tables, worker arenas, and
    // recycle rings; pass 2 replays the same flows at later timestamps,
    // so windows keep rolling while the per-record path should stay off
    // the allocator (window-close report assembly is the remainder).
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: AnalyzerConfig::default(),
        shards: 1,
        window: Some(std::time::Duration::from_secs(10)),
        idle_timeout: None,
        qoe: None,
    })
    .expect("engine");
    let span = records.last().map(|r| r.ts_nanos + SEC).unwrap_or(0);
    let (wn, _) = windowed_batch_pass(&mut engine, records, 0);
    let a0 = allocs();
    let (wn2, w2secs) = windowed_batch_pass(&mut engine, records, span);
    let steady_windowed = allocs() - a0;
    // Another warm pass (time shifted again, so windows keep rolling)
    // purely for the best-of rate.
    let (_, w3secs) = windowed_batch_pass(&mut engine, records, 2 * span);
    let wsecs = w2secs.min(w3secs);
    assert_eq!(wn, wn2);
    let output = engine.drain().expect("drain");
    black_box(output.analyzer.summary().zoom_packets);

    BatchResult {
        classify_pkts_per_sec: cn as f64 / csecs,
        steady_state_classify_allocs: steady_classify,
        pipeline_pkts_per_sec: bn as f64 / bsecs,
        windowed_pipeline_pkts_per_sec: wn as f64 / wsecs,
        windowed_steady_state_allocs_per_record: steady_windowed as f64 / wn2 as f64,
    }
}

/// Deal the trace round-robin to `n` replay sources (untimed setup;
/// sources are consumed per run).
fn deal_sources(records: &[Record], n: usize) -> Vec<Box<dyn PacketSource>> {
    let mut parts = vec![Vec::new(); n];
    for (i, r) in records.iter().enumerate() {
        parts[i % n].push(r.clone());
    }
    parts
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            Box::new(ReplaySource::new(
                &format!("bench:{i}"),
                LinkType::Ethernet,
                p,
            )) as Box<dyn PacketSource>
        })
        .collect()
}

fn start_mux(sources: Vec<Box<dyn PacketSource>>) -> CaptureMux {
    CaptureMux::start(
        sources,
        MuxConfig {
            ring_capacity: 8,
            overflow: Overflow::Block,
        },
        None,
    )
}

/// One measured multi-source run: `n_sources` in-memory replay sources
/// merged by `CaptureMux` through the lossless bounded rings, drained a
/// run-extended batch at a time. Returns (records, pipeline pkts/s
/// feeding the batched analyzer, capture-side allocations per record).
/// The allocation figure comes from a merge-only pass so it isolates
/// the fan-in — threads, rings, and the first round of arena batches,
/// amortized over the trace; once the recycle rings are warm the
/// hand-off allocates nothing per record.
fn analyze_multi_source(records: &[Record], n_sources: usize) -> (u64, f64, f64) {
    // Pass 1, merge only: capture-side allocations per record.
    let sources = deal_sources(records, n_sources);
    let a0 = allocs();
    let mut mux = start_mux(sources);
    let mut batch = RecordBatch::new();
    let mut sum = 0usize;
    let mut n1 = 0u64;
    while mux.next_batch(&mut batch, MUX_BATCH).expect("mux batch").is_some() {
        sum += batch.arena_bytes();
        n1 += batch.len() as u64;
    }
    mux.finish().expect("capture teardown");
    let fanin_allocs = allocs() - a0;
    black_box(sum);

    // Pass 2, merged batches feeding the batched sequential analyzer:
    // pkts/s to compare against the single-source pipeline rates above.
    let (n, secs) = best_of(|| {
        let sources = deal_sources(records, n_sources);
        let mut analyzer = Analyzer::new(AnalyzerConfig::default());
        let t0 = Instant::now();
        let mut mux = start_mux(sources);
        let mut n = 0u64;
        while let Some(link) = mux.next_batch(&mut batch, MUX_BATCH).expect("mux batch") {
            analyzer.push_batch(&batch, link).expect("push_batch");
            n += batch.len() as u64;
        }
        assert_eq!(mux.ring_full_drops(), 0, "lossless rings must not drop");
        mux.finish().expect("capture teardown");
        let secs = t0.elapsed().as_secs_f64();
        black_box(analyzer.summary().zoom_packets);
        (n, secs)
    });
    assert_eq!(n, n1, "fan-in passes disagree on record count");
    (n, n as f64 / secs, fanin_allocs as f64 / n as f64)
}

/// Encode the trace dealt round-robin to `n` workers as in-memory
/// fragment streams — the wire image a `analyze --emit-fragments`
/// worker ships (untimed setup; streams are rebuilt per run).
fn deal_fragment_streams(records: &[Record], n: usize) -> Vec<Vec<u8>> {
    let mut parts = vec![Vec::new(); n];
    for (i, r) in records.iter().enumerate() {
        parts[i % n].push(r.clone());
    }
    parts
        .into_iter()
        .enumerate()
        .map(|(i, part)| {
            let mut w = FrameWriter::new(Vec::new(), &format!("bench:{i}"), LinkType::Ethernet)
                .expect("frame header");
            let mut batch = RecordBatch::new();
            let mut bytes = 0u64;
            let mut frames = 0u64;
            for chunk in part.chunks(64) {
                batch.clear();
                for r in chunk {
                    batch.push(r.ts_nanos, r.orig_len, &r.data);
                    bytes += r.data.len() as u64;
                }
                w.write_batch(&batch).expect("records frame");
                frames += 1;
            }
            w.finish(Totals {
                packets: part.len() as u64,
                bytes,
                batches: frames,
                ring_full_drops: 0,
                truncated: 0,
            })
            .expect("bye frame")
        })
        .collect()
}

fn fragment_sources(streams: Vec<Vec<u8>>) -> Vec<Box<dyn PacketSource>> {
    streams
        .into_iter()
        .map(|s| {
            Box::new(FragmentSource::open(std::io::Cursor::new(s)).expect("stream header"))
                as Box<dyn PacketSource>
        })
        .collect()
}

/// One measured merge-node run: `n_workers` wire-framed fragment
/// streams decoded by `FragmentSource` lanes and merged through the
/// fan-in. Same two-pass shape as [`analyze_multi_source`] so the
/// numbers are comparable — the delta against `multi_source` is the
/// cost of the wire protocol (frame decode + accounting).
fn analyze_merge_fragments(records: &[Record], n_workers: usize) -> (u64, f64, f64) {
    // Pass 1, merge only: decode + fan-in allocations per record.
    let sources = fragment_sources(deal_fragment_streams(records, n_workers));
    let a0 = allocs();
    let mut mux = start_mux(sources);
    let mut batch = RecordBatch::new();
    let mut sum = 0usize;
    let mut n1 = 0u64;
    while mux.next_batch(&mut batch, MUX_BATCH).expect("mux batch").is_some() {
        sum += batch.arena_bytes();
        n1 += batch.len() as u64;
    }
    mux.finish().expect("capture teardown");
    let fanin_allocs = allocs() - a0;
    black_box(sum);

    // Pass 2, merged batches feeding the batched sequential analyzer.
    let (n, secs) = best_of(|| {
        let sources = fragment_sources(deal_fragment_streams(records, n_workers));
        let mut analyzer = Analyzer::new(AnalyzerConfig::default());
        let t0 = Instant::now();
        let mut mux = start_mux(sources);
        let mut n = 0u64;
        while let Some(link) = mux.next_batch(&mut batch, MUX_BATCH).expect("mux batch") {
            analyzer.push_batch(&batch, link).expect("push_batch");
            n += batch.len() as u64;
        }
        assert_eq!(mux.ring_full_drops(), 0, "lossless rings must not drop");
        mux.finish().expect("capture teardown");
        let secs = t0.elapsed().as_secs_f64();
        black_box(analyzer.summary().zoom_packets);
        (n, secs)
    });
    assert_eq!(n, n1, "fan-in passes disagree on record count");
    (n, n as f64 / secs, fanin_allocs as f64 / n as f64)
}

// ---- history + gate plumbing (textual; this repo keeps no JSON parser,
// and the bench only ever reads back its own writer's format) ----

/// The first JSON number following `"key":` after `anchor` (or from the
/// start when `anchor` is empty).
fn num_after(text: &str, anchor: &str, key: &str) -> Option<f64> {
    let start = if anchor.is_empty() {
        0
    } else {
        text.find(anchor)?
    };
    let rest = &text[start..];
    let k = format!("\"{key}\":");
    let p = rest.find(&k)? + k.len();
    let rest = rest[p..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The string value following `"key": "` (no escapes — labels only).
fn str_after(text: &str, key: &str) -> Option<String> {
    let k = format!("\"{key}\": \"");
    let p = text.find(&k)? + k.len();
    let rest = &text[p..];
    Some(rest[..rest.find('"')?].to_string())
}

/// The raw per-PR entry lines of a previous run's `"history"` array.
/// Falls back to synthesizing one entry from a pre-history snapshot
/// (the schema before the trajectory array existed) so the first run
/// with this binary still starts the series from the committed numbers.
fn prior_history(text: &str) -> Vec<String> {
    if let Some(p) = text.find("\"history\": [") {
        let rest = &text[p + "\"history\": [".len()..];
        let Some(end) = rest.find("\n  ]") else {
            return Vec::new();
        };
        return rest[..end]
            .lines()
            .map(str::trim)
            .filter(|l| l.starts_with('{'))
            .map(|l| l.trim_end_matches(',').to_string())
            .collect();
    }
    // Legacy snapshot: lift its headline rates into a synthetic entry.
    // The pre-history file was last regenerated by PR 7 over the old
    // standard load (`sim:multi`).
    let read_into = num_after(text, "\"name\": \"read_into_reuse\"", "pipeline_pkts_per_sec");
    let multi = num_after(text, "\"multi_source\"", "pipeline_pkts_per_sec");
    let merge = num_after(text, "\"merge_fragments\"", "pipeline_pkts_per_sec");
    let workload = str_after(text, "workload").unwrap_or_else(|| "sim:multi,seed=5,secs=60".into());
    let (Some(read_into), Some(multi), Some(merge)) = (read_into, multi, merge) else {
        return Vec::new();
    };
    vec![format!(
        "{{\"pr\": 7, \"git_sha\": \"unknown\", \"workload\": \"{workload}\", \"entries\": \
         {{\"read_into_pipeline_pkts_per_sec\": {read_into:.1}, \
         \"multi_source_pipeline_pkts_per_sec\": {multi:.1}, \
         \"merge_pipeline_pkts_per_sec\": {merge:.1}}}}}"
    )]
}

/// Coarse host fingerprint recorded with every history entry so rate
/// deltas across entries can be discounted when the hardware changed:
/// logical core count plus `uname -srm` (kernel, release, machine).
fn machine_fingerprint() -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let uname = std::process::Command::new("uname")
        .args(["-srm"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    format!("{cores} cores, {uname}")
}

fn git_short_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Print the delta of each of this run's entry rates against the
/// previous history entry (when it recorded the same key).
fn print_deltas(prev: Option<&String>, entries: &[(&str, f64)]) {
    let Some(prev) = prev else {
        return;
    };
    let pr = num_after(prev, "", "pr").map(|v| v as i64).unwrap_or(-1);
    let sha = str_after(prev, "git_sha").unwrap_or_else(|| "unknown".into());
    let workload = str_after(prev, "workload").unwrap_or_default();
    if workload != WORKLOAD {
        eprintln!(
            "[bench_ingest] note: previous entry (pr {pr} @{sha}) ran workload \
             {workload:?}; deltas below compare across workloads"
        );
    }
    for (key, now) in entries {
        if let Some(then) = num_after(prev, "", key) {
            let pct = (now - then) / then * 100.0;
            eprintln!(
                "[bench_ingest] {key:<38} {now:>12.0} pkts/s ({pct:+.1}% vs pr {pr} @{sha})"
            );
        }
    }
}

/// `--gate`: fail (exit 1) when a headline pipeline rate regressed more
/// than 10 % against the baseline file, unless `BENCH_GATE_OVERRIDE=1`.
fn run_gate(baseline_path: &str, entries: &[(&str, f64)]) {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[bench_ingest] gate: cannot read {baseline_path}: {e}");
            std::process::exit(1);
        }
    };
    let baseline_workload = str_after(&text, "workload");
    if baseline_workload.as_deref() != Some(WORKLOAD) {
        eprintln!(
            "[bench_ingest] gate: baseline workload {:?} differs from {WORKLOAD:?}; \
             rates are not comparable — skipping gate",
            baseline_workload
        );
        return;
    }
    // Gate against the baseline's latest history entry (the committed
    // trajectory head), falling back to its snapshot sections.
    let head = prior_history(&text);
    let head = head.last().cloned().unwrap_or(text);
    // Surface both host fingerprints: a gate verdict on different
    // hardware is trend information, not a regression proof.
    let here = machine_fingerprint();
    match str_after(&head, "machine") {
        Some(base) if base != here => eprintln!(
            "[bench_ingest] gate: machine changed — baseline [{base}], this run [{here}]"
        ),
        Some(base) => eprintln!("[bench_ingest] gate: machine [{base}] (unchanged)"),
        None => eprintln!(
            "[bench_ingest] gate: baseline entry predates machine fingerprints; \
             this run is [{here}]"
        ),
    }
    let mut failed = false;
    for (key, now) in entries {
        let Some(then) = num_after(&head, "", key) else {
            continue;
        };
        // Only the primary batched pipeline rate hard-fails the gate: the
        // per-record and fan-in rates are reported for trend visibility but
        // swing well past 10 % run-to-run on loaded single-core runners,
        // which would make the gate cry wolf.
        let gated = *key == GATE_KEY;
        let regressed = *now < then * 0.9;
        let pct = (now - then) / then * 100.0;
        let verdict = match (gated, regressed) {
            (true, true) => "FAIL",
            (true, false) => "ok",
            (false, _) => "info",
        };
        eprintln!(
            "[bench_ingest] gate: {key:<38} {now:>12.0} vs baseline {then:>12.0} \
             ({pct:+.1}%) {verdict}"
        );
        failed |= gated && regressed;
    }
    if failed {
        if std::env::var("BENCH_GATE_OVERRIDE").as_deref() == Ok("1") {
            eprintln!(
                "[bench_ingest] gate: FAILED but BENCH_GATE_OVERRIDE=1 is set — continuing"
            );
        } else {
            eprintln!(
                "[bench_ingest] gate: {GATE_KEY} regressed more than 10%. \
                 If this is expected (or the runner is known-noisy), re-run with \
                 BENCH_GATE_OVERRIDE=1 and justify the regression in the PR."
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut out_path = "BENCH_ingest.json".to_string();
    let mut gate_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--gate" {
            gate_path = Some(args.next().unwrap_or_else(|| {
                eprintln!("--gate needs a baseline path");
                std::process::exit(1);
            }));
        } else {
            out_path = a;
        }
    }
    let prior_text = std::fs::read_to_string(&out_path).unwrap_or_default();

    let records: Vec<Record> = {
        let mut v: Vec<Record> = scenario::campus_10x(7, 60 * SEC)
            .into_iter()
            .flat_map(MeetingSim::new)
            .collect();
        v.sort_by_key(|r| r.ts_nanos);
        v
    };
    let mut w = Writer::new(Vec::new(), LinkType::Ethernet).expect("header");
    for r in &records {
        w.write_record(r).expect("record");
    }
    let img = w.finish().expect("flush");
    eprintln!(
        "[bench_ingest] workload {WORKLOAD}: {} records, {} pcap bytes",
        records.len(),
        img.len()
    );

    let results: Vec<PathResult> = ["owning_reader", "read_into_reuse", "slice_reader"]
        .into_iter()
        .map(|name| measure_path(&img, name))
        .collect();

    for r in &results {
        eprintln!(
            "[bench_ingest] {:<16} reader {:>12.0} pkts/s  {:.4} allocs/record \
             (steady-state {})  pipeline {:>10.0} pkts/s",
            r.name,
            r.reader_pkts_per_sec,
            r.reader_allocs_per_record,
            r.steady_state_reader_allocs,
            r.pipeline_pkts_per_sec,
        );
    }

    // The point of the fast path: strictly fewer allocations per record
    // than the owning reader, and a steady state that never allocates.
    let owning = &results[0];
    for fast in &results[1..] {
        assert!(
            fast.reader_allocs_per_record < owning.reader_allocs_per_record,
            "{} allocates as much as the owning reader",
            fast.name
        );
        assert_eq!(
            fast.steady_state_reader_allocs, 0,
            "{} allocated in steady state",
            fast.name
        );
    }

    // The batched hot path: type-sorted classification, whole-batch
    // analyzer ingest, and the windowed engine with arena recycling.
    let batch = measure_batch(&img, &records);
    eprintln!(
        "[bench_ingest] batch_classify   {:>12.0} pkts/s (steady-state allocs {})",
        batch.classify_pkts_per_sec, batch.steady_state_classify_allocs
    );
    eprintln!(
        "[bench_ingest] batch_pipeline   {:>12.0} pkts/s  windowed {:>10.0} pkts/s \
         ({:.6} steady-state allocs/record)",
        batch.pipeline_pkts_per_sec,
        batch.windowed_pipeline_pkts_per_sec,
        batch.windowed_steady_state_allocs_per_record,
    );
    assert_eq!(
        batch.steady_state_classify_allocs, 0,
        "warm batch classification touched the allocator"
    );
    assert!(
        batch.windowed_steady_state_allocs_per_record < 0.05,
        "windowed steady state allocates per record: {:.4}",
        batch.windowed_steady_state_allocs_per_record
    );

    // Continuity reference: the pre-PR-8 standard load (`multi_party`,
    // the canonical `sim:multi,seed=5,secs=60`), so the batch path can
    // be compared against the committed per-record trajectory on the
    // same footing despite the workload switch to campus-10x.
    let (ref_per_record, ref_batch) = {
        let mut v: Vec<Record> = MeetingSim::new(scenario::multi_party(5, 60 * SEC)).collect();
        v.sort_by_key(|r| r.ts_nanos);
        let mut w = Writer::new(Vec::new(), LinkType::Ethernet).expect("header");
        for r in &v {
            w.write_record(r).expect("record");
        }
        let ref_img = w.finish().expect("flush");
        let (n, secs) = best_of(|| analyze_via(&ref_img, "read_into_reuse"));
        let (bn, bsecs) = best_of(|| analyze_batched(&ref_img));
        assert_eq!(n, bn);
        (n as f64 / secs, bn as f64 / bsecs)
    };
    eprintln!(
        "[bench_ingest] reference (sim:multi,seed=5,secs=60): per-record \
         {ref_per_record:>10.0} pkts/s, batch {ref_batch:>10.0} pkts/s \
         ({:+.1}%)",
        (ref_batch - ref_per_record) / ref_per_record * 100.0
    );

    // The pcap image is only needed by the reader-path measurements;
    // drop it before the fan-in sections deal full copies of the trace.
    drop(img);
    let pcap_bytes: u64 = records.iter().map(|r| r.data.len() as u64 + 16).sum::<u64>() + 24;

    // Multi-source fan-in: the same trace dealt to two replay sources
    // and merged back by CaptureMux into the same batched analyzer. On
    // a multi-core box this should meet or beat the single-source
    // pipeline rate (capture overlaps analysis); on a single core the
    // thread hand-off is pure overhead — record the number honestly
    // either way.
    let (mn, multi_rate, multi_allocs) = analyze_multi_source(&records, 2);
    assert_eq!(mn, records.len() as u64, "multi-source lost records");
    eprintln!(
        "[bench_ingest] multi_source_2   pipeline {multi_rate:>10.0} pkts/s  \
         {multi_allocs:.4} fan-in allocs/record (setup amortized)"
    );

    // Distributed merge path: the same deal, but each worker's records
    // travel through the wire-framed fragment protocol before the
    // fan-in — the merge node's ingest cost.
    let (fn_, frag_rate, frag_allocs) = analyze_merge_fragments(&records, 2);
    assert_eq!(fn_, records.len() as u64, "fragment merge lost records");
    eprintln!(
        "[bench_ingest] merge_fragments  pipeline {frag_rate:>10.0} pkts/s  \
         {frag_allocs:.4} decode+fan-in allocs/record (setup amortized)"
    );

    // The per-PR trajectory: prior entries carried forward, this run
    // appended, deltas printed against the previous entry.
    let read_into_rate = results[1].pipeline_pkts_per_sec;
    let entries: Vec<(&str, f64)> = vec![
        ("read_into_pipeline_pkts_per_sec", read_into_rate),
        ("batch_pipeline_pkts_per_sec", batch.pipeline_pkts_per_sec),
        (
            "windowed_pipeline_pkts_per_sec",
            batch.windowed_pipeline_pkts_per_sec,
        ),
        ("multi_source_pipeline_pkts_per_sec", multi_rate),
        ("merge_pipeline_pkts_per_sec", frag_rate),
        ("reference_batch_pipeline_pkts_per_sec", ref_batch),
    ];
    let history = prior_history(&prior_text);
    print_deltas(history.last(), &entries);
    if let Some(path) = &gate_path {
        run_gate(path, &entries);
    }
    let pr = std::env::var("BENCH_PR")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or_else(|| {
            history
                .last()
                .and_then(|h| num_after(h, "", "pr"))
                .map(|v| v as u64 + 1)
                .unwrap_or(8)
        });
    let entry_fields = entries
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v:.1}"))
        .collect::<Vec<_>>()
        .join(", ");
    let new_entry = format!(
        "{{\"pr\": {pr}, \"git_sha\": \"{}\", \"workload\": \"{WORKLOAD}\", \
         \"machine\": \"{}\", \"entries\": {{{entry_fields}}}}}",
        git_short_sha(),
        machine_fingerprint()
    );

    let mut json = String::with_capacity(4096);
    json.push_str("{\n");
    json.push_str("  \"bench\": \"ingest\",\n");
    json.push_str(&format!("  \"workload\": \"{WORKLOAD}\",\n"));
    json.push_str(&format!("  \"records\": {},\n", records.len()));
    json.push_str(&format!("  \"pcap_bytes\": {pcap_bytes},\n"));
    json.push_str("  \"paths\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"reader_pkts_per_sec\": {:.1}, \
             \"reader_allocs_per_record\": {:.6}, \
             \"steady_state_reader_allocs\": {}, \
             \"pipeline_pkts_per_sec\": {:.1}}}{}\n",
            r.name,
            r.reader_pkts_per_sec,
            r.reader_allocs_per_record,
            r.steady_state_reader_allocs,
            r.pipeline_pkts_per_sec,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"batch_pipeline\": {{\"batch_records\": {BATCH}, \
         \"classify_pkts_per_sec\": {:.1}, \"steady_state_classify_allocs\": {}, \
         \"pipeline_pkts_per_sec\": {:.1}, \"windowed_pipeline_pkts_per_sec\": {:.1}, \
         \"windowed_steady_state_allocs_per_record\": {:.6}}},\n",
        batch.classify_pkts_per_sec,
        batch.steady_state_classify_allocs,
        batch.pipeline_pkts_per_sec,
        batch.windowed_pipeline_pkts_per_sec,
        batch.windowed_steady_state_allocs_per_record,
    ));
    json.push_str(&format!(
        "  \"reference\": {{\"workload\": \"sim:multi,seed=5,secs=60\", \
         \"per_record_pkts_per_sec\": {ref_per_record:.1}, \
         \"batch_pkts_per_sec\": {ref_batch:.1}}},\n",
    ));
    json.push_str(&format!(
        "  \"multi_source\": {{\"sources\": 2, \"pipeline_pkts_per_sec\": {:.1}, \
         \"fanin_allocs_per_record\": {:.6}}},\n",
        multi_rate, multi_allocs,
    ));
    json.push_str(&format!(
        "  \"merge_fragments\": {{\"workers\": 2, \"pipeline_pkts_per_sec\": {:.1}, \
         \"fanin_allocs_per_record\": {:.6}}},\n",
        frag_rate, frag_allocs,
    ));
    json.push_str("  \"history\": [\n");
    for h in &history {
        json.push_str(&format!("    {h},\n"));
    }
    json.push_str(&format!("    {new_entry}\n"));
    json.push_str("  ]\n");
    json.push_str("}\n");

    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write json");
    println!("[json] {out_path}");
}
