//! Regenerates Fig. 2: P2P connection establishment via STUN.
use zoom_bench::harness::ExpArgs;
fn main() {
    let args = ExpArgs::parse(ExpArgs::default());
    zoom_bench::figures::fig2(&args);
}
