//! Regenerates Table 4: the metric capability matrix, derived from what
//! the implementation measures on a real (simulated) trace.
use zoom_bench::harness::{run_campus, ExpArgs};
fn main() {
    let args = ExpArgs::parse(ExpArgs {
        minutes: 8,
        ..ExpArgs::default()
    });
    let run = run_campus(&args);
    zoom_bench::tables::table4(&run);
}
