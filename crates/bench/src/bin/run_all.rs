//! Runs every table/figure experiment with one shared campus run where
//! possible. Accepts the common flags (--minutes, --scale, --seed,
//! --background, --out).
use zoom_bench::figures;
use zoom_bench::harness::{run_campus, ExpArgs};
use zoom_bench::tables;

fn section(name: &str) {
    println!("\n{}\n# {name}\n{}", "#".repeat(70), "#".repeat(70));
}

fn main() {
    let args = ExpArgs::parse(ExpArgs::default());
    section("Table 1");
    tables::table1();
    section("Table 5");
    tables::table5();
    section("Table 7 / Appendix B");
    tables::table7();

    section("Campus run (shared by Tables 2/3/4/6 and Figs. 14/15/16)");
    let run = run_campus(&args);
    section("Table 2");
    tables::table2(&run);
    section("Table 3");
    tables::table3(&run);
    section("Table 4");
    tables::table4(&run);
    section("Table 6");
    tables::table6(&run, &args);
    section("Figure 14");
    figures::fig14(&run, &args);
    section("Figure 15");
    figures::fig15(&run, &args);
    section("Figure 16");
    figures::fig16(&run, &args);

    section("Figure 2");
    figures::fig2(&args);
    section("Figures 3-5");
    figures::fig5(&args);
    section("Figure 6");
    figures::fig6(&args);
    section("Figures 8/9");
    figures::fig8(&args);
    section("Figure 10");
    figures::fig10(&args);
    section("Figure 11");
    figures::fig11(&args);
    // The capture experiments carry ~14 background packets per Zoom
    // packet; run them on a shorter, denser window so the Zoom stages
    // see traffic without exploding the packet budget.
    let cap_args = ExpArgs {
        minutes: args.minutes.min(30),
        scale_denom: args.scale_denom.min(4.0),
        background_ratio: if args.background_ratio > 0.0 {
            args.background_ratio
        } else {
            13.6
        },
        ..args.clone()
    };
    section("Figures 13 and 17 (one shared capture run)");
    let capture = figures::capture_experiment(&cap_args);
    figures::fig13_from(&capture);
    figures::fig17_from(&capture, &cap_args);
    println!(
        "\nAll experiments completed; CSV artifacts in {}",
        args.out_dir.display()
    );
}
