//! Regenerates Fig. 10: estimation accuracy (frame rate, latency,
//! jitter) against the simulated Zoom-SDK QoS feed.
use zoom_bench::harness::ExpArgs;
fn main() {
    let args = ExpArgs::parse(ExpArgs::default());
    zoom_bench::figures::fig10(&args);
}
