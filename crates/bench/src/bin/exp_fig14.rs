//! Regenerates Fig. 14: data rate per media type over the campus trace.
use zoom_bench::harness::{run_campus, ExpArgs};
fn main() {
    let args = ExpArgs::parse(ExpArgs::default());
    let run = run_campus(&args);
    zoom_bench::figures::fig14(&run, &args);
}
