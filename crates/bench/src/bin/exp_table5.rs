//! Regenerates Table 5: Tofino hardware resource usage of the capture
//! program, from the resource-accounting model.
fn main() {
    zoom_bench::tables::table5();
}
