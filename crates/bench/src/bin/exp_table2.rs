//! Regenerates Table 2: Zoom media-encapsulation type values and their
//! packet/byte shares over a scaled campus trace.
use zoom_bench::harness::{run_campus, ExpArgs};
fn main() {
    let args = ExpArgs::parse(ExpArgs::default());
    let run = run_campus(&args);
    zoom_bench::tables::table2(&run);
}
