//! Runs the three ablation experiments from DESIGN.md §5: grouping
//! without step 1, packet- vs frame-level jitter, and the P2P register
//! timeout sweep.
use zoom_bench::ablations;
use zoom_bench::harness::ExpArgs;

fn main() {
    let args = ExpArgs::parse(ExpArgs::default());
    ablations::grouping_without_step1(&args);
    println!();
    ablations::jitter_packet_vs_frame(&args);
    println!();
    ablations::p2p_timeout_sweep(&args);
}
