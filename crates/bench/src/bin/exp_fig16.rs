//! Regenerates Fig. 16: (absence of) correlation between jitter and bit
//! rate / frame rate.
use zoom_bench::harness::{run_campus, ExpArgs};
fn main() {
    let args = ExpArgs::parse(ExpArgs::default());
    let run = run_campus(&args);
    zoom_bench::figures::fig16(&run, &args);
}
