//! Regenerates Fig. 17: packet rate of all campus traffic vs filtered
//! Zoom traffic.
use zoom_bench::harness::ExpArgs;
fn main() {
    let args = ExpArgs::parse(ExpArgs {
        minutes: 30,
        scale_denom: 4.0,
        background_ratio: 13.6,
        ..ExpArgs::default()
    });
    zoom_bench::figures::fig17(&args);
}
