//! Regenerates Table 3: RTP payload-type shares over a scaled campus
//! trace.
use zoom_bench::harness::{run_campus, ExpArgs};
fn main() {
    let args = ExpArgs::parse(ExpArgs::default());
    let run = run_campus(&args);
    zoom_bench::tables::table3(&run);
}
