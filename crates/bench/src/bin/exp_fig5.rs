//! Regenerates Figs. 3–5: entropy-based header analysis value series.
use zoom_bench::harness::ExpArgs;
fn main() {
    let args = ExpArgs::parse(ExpArgs::default());
    zoom_bench::figures::fig5(&args);
}
