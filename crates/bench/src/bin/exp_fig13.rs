//! Regenerates Fig. 13: per-stage counters of the capture pipeline on a
//! mixed campus feed.
use zoom_bench::harness::ExpArgs;
fn main() {
    let args = ExpArgs::parse(ExpArgs {
        minutes: 30,
        scale_denom: 4.0,
        background_ratio: 13.6,
        ..ExpArgs::default()
    });
    zoom_bench::figures::fig13(&args);
}
