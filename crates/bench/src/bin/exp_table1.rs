//! Regenerates Table 1: cleartext header fields (with byte-level
//! round-trip verification).
fn main() {
    zoom_bench::tables::table1();
}
