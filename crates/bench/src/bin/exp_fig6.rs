//! Regenerates Fig. 6: aggregation levels within a Zoom meeting.
use zoom_bench::harness::ExpArgs;
fn main() {
    let args = ExpArgs::parse(ExpArgs::default());
    zoom_bench::figures::fig6(&args);
}
