//! Regenerates Table 6: campus capture summary (packets, flows, data,
//! streams) with the paper's values scaled for comparison.
use zoom_bench::harness::{run_campus, ExpArgs};
fn main() {
    let args = ExpArgs::parse(ExpArgs::default());
    let run = run_campus(&args);
    zoom_bench::tables::table6(&run, &args);
}
