//! Regenerates Fig. 15: per-media CDFs of data rate, frame rate, frame
//! size, and frame-level jitter.
use zoom_bench::harness::{run_campus, ExpArgs};
fn main() {
    let args = ExpArgs::parse(ExpArgs::default());
    let run = run_campus(&args);
    zoom_bench::figures::fig15(&run, &args);
}
