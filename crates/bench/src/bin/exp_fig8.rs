//! Regenerates Figs. 8/9: the meeting-grouping heuristic vs ground truth.
use zoom_bench::harness::ExpArgs;
fn main() {
    let args = ExpArgs::parse(ExpArgs {
        minutes: 10,
        ..ExpArgs::default()
    });
    zoom_bench::figures::fig8(&args);
}
