//! # zoom-bench — experiment harness and performance benchmarks
//!
//! One binary per table/figure of the paper (see `src/bin/`), shared
//! helpers here, and Criterion benchmarks of every pipeline component in
//! `benches/`. `EXPERIMENTS.md` at the repository root maps each
//! experiment to its paper counterpart and records measured-vs-paper
//! shapes.

pub mod ablations;
pub mod figures;
pub mod harness;
pub mod tables;
