//! Regenerators for the paper's tables (1–7).
//!
//! Each function prints the table in the paper's layout, annotated with
//! the paper's own numbers for side-by-side comparison, and returns the
//! measured rows for programmatic checks. `EXPERIMENTS.md` records the
//! expected shapes.

use crate::harness::{CampusRun, ExpArgs};
use zoom_capture::resources::{self, ResourceConfig};
use zoom_capture::zoom_nets::Owner;
use zoom_sim::infra::Infrastructure;
use zoom_wire::rtp;
use zoom_wire::zoom::{self, MediaEncap, MediaEncapRepr, MediaType, SfuEncap, SfuEncapRepr};

/// Table 1: select cleartext header fields — print the byte map and
/// verify every field round-trips through the emitters/parsers.
pub fn table1() {
    println!("Table 1: Select Header Fields in Cleartext");
    println!("{:-<72}", "");
    println!("{:<28}{:<12}Comment", "Field Name", "Byte Range");
    println!("Zoom SFU Encapsulation");
    println!(
        "{:<28}{:<12}0x05 => media encapsulation follows",
        "- Type", "0"
    );
    println!("{:<28}{:<12}", "- Sequence #", "1-2");
    println!("{:<28}{:<12}0x00/0x04 - to/from SFU", "- Direction", "7");
    println!("Zoom Media Encapsulation");
    println!("{:<28}{:<12}media type or RTCP", "- Type", "0");
    println!("{:<28}{:<12}", "- Sequence #", "9-10");
    println!("{:<28}{:<12}", "- Timestamp", "11-14");
    println!(
        "{:<28}{:<12}only in video packets",
        "- Frame seq. #", "21-22"
    );
    println!(
        "{:<28}{:<12}only in video packets",
        "- # Packets/frame", "23"
    );

    // Round-trip verification at the byte level.
    let sfu = SfuEncapRepr {
        encap_type: zoom::SFU_TYPE_MEDIA,
        sequence: 0xBEEF,
        direction: zoom::DIR_FROM_SFU,
    };
    let mut buf = [0u8; zoom::SFU_ENCAP_LEN];
    sfu.emit(&mut SfuEncap::new_unchecked(&mut buf[..]));
    assert_eq!(buf[0], 0x05);
    assert_eq!(&buf[1..3], &[0xBE, 0xEF]);
    assert_eq!(buf[7], 0x04);

    let media = MediaEncapRepr {
        media_type: MediaType::Video,
        sequence: 0x1234,
        timestamp: 0xCAFE_F00D,
        frame_sequence: Some(0x0042),
        packets_in_frame: Some(7),
    };
    let mut mbuf = vec![0u8; media.header_len()];
    media.emit(&mut mbuf);
    assert_eq!(mbuf[0], 16);
    assert_eq!(&mbuf[9..11], &[0x12, 0x34]);
    assert_eq!(&mbuf[11..15], &[0xCA, 0xFE, 0xF0, 0x0D]);
    assert_eq!(&mbuf[21..23], &[0x00, 0x42]);
    assert_eq!(mbuf[23], 7);
    let parsed = MediaEncapRepr::parse(&MediaEncap::new_unchecked(&mbuf[..])).unwrap();
    assert_eq!(parsed, media);
    println!("\n[verified] every field emits to and parses from the documented byte range");
}

/// Table 2: media-encapsulation type values with their offsets and
/// packet/byte shares, against the paper's trace percentages.
pub fn table2(run: &CampusRun) {
    // (type value, paper % pkts, paper % bytes, paper offset)
    let paper: &[(u8, f64, f64, usize)] = &[
        (16, 62.77, 80.67, 24),
        (15, 25.60, 8.61, 19),
        (13, 4.25, 3.72, 27),
        (34, 0.89, 0.09, 16),
        (33, 0.27, 0.02, 16),
    ];
    println!("Table 2: Zoom Media Encapsulation Type Values");
    println!(
        "{:<6}{:<28}{:>8}{:>12}{:>12}{:>14}{:>14}",
        "Value", "Packet Type", "Offset", "% Pkts", "% Bytes", "(paper %P)", "(paper %B)"
    );
    let classifier = run.analyzer.classifier();
    let mut sum_p = 0.0;
    let mut sum_b = 0.0;
    for &(value, pp, pb, off) in paper {
        let mt = MediaType::from_byte(value);
        let rows = classifier.table2();
        let row = rows.iter().find(|r| r.label == value.to_string());
        let (mp, mb) = row
            .map(|r| (r.packets_pct, r.bytes_pct))
            .unwrap_or((0.0, 0.0));
        sum_p += mp;
        sum_b += mb;
        println!(
            "{value:<6}{:<28}{off:>8}{mp:>12.2}{mb:>12.2}{pp:>14.2}{pb:>14.2}",
            mt.label()
        );
    }
    let (dp, db) = classifier.decoded_fraction();
    println!(
        "{:<42}{sum_p:>12.2}{sum_b:>12.2}{:>14.2}{:>14.2}",
        "Sum:", 89.78, 93.11
    );
    println!(
        "\ndecoded fraction: {:.1} % pkts / {:.1} % bytes (paper: 90.0 % / 94.5 %)",
        dp * 100.0,
        db * 100.0
    );
}

/// Table 3: RTP payload types per media type against the paper's shares.
pub fn table3(run: &CampusRun) {
    let paper: &[(MediaType, u8, &str, f64, f64)] = &[
        (MediaType::Video, 98, "main stream", 62.00, 79.27),
        (MediaType::Audio, 112, "speaking mode", 22.04, 7.92),
        (MediaType::Video, 110, "FEC", 6.14, 7.47),
        (MediaType::ScreenShare, 99, "main stream", 3.59, 3.72),
        (MediaType::Audio, 113, "mode unknown", 2.96, 0.89),
        (MediaType::Audio, 99, "silent mode", 2.60, 0.56),
        (MediaType::Audio, 110, "FEC", 0.62, 0.13),
    ];
    println!("Table 3: RTP Payload Type Values in Trace");
    println!(
        "{:<20}{:<8}{:<16}{:>10}{:>10}{:>12}{:>12}",
        "Media Type", "RTP PT", "Description", "% Pkts", "% Bytes", "(paper %P)", "(paper %B)"
    );
    let classifier = run.analyzer.classifier();
    for &(mt, pt, desc, pp, pb) in paper {
        let (mp, mb) = classifier.share(mt, pt);
        println!(
            "{:<20}{pt:<8}{desc:<16}{mp:>10.2}{mb:>10.2}{pp:>12.2}{pb:>12.2}",
            format!("{} ({})", media_short(mt), mt.to_byte()),
        );
    }
}

fn media_short(mt: MediaType) -> &'static str {
    match mt {
        MediaType::Video => "Video",
        MediaType::Audio => "Audio",
        MediaType::ScreenShare => "Screen Share",
        _ => "Other",
    }
}

/// Table 4: the metric capability matrix — derived from what the
/// implementation actually provides, not hard-coded claims.
pub fn table4(run: &CampusRun) {
    println!("Table 4: Key Zoom Performance and Quality Metrics");
    println!(
        "{:<26}{:<18}{:<20}Validated here",
        "Metric", "Requires Headers", "In Zoom Client"
    );
    let a = &run.analyzer;
    let video = a.media_samples(MediaType::Video);
    let rows: Vec<(&str, bool, bool, bool)> = vec![
        (
            "Overall Bit Rate (§5.1)",
            false,
            false,
            !a.flows().is_empty(),
        ),
        (
            "Media Bit Rate (§5.1)",
            true,
            false,
            !video.bitrate_mbps.is_empty(),
        ),
        ("Frame Rate (§5.2)", true, true, !video.fps.is_empty()),
        (
            "Frame Size (§5.2)",
            true,
            false,
            !video.frame_size.is_empty(),
        ),
        (
            "Latency (§5.3)",
            true,
            true,
            !a.rtp_rtt_samples().is_empty() || !a.tcp_rtt_samples().is_empty(),
        ),
        ("Jitter (§5.4)", true, true, !video.jitter_ms.is_empty()),
    ];
    for (name, hdrs, client, measured) in rows {
        println!(
            "{name:<26}{:<18}{:<20}{}",
            if hdrs { "yes" } else { "-" },
            if client { "yes" } else { "-" },
            if measured {
                "measured in this run"
            } else {
                "NOT MEASURED"
            }
        );
    }
}

/// Table 5: Tofino resource usage of the capture program, from the
/// resource-accounting model.
pub fn table5() {
    let paper: &[(&str, u32, f64, f64, f64, f64)] = &[
        ("Zoom IP Match", 2, 0.7, 0.1, 1.3, 0.0),
        ("P2P Detection", 7, 1.0, 10.9, 3.4, 16.7),
        ("Anonymization", 11, 1.4, 1.1, 5.2, 8.3),
    ];
    let rows = resources::table5(&ResourceConfig::default());
    println!("Table 5: Hardware Resource Usage of the Tofino Capture Program");
    println!(
        "{:<18}{:>8}{:>10}{:>10}{:>14}{:>12}   (paper: stages/TCAM/SRAM/instr/hash)",
        "Component", "Stages", "TCAM %", "SRAM %", "Instr %", "Hash %"
    );
    for (row, &(pname, pst, ptc, psr, pin, pha)) in rows.iter().zip(paper) {
        assert_eq!(row.name, pname);
        println!(
            "{:<18}{:>8}{:>10.1}{:>10.1}{:>14.1}{:>12.1}   ({pst}/{ptc}/{psr}/{pin}/{pha})",
            row.name,
            row.stages,
            row.tcam_pct,
            row.sram_pct,
            row.instructions_pct,
            row.hash_units_pct
        );
    }
    println!(
        "\nlightweight (paper's claim: <15 % of most resources): {}",
        resources::is_lightweight(&rows)
    );
}

/// Table 6: capture summary of the campus trace, with the paper's values
/// scaled by the run's load factor for comparison.
pub fn table6(run: &CampusRun, args: &ExpArgs) {
    let analyzer_summary = run.analyzer.summary();
    let scale = args.scale() * (args.minutes as f64 / (12.0 * 60.0));
    println!("Table 6: Capture Summary");
    println!("{:<22}{:>16}{:>22}", "", "measured", "paper (scaled)");
    println!(
        "{:<22}{:>16}{:>22.0}",
        "Zoom packets",
        analyzer_summary.zoom_packets,
        1_846e6 * scale
    );
    println!(
        "{:<22}{:>16}{:>22.0}",
        "Zoom flows",
        analyzer_summary.zoom_flows,
        583_777.0 * scale
    );
    println!(
        "{:<22}{:>16.1}{:>22.1}",
        "Zoom data (GB)",
        analyzer_summary.zoom_bytes as f64 / 1e9,
        1_203.0 * scale
    );
    println!(
        "{:<22}{:>16}{:>22.0}",
        "RTP media streams",
        analyzer_summary.rtp_streams,
        59_020.0 * scale
    );
    println!("{:<22}{:>16}", "Meetings", analyzer_summary.meetings);
    let mean_rate = analyzer_summary.zoom_packets as f64
        / (analyzer_summary.duration_nanos as f64 / 1e9).max(1.0);
    println!(
        "{:<22}{:>16.0}{:>22.0}",
        "mean Zoom pkt/s",
        mean_rate,
        42_733.0 * args.scale()
    );
}

/// Table 7: Zoom server locations from the synthetic infrastructure —
/// reverse-DNS + geo rollup (Appendix B).
pub fn table7() {
    let infra = Infrastructure::generate();
    let paper: &[(&str, u32, u32)] = &[
        ("United States (all)", 3_710, 167),
        ("Netherlands (Amsterdam)", 419, 21),
        ("China (Hongkong)", 274, 8),
        ("Germany (Frankfurt)", 214, 2),
        ("Australia", 210, 20),
        ("India", 196, 10),
        ("Japan (Tokyo)", 128, 2),
        ("Brasil (Sao Paulo)", 124, 6),
        ("Canada (Toronto)", 93, 12),
        ("China (Mainland)", 84, 8),
    ];
    println!("Table 7: Locations of Zoom Servers");
    println!("{:<44}{:>8}{:>8}", "Location", "# MMRs", "# ZCs");
    let rows = infra.table7();
    let mut total_mmr = 0;
    let mut total_zc = 0;
    for (loc, mmrs, zcs) in &rows {
        println!("{loc:<44}{mmrs:>8}{zcs:>8}");
        total_mmr += mmrs;
        total_zc += zcs;
    }
    println!("{:<44}{total_mmr:>8}{total_zc:>8}", "Total");
    println!("\n(paper rollup for reference)");
    for (loc, m, z) in paper {
        println!("{loc:<44}{m:>8}{z:>8}");
    }
    println!("{:<44}{:>8}{:>8}", "Total", 5_452, 256);

    println!("\nAppendix B address breakdown:");
    for (owner, addrs) in infra.ip_list.owner_breakdown() {
        let pct = 100.0 * addrs as f64 / infra.ip_list.total_addresses() as f64;
        let paper_pct = match owner {
            Owner::ZoomAs => 36.7,
            Owner::Aws => 39.6,
            Owner::OracleCloud => 23.2,
            Owner::Other => 0.5,
        };
        println!(
            "  {:<24}{addrs:>10} addresses ({pct:>5.1} %, paper {paper_pct:.1} %)",
            owner.label()
        );
    }
    println!(
        "  {} networks, {} addresses (paper: 117 networks, 427,168 addresses)",
        infra.ip_list.len(),
        infra.ip_list.total_addresses()
    );

    // Exercise the name parser on a sample, as the reverse-DNS study did.
    let sample = &infra.servers[0];
    let (code, id, ty) =
        zoom_sim::infra::parse_server_name(&sample.name).expect("server names parse");
    println!(
        "\nname-scheme check: {} -> site '{}', id {}, type {:?}",
        sample.name, code, id, ty
    );
}

/// Helper: checked RTP parse used by table1's verification.
#[allow(dead_code)]
fn rtp_roundtrip_check() {
    let repr = rtp::Repr {
        marker: true,
        payload_type: 98,
        sequence_number: 1,
        timestamp: 2,
        ssrc: 3,
        csrc_count: 0,
        has_extension: false,
    };
    let mut buf = [0u8; 12];
    repr.emit(&mut rtp::Packet::new_unchecked(&mut buf[..]));
    assert!(rtp::Packet::new_checked(&buf[..]).is_ok());
}
