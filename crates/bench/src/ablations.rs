//! Ablation experiments for the design choices `DESIGN.md` calls out:
//! what breaks when a piece of the methodology is removed.

use crate::harness::ExpArgs;
use zoom_analysis::meeting::GroupingConfig;
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_capture::cidr::prefix_set;
use zoom_capture::pipeline::{CapturePipeline, PipelineConfig, Verdict};
use zoom_capture::zoom_nets::{Owner, ZoomIpList, ZoomNetwork};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::{Nanos, MS, SEC};
use zoom_wire::pcap::LinkType;
use zoom_wire::zoom::MediaType;

/// Ablation 1 — grouping without step 1 (duplicate-stream detection).
///
/// Step 1 gives stream copies a shared unique id: it is what connects one
/// campus participant's uplink with the copy forwarded to *another* campus
/// participant (they share no client IP), and what makes Method-1 RTT
/// matching groups exist at all. Without it, a meeting with two campus
/// participants splits into one meeting per client, and RTT estimation
/// loses every matching group.
pub fn grouping_without_step1(args: &ExpArgs) {
    let run = |grouping: GroupingConfig| {
        let mut cfg = scenario::validation_experiment(args.seed);
        for p in &mut cfg.participants {
            p.leave_at = 90 * SEC;
        }
        let sim = MeetingSim::new(cfg);
        let mut analyzer = Analyzer::new(
            AnalyzerConfig::builder()
                .grouping(grouping)
                .build()
                .expect("valid config"),
        );
        for record in sim {
            analyzer.process_packet(record.ts_nanos, &record.data, LinkType::Ethernet);
        }
        let groups = analyzer.duplicate_stream_groups();
        let multi = groups.values().filter(|g| g.len() >= 2).count();
        (analyzer.summary().meetings, multi)
    };
    let (meetings_full, dup_groups_full) = run(GroupingConfig::default());
    let (meetings_ablate, dup_groups_ablate) = run(GroupingConfig::without_step1());
    println!("Ablation: grouping heuristic step 1 (duplicate-stream detection)");
    println!("  with step 1:    {meetings_full} meeting(s), {dup_groups_full} duplicate group(s)");
    println!(
        "  without step 1: {meetings_ablate} meeting(s), {dup_groups_ablate} duplicate group(s)"
    );
    assert_eq!(
        meetings_full, 1,
        "full heuristic keeps the meeting together"
    );
    assert!(
        meetings_ablate > meetings_full,
        "removing step 1 must split the two campus participants apart"
    );
    assert_eq!(
        dup_groups_ablate, 0,
        "no RTT matching groups without step 1"
    );
}

/// Ablation 2 — packet-level vs frame-level jitter (§5.4's argument).
///
/// RTP video is bursty: frames are packet bursts followed by gaps, and the
/// packetization interval varies. A naive packet-interarrival jitter
/// estimator reads that structure as network jitter even on a *calm*
/// network; the paper's frame-level, timestamp-corrected estimator does
/// not.
pub fn jitter_packet_vs_frame(args: &ExpArgs) {
    let mut cfg = scenario::validation_experiment(args.seed);
    // Calm network: strip the congestion bursts.
    for p in &mut cfg.participants {
        p.congestion.clear();
        p.leave_at = 120 * SEC;
    }
    let sim = MeetingSim::new(cfg);
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    // Naive estimator state over the downlink video packets.
    let mut naive_j = 0.0f64;
    let mut last_arrival: Option<u64> = None;
    let mut last_gap: Option<i64> = None;
    for record in sim {
        let Ok(d) = zoom_wire::dissect::dissect(
            record.ts_nanos,
            &record.data,
            LinkType::Ethernet,
            zoom_wire::dissect::P2pProbe::Off,
        ) else {
            continue;
        };
        if let Some(z) = d.zoom() {
            if z.media.media_type == MediaType::Video
                && d.five_tuple.dst_ip.to_string() == "10.8.3.3"
            {
                if let Some(prev) = last_arrival {
                    let gap = record.ts_nanos as i64 - prev as i64;
                    if let Some(pg) = last_gap {
                        let dd = (gap - pg).unsigned_abs() as f64;
                        naive_j += (dd - naive_j) / 16.0;
                    }
                    last_gap = Some(gap);
                }
                last_arrival = Some(record.ts_nanos);
            }
        }
        analyzer.process_dissection(&d);
    }
    let stream = analyzer
        .streams()
        .of_type(MediaType::Video)
        .find(|s| s.key.flow.dst_ip.to_string() == "10.8.3.3" && s.key.flow.src_port == 8801)
        .expect("downlink video stream");
    let frame_j_ms = stream.frame_jitter.jitter_ms();
    let naive_j_ms = naive_j / 1e6;
    println!("Ablation: jitter estimator on a CALM network");
    println!("  frame-level (paper §5.4): {frame_j_ms:.2} ms");
    println!("  naive packet-level:       {naive_j_ms:.2} ms");
    assert!(
        naive_j_ms > 3.0 * frame_j_ms.max(0.3),
        "the naive estimator must mistake frame burstiness for jitter \
         (naive {naive_j_ms:.2} vs frame {frame_j_ms:.2})"
    );
}

/// Ablation 3 — STUN register timeout sweep (§4.1's configurable timeout).
///
/// The media flow starts ~2 s after the STUN exchange in the switchover
/// scenario; register timeouts below that gap miss the P2P flow entirely,
/// anything above captures it fully (hits refresh entries, so even long
/// calls stay matched).
pub fn p2p_timeout_sweep(args: &ExpArgs) {
    let timeouts: &[Nanos] = &[500 * MS, 1_500 * MS, 2_500 * MS, 10 * SEC, 120 * SEC];
    println!("Ablation: P2P detection register timeout");
    let zoom_list = ZoomIpList::from_networks(vec![ZoomNetwork {
        cidr: "170.114.0.0/16".parse().unwrap(),
        owner: Owner::ZoomAs,
    }]);
    let mut rates = Vec::new();
    for &timeout in timeouts {
        let sim = MeetingSim::new(scenario::p2p_meeting(args.seed, 120 * SEC));
        let mut pipeline = CapturePipeline::new(PipelineConfig {
            campus_nets: prefix_set(&[scenario::CAMPUS_NET]),
            excluded_nets: Default::default(),
            zoom_list: zoom_list.clone(),
            stun_timeout_nanos: timeout,
            anonymizer: None,
            family: zoom_wire::family::FamilySelect::Only(zoom_wire::family::FamilyId::Zoom),
        });
        let mut p2p = 0u64;
        let mut missed_udp = 0u64;
        for record in sim {
            match pipeline.classify(record.ts_nanos, &record.data, LinkType::Ethernet) {
                Verdict::ZoomP2p => p2p += 1,
                Verdict::NotZoom => missed_udp += 1,
                _ => {}
            }
        }
        let rate = p2p as f64 / (p2p + missed_udp).max(1) as f64;
        println!(
            "  timeout {:>7.1} s: {p2p:>7} P2P captured, {missed_udp:>7} missed ({:.0} %)",
            timeout as f64 / 1e9,
            rate * 100.0
        );
        rates.push(rate);
    }
    assert!(rates[0] < 0.05, "sub-gap timeout must miss the flow");
    assert!(
        rates.last().unwrap() > &0.99,
        "the 120 s default must capture everything"
    );
    // Monotone non-decreasing in the timeout.
    for w in rates.windows(2) {
        assert!(w[1] >= w[0] - 1e-9);
    }
}

#[cfg(test)]
mod tests {
    // The ablations are exercised by `exp_ablations` and asserted inline;
    // a smoke test keeps them compiling under `cargo test`.
    #[test]
    fn ablation_module_links() {
        let _ = super::grouping_without_step1 as fn(&crate::harness::ExpArgs);
    }
}
