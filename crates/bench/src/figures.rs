//! Regenerators for the paper's figures (2, 4/5, 6, 8, 10, 11, 13–17).
//!
//! Figures are emitted as CSV series under the `--out` directory (ready
//! for plotting) plus a printed summary of the *shape criteria* each
//! figure must satisfy (crossovers, clusters, correlations); see
//! `EXPERIMENTS.md`.

use crate::harness::{write_csv, CampusRun, ExpArgs};
use std::collections::HashMap;
use zoom_analysis::entropy::{extract_series, scan_flow, FieldClass};
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::stats::{pearson, Samples, TimeBins};
use zoom_capture::cidr::prefix_set;
use zoom_capture::pipeline::{CapturePipeline, PipelineConfig, Verdict};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::qos::QosSample;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::dissect::{dissect, P2pProbe, Transport};
use zoom_wire::flow::FiveTuple;
use zoom_wire::pcap::LinkType;
use zoom_wire::zoom::MediaType;

/// Fig. 2: P2P connection establishment — the STUN exchange followed by
/// the media flow on the same client port.
pub fn fig2(args: &ExpArgs) {
    let sim = MeetingSim::new(scenario::p2p_meeting(args.seed, 60 * SEC));
    let mut events: Vec<(u64, String)> = Vec::new();
    let mut stun_port = None;
    let mut first_p2p: Option<(u64, u16)> = None;
    for record in sim {
        let Ok(d) = dissect(
            record.ts_nanos,
            &record.data,
            LinkType::Ethernet,
            P2pProbe::Auto,
        ) else {
            continue;
        };
        if d.is_stun() {
            let port = if d.five_tuple.dst_port == 3478 {
                d.five_tuple.src_port
            } else {
                d.five_tuple.dst_port
            };
            stun_port.get_or_insert(port);
            events.push((d.ts_nanos, format!("STUN exchange, campus port {port}")));
        }
        if let zoom_wire::dissect::App::Zoom(zoom_wire::zoom::Framing::P2p, _) = d.app {
            if first_p2p.is_none() {
                let port = if d.five_tuple.src_port == 8801 || d.five_tuple.dst_port == 8801 {
                    0
                } else if d.five_tuple.src_ip.to_string().starts_with("10.8") {
                    d.five_tuple.src_port
                } else {
                    d.five_tuple.dst_port
                };
                first_p2p = Some((d.ts_nanos, port));
                events.push((
                    d.ts_nanos,
                    format!("first P2P media packet, campus port {port}"),
                ));
            }
        }
    }
    println!("Fig. 2: P2P connection establishment");
    for (t, e) in &events {
        println!("  {:>7.3} s  {}", *t as f64 / 1e9, e);
    }
    let stun_port = stun_port.expect("STUN observed");
    let (t_p2p, p2p_port) = first_p2p.expect("P2P media observed");
    assert_eq!(
        stun_port, p2p_port,
        "the STUN client port must equal the later P2P media port"
    );
    println!(
        "\nOK: STUN port {stun_port} == P2P media port {p2p_port}; media followed {:.1} s later",
        t_p2p as f64 / 1e9
    );
    write_csv(
        args,
        "fig2_events.csv",
        "t_seconds,event",
        events
            .iter()
            .map(|(t, e)| format!("{:.4},{e}", *t as f64 / 1e9)),
    );
}

/// Figs. 3–5: entropy-based header analysis value series. Emits the
/// 1/2/4-byte series of the busiest flow (sampled) with inferred classes.
pub fn fig5(args: &ExpArgs) {
    let sim = MeetingSim::new(scenario::validation_experiment(args.seed));
    let mut flows: HashMap<FiveTuple, Vec<(u64, Vec<u8>)>> = HashMap::new();
    for record in sim {
        let Ok(d) = dissect(
            record.ts_nanos,
            &record.data,
            LinkType::Ethernet,
            P2pProbe::Off,
        ) else {
            continue;
        };
        if matches!(d.transport, Transport::Udp { .. }) {
            flows
                .entry(d.five_tuple)
                .or_default()
                .push((d.ts_nanos, d.payload.to_vec()));
        }
    }
    let (flow, packets) = flows
        .into_iter()
        .max_by_key(|(_, v)| v.len())
        .expect("flows captured");
    println!(
        "Fig. 5: field series of flow {flow} ({} packets)",
        packets.len()
    );

    // The representative fields of Fig. 5a–c, at our reconstructed
    // offsets (server framing):
    //  - 1-byte: media-type byte (8) and RTP PT byte (33 = RTP byte 1).
    //  - 2-byte: frame sequence (29) and RTP sequence (34).
    //  - 4-byte: RTP timestamp (36) and encrypted payload (60).
    let picks: &[(&str, usize, usize)] = &[
        ("media_type", 8, 1),
        ("rtp_pt", 33, 1),
        ("frame_seq", 29, 2),
        ("rtp_seq", 34, 2),
        ("rtp_ts", 36, 4),
        ("encrypted", 60, 4),
    ];
    let mut rows = Vec::new();
    for &(name, offset, width) in picks {
        let series = extract_series(
            packets.iter().map(|(t, p)| (*t, p.as_slice())),
            offset,
            width,
        );
        let class = series.classify();
        println!(
            "  {name:<12} offset {offset:>3} width {width}: {class:?} ({} values)",
            series.values.len()
        );
        // Sample ≤ 250 points per series, like the paper's plots.
        let step = (series.values.len() / 250).max(1);
        for (t, v) in series.values.iter().step_by(step) {
            rows.push(format!(
                "{name},{offset},{width},{:.4},{v}",
                *t as f64 / 1e9
            ));
        }
    }
    write_csv(
        args,
        "fig5_series.csv",
        "field,offset,width,t_seconds,value",
        rows,
    );

    // The automated Fig. 3/4 classification table.
    let scan = scan_flow(&packets, 44);
    let mut confident = 0;
    for (_, _, class, _) in &scan {
        if *class != FieldClass::Mixed {
            confident += 1;
        }
    }
    println!(
        "  scan: {confident}/{} (offset,width) positions confidently classified",
        scan.len()
    );
}

/// Fig. 6: the aggregation hierarchy of one meeting.
pub fn fig6(args: &ExpArgs) {
    let sim = MeetingSim::new(scenario::multi_party(args.seed, 60 * SEC));
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    for record in sim {
        analyzer.process_packet(record.ts_nanos, &record.data, LinkType::Ethernet);
    }
    println!("Fig. 6: aggregation levels within a Zoom meeting");
    for meeting in analyzer.meetings() {
        println!(
            "meeting {} — {} visible participants",
            meeting.id, meeting.participant_estimate
        );
        for key in &meeting.streams {
            let s = analyzer.stream(key).expect("stream exists");
            println!(
                "  stream ssrc=0x{:02x} [{}] {}",
                key.ssrc,
                s.media_type.label(),
                key.flow
            );
            for sub in s.substreams.values() {
                println!(
                    "    sub-stream PT {:>3} ({:<14}) packets={}",
                    sub.payload_type,
                    format!("{:?}", sub.kind),
                    sub.packets
                );
            }
            if let Some(frames) = &s.frames {
                println!("    frames: {}", frames.frames().len());
            }
        }
    }
    let summary = analyzer.summary();
    assert_eq!(summary.meetings, 1);
}

/// Fig. 8/9: grouping heuristic on a small campus, including its
/// limitations (passive participants, NAT merges).
pub fn fig8(args: &ExpArgs) {
    let (scenario_obj, _infra) =
        scenario::campus_study(args.seed, args.duration(), args.scale(), 0.0);
    let truth: Vec<_> = scenario_obj.truth.clone();
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    for record in scenario_obj.into_stream() {
        analyzer.process_packet(record.ts_nanos, &record.data, LinkType::Ethernet);
    }
    let meetings = analyzer.meetings();
    println!("Fig. 8: stream grouping — truth vs heuristic");
    println!("  true meetings:      {}", truth.len());
    println!("  estimated meetings: {}", meetings.len());
    let true_active: usize = truth.iter().map(|t| t.active_participants).sum();
    let est_participants: usize = meetings.iter().map(|m| m.participant_estimate).sum();
    println!("  true active participants: {true_active}");
    println!("  estimated (visible) participants: {est_participants}");
    println!("  (estimates are bounded above by truth: passive and");
    println!("   off-campus-only participants are invisible — Fig. 9)");
    write_csv(
        args,
        "fig8_meetings.csv",
        "meeting_id,streams,participant_estimate",
        meetings
            .iter()
            .map(|m| format!("{},{},{}", m.id, m.streams.len(), m.participant_estimate)),
    );
}

/// Fig. 10: estimation accuracy against the simulated SDK feed — frame
/// rate (a), latency (b), frame-level jitter (c) over a 5.5-minute
/// validation run with two congestion bursts.
pub fn fig10(args: &ExpArgs) {
    let mut sim = MeetingSim::new(scenario::validation_experiment(args.seed));
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    for record in &mut sim {
        analyzer.process_packet(record.ts_nanos, &record.data, LinkType::Ethernet);
    }
    let gt = sim.ground_truth();
    let sdk: &[QosSample] = &gt[0];

    // The downlink video stream toward the SDK client.
    let stream = analyzer
        .streams()
        .of_type(MediaType::Video)
        .find(|s| s.key.flow.dst_ip.to_string() == "10.8.3.3" && s.key.flow.src_port == 8801)
        .expect("downlink video stream");

    // (a) frame rate per second: estimate vs feed.
    let mut est_fps: HashMap<u64, f64> = HashMap::new();
    if let Some(frames) = &stream.frames {
        for f in frames.frames() {
            *est_fps.entry(f.completed_at / SEC).or_default() += 1.0;
        }
    }
    // (b) latency: per-second mean of RTP-RTT samples.
    let mut rtt_by_sec: HashMap<u64, (f64, u32)> = HashMap::new();
    for s in analyzer.rtp_rtt_samples() {
        let e = rtt_by_sec.entry(s.at / SEC).or_default();
        e.0 += s.rtt_ms();
        e.1 += 1;
    }
    // (c) jitter: estimator samples per second.
    let jitter_by_sec: HashMap<u64, f64> = stream
        .frame_jitter
        .samples()
        .iter()
        .map(|&(t, j)| (t / SEC, j))
        .collect();

    let rows = sdk.iter().map(|s| {
        let sec = s.at / SEC;
        let fps = est_fps.get(&sec).copied().unwrap_or(0.0);
        let rtt = rtt_by_sec
            .get(&sec)
            .map(|(sum, n)| sum / f64::from(*n))
            .unwrap_or(f64::NAN);
        let jit = jitter_by_sec.get(&sec).copied().unwrap_or(f64::NAN);
        format!(
            "{sec},{fps:.1},{:.1},{rtt:.2},{:.2},{jit:.3},{:.3}",
            s.true_fps, s.reported_latency_ms, s.reported_jitter_ms
        )
    });
    write_csv(
        args,
        "fig10_series.csv",
        "t_seconds,est_fps,zoom_fps,est_latency_ms,zoom_latency_ms,est_jitter_ms,zoom_jitter_ms",
        rows,
    );

    // Shape summary.
    let mean_err: f64 = {
        let diffs: Vec<f64> = sdk
            .iter()
            .filter_map(|s| est_fps.get(&(s.at / SEC)).map(|e| (e - s.true_fps).abs()))
            .collect();
        diffs.iter().sum::<f64>() / diffs.len().max(1) as f64
    };
    println!("Fig. 10 validation summary:");
    println!("  (a) mean |fps estimate − feed| = {mean_err:.2} fps");
    println!(
        "  (b) rtt samples: {} (feed: {} @1 Hz, latency refresh 5 s)",
        analyzer.rtp_rtt_samples().len(),
        sdk.len()
    );
    let max_est_jitter = stream
        .frame_jitter
        .samples()
        .iter()
        .map(|&(_, j)| j)
        .fold(0.0f64, f64::max);
    let max_zoom_jitter = sdk
        .iter()
        .map(|s| s.reported_jitter_ms)
        .fold(0.0f64, f64::max);
    println!(
        "  (c) max jitter: estimate {max_est_jitter:.1} ms vs Zoom-reported {max_zoom_jitter:.1} ms \
         (the paper's mismatch, reproduced)"
    );
}

/// Fig. 11: the two latency methods side by side.
pub fn fig11(args: &ExpArgs) {
    let sim = MeetingSim::new(scenario::validation_experiment(args.seed));
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    for record in sim {
        analyzer.process_packet(record.ts_nanos, &record.data, LinkType::Ethernet);
    }
    let rtp = analyzer.rtp_rtt_samples();
    let server: std::net::IpAddr = "170.114.1.10".parse().unwrap();
    let tcp_server = analyzer.tcp_rtt().samples_to(server);
    let tcp_clients: Vec<_> = analyzer
        .tcp_rtt_samples()
        .iter()
        .filter(|s| s.to != server)
        .copied()
        .collect();
    let mean = |v: &[zoom_analysis::metrics::latency::RttSample]| {
        v.iter().map(|s| s.rtt_ms()).sum::<f64>() / v.len().max(1) as f64
    };
    println!("Fig. 11: latency measurement methods");
    println!(
        "  (1) RTP stream copies:   {:>6} samples, mean RTT to SFU {:.1} ms",
        rtp.len(),
        mean(rtp)
    );
    println!(
        "  (2) TCP to server:       {:>6} samples, mean {:.1} ms",
        tcp_server.len(),
        mean(&tcp_server)
    );
    println!(
        "      TCP to client:       {:>6} samples, mean {:.1} ms",
        tcp_clients.len(),
        mean(&tcp_clients)
    );
    println!(
        "  RTP method yields {}x the probe density of the TCP method",
        rtp.len() / tcp_server.len().max(1)
    );
    write_csv(
        args,
        "fig11_samples.csv",
        "method,t_seconds,rtt_ms,responder",
        rtp.iter()
            .map(|s| format!("rtp,{:.3},{:.3},{}", s.at as f64 / 1e9, s.rtt_ms(), s.to))
            .chain(
                analyzer
                    .tcp_rtt_samples()
                    .iter()
                    .map(|s| format!("tcp,{:.3},{:.3},{}", s.at as f64 / 1e9, s.rtt_ms(), s.to)),
            ),
    );
}

/// The capture-pipeline experiment behind Figs. 13 and 17: a mixed campus
/// feed filtered in the data plane, with per-minute packet rates.
pub struct CaptureExperiment {
    pub counters: zoom_capture::pipeline::StageCounters,
    pub tracker: zoom_capture::stun_tracker::TrackerStats,
    pub all_rate: TimeBins,
    pub zoom_rate: TimeBins,
}

/// Run it (requires `--background` > 0 to be meaningful).
pub fn capture_experiment(args: &ExpArgs) -> CaptureExperiment {
    let background = if args.background_ratio > 0.0 {
        args.background_ratio
    } else {
        13.6 // the paper's all-traffic : Zoom ratio
    };
    // Start at mid-morning peak so even a short window carries meetings.
    let infra = zoom_sim::infra::Infrastructure::generate();
    let scenario_obj = zoom_sim::campus::CampusScenario::generate(
        zoom_sim::campus::CampusConfig {
            duration: args.duration(),
            scale: args.scale(),
            start_hour: 10.0,
            background_ratio: background,
            seed: args.seed,
            ..Default::default()
        },
        &infra,
    );
    let mut capture = CapturePipeline::new(PipelineConfig {
        campus_nets: prefix_set(&[scenario::CAMPUS_NET]),
        excluded_nets: Default::default(),
        zoom_list: infra.ip_list.clone(),
        stun_timeout_nanos: 120 * SEC,
        anonymizer: None,
        family: zoom_wire::family::FamilySelect::Only(zoom_wire::family::FamilyId::Zoom),
    });
    let minute = 60 * SEC;
    let mut all_rate = TimeBins::new(minute, args.duration());
    let mut zoom_rate = TimeBins::new(minute, args.duration());
    for record in scenario_obj.into_stream() {
        let verdict = capture.classify(record.ts_nanos, &record.data, LinkType::Ethernet);
        all_rate.add(record.ts_nanos, 1.0);
        if verdict.passes() {
            zoom_rate.add(record.ts_nanos, 1.0);
        }
        // Exercise the anonymizer path on a sample.
        let _ = verdict == Verdict::ZoomServer;
    }
    CaptureExperiment {
        counters: capture.counters(),
        tracker: capture.tracker_stats(),
        all_rate,
        zoom_rate,
    }
}

/// Fig. 13: per-stage match counts of the capture pipeline.
pub fn fig13(args: &ExpArgs) {
    fig13_from(&capture_experiment(args));
}

/// Fig. 13 reporting over an existing capture run (lets `run_all` share
/// one run between Figs. 13 and 17).
pub fn fig13_from(exp: &CaptureExperiment) {
    let c = exp.counters;
    println!("Fig. 13: Zoom packet capture pipeline (per-stage counts)");
    println!("  packets in:           {}", c.total);
    println!("  excluded subnets:     {}", c.excluded);
    println!("  zoom IP matched:      {}", c.zoom_ip_matched);
    println!("  STUN matched:         {}", c.stun_registered);
    println!("  P2P lookup matched:   {}", c.p2p_matched);
    println!("  dropped (not Zoom):   {}", c.dropped);
    println!("  unparseable:          {}", c.unparseable);
    println!(
        "  written out:          {} ({:.1} %)",
        c.passed,
        100.0 * c.passed as f64 / c.total.max(1) as f64
    );
    println!(
        "  register writes: {}, hits: {}, expired: {}",
        exp.tracker.registered, exp.tracker.hits, exp.tracker.expired
    );
    assert_eq!(
        c.passed,
        c.zoom_ip_matched + c.stun_registered + c.p2p_matched,
        "stage counters must account for every passed packet"
    );
    assert!(c.dropped > c.passed, "background dominates a campus feed");
    if c.p2p_matched == 0 {
        println!(
            "  note: this sample contained no P2P meetings; rerun with a \
             longer --minutes or different --seed to exercise the P2P stage"
        );
    }
}

/// Fig. 14: data rate per media type over the trace.
pub fn fig14(run: &CampusRun, args: &ExpArgs) {
    let minute = 60 * SEC;
    let mut bins: HashMap<&'static str, TimeBins> = HashMap::new();
    for (label, media) in [
        ("video", MediaType::Video),
        ("audio", MediaType::Audio),
        ("screen_share", MediaType::ScreenShare),
    ] {
        let mut tb = TimeBins::new(minute, args.duration());
        for s in run.analyzer.streams().of_type(media) {
            for (t, v) in s.media_rate.sorted() {
                tb.add(t, v);
            }
        }
        bins.insert(label, tb);
    }
    let n = bins["video"].bins().len();
    let rows = (0..n).map(|i| {
        let t_min = i as f64;
        let mbps = |label: &str| bins[label].bins()[i] * 8.0 / 60.0 / 1e6;
        format!(
            "{t_min},{:.4},{:.4},{:.4}",
            mbps("video"),
            mbps("audio"),
            mbps("screen_share")
        )
    });
    write_csv(
        args,
        "fig14_rates.csv",
        "t_minutes,video_mbps,audio_mbps,screen_mbps",
        rows,
    );

    let sum = |label: &str| bins[label].bins().iter().sum::<f64>();
    let (v, a, s) = (sum("video"), sum("audio"), sum("screen_share"));
    println!(
        "Fig. 14: media bytes — video {:.1} MB, audio {:.1} MB, screen {:.1} MB",
        v / 1e6,
        a / 1e6,
        s / 1e6
    );
    assert!(
        v > a && v > s,
        "video must dominate (paper: 'vast majority')"
    );
}

/// Fig. 15: per-media CDFs of data rate, frame rate, frame size, and
/// frame-level jitter.
pub fn fig15(run: &CampusRun, args: &ExpArgs) {
    println!("Fig. 15: per-media metric distributions (medians / p95):");
    let mut rows: Vec<String> = Vec::new();
    for (label, media) in [
        ("video", MediaType::Video),
        ("audio", MediaType::Audio),
        ("screen_share", MediaType::ScreenShare),
    ] {
        let mut s = run.analyzer.media_samples(media);
        for (metric, samples) in [
            ("data_rate_mbps", &mut s.bitrate_mbps),
            ("frame_rate_fps", &mut s.fps),
            ("frame_size_bytes", &mut s.frame_size),
            ("jitter_ms", &mut s.jitter_ms),
        ] {
            if samples.is_empty() {
                continue;
            }
            for (value, frac) in samples.cdf_points(200) {
                rows.push(format!("{label},{metric},{value:.4},{frac:.4}"));
            }
            println!(
                "  {label:<13} {metric:<18} n={:<7} median={:<10.3} p95={:.3}",
                samples.len(),
                samples.median(),
                samples.quantile(0.95)
            );
        }
    }
    write_csv(args, "fig15_cdfs.csv", "media,metric,value,cdf", rows);

    // Shape checks from §6.2.
    let mut video = run.analyzer.media_samples(MediaType::Video);
    let mut audio = run.analyzer.media_samples(MediaType::Audio);
    let mut screen = run.analyzer.media_samples(MediaType::ScreenShare);
    if !screen.bitrate_mbps.is_empty() {
        // 15a: screen-share bit rate is much closer to audio than video.
        let v = video.bitrate_mbps.median();
        let a = audio.bitrate_mbps.median();
        let s = screen.bitrate_mbps.median();
        println!("  15a: medians video {v:.3} / screen {s:.3} / audio {a:.3} Mbit/s");
        assert!(
            (s - a).abs() < (v - s).abs(),
            "screen-share rate closer to audio"
        );
        // 15b: ~15 % of screen-share seconds have zero frames; half ≤ 5.
        let zero = screen.fps.cdf_at(0.0);
        let le5 = screen.fps.cdf_at(5.0);
        println!("  15b: screen fps P[=0]={zero:.2} P[<=5]={le5:.2}");
        assert!(zero > 0.05, "screen share must have idle seconds");
        assert!(le5 > 0.4, "half of screen-share samples at ≤5 fps");
    }
    // 15b: video fps has probability mass around the 11–14 band.
    let le10 = video.fps.cdf_at(10.0);
    let le15 = video.fps.cdf_at(15.0);
    println!(
        "  15b: video fps P[<=10]={le10:.2}, P(10,15]={:.2}",
        le15 - le10
    );
    assert!(le15 - le10 > 0.2, "the reduced-fps mode cluster must exist");
    // 15c: most video frames below ~2000 B, few above 5000 B.
    let le2000 = video.frame_size.cdf_at(2_000.0);
    let gt5000 = 1.0 - video.frame_size.cdf_at(5_000.0);
    println!("  15c: video frames P[<=2000B]={le2000:.2}, P[>5000B]={gt5000:.2}");
    // 15d: most video jitter below 20 ms, long tail.
    let le20 = video.jitter_ms.cdf_at(20.0);
    println!("  15d: video jitter P[<=20ms]={le20:.2}");
    assert!(le20 > 0.7, "most jitter samples below 20 ms");
}

/// Fig. 16: jitter vs bit rate / frame rate scatter — no correlation, and
/// the two fps clusters.
pub fn fig16(run: &CampusRun, args: &ExpArgs) {
    let samples = run.analyzer.fig16_samples();
    assert!(samples.len() > 100, "need samples, got {}", samples.len());
    // 1,500 randomly chosen samples, like the paper. Deterministic
    // sub-sampling by stride keeps the experiment reproducible.
    let stride = (samples.len() / 1_500).max(1);
    let picked: Vec<&(f64, f64, f64)> = samples.iter().step_by(stride).collect();
    write_csv(
        args,
        "fig16_scatter.csv",
        "jitter_ms,bitrate_mbps,fps",
        picked
            .iter()
            .map(|(j, b, f)| format!("{j:.4},{b:.4},{f:.1}")),
    );
    let jitter: Vec<f64> = picked.iter().map(|s| s.0).collect();
    let rate: Vec<f64> = picked.iter().map(|s| s.1).collect();
    let fps: Vec<f64> = picked.iter().map(|s| s.2).collect();
    let r_rate = pearson(&jitter, &rate);
    let r_fps = pearson(&jitter, &fps);
    println!("Fig. 16: correlation of frame-level jitter with:");
    println!("  bit rate:   r = {r_rate:+.3}");
    println!("  frame rate: r = {r_fps:+.3}");
    // The paper's point: jitter does not explain rate/fps variation —
    // scatter, not a line. A weak residual correlation remains in the
    // simulation because congestion events legitimately move both.
    assert!(
        r_rate.abs() < 0.45 && r_fps.abs() < 0.45,
        "jitter must not explain rate/fps variation: r_rate={r_rate:.2} r_fps={r_fps:.2}"
    );
    // The 14/28 fps bimodality.
    let mut fps_s = Samples::new();
    for &f in &fps {
        fps_s.push(f);
    }
    let low_cluster = fps_s.cdf_at(18.0) - fps_s.cdf_at(9.0);
    let high_cluster = fps_s.cdf_at(31.0) - fps_s.cdf_at(22.0);
    println!("  fps mass in (9,18] = {low_cluster:.2}, in (22,31] = {high_cluster:.2}");
    assert!(
        low_cluster > 0.15 && high_cluster > 0.1,
        "both frame-rate clusters must be visible"
    );
}

/// Fig. 17: packet rate, all campus traffic vs filtered Zoom traffic.
pub fn fig17(args: &ExpArgs) {
    fig17_from(&capture_experiment(args), args);
}

/// Fig. 17 reporting over an existing capture run.
pub fn fig17_from(exp: &CaptureExperiment, args: &ExpArgs) {
    let rows = exp
        .all_rate
        .iter()
        .zip(exp.zoom_rate.iter())
        .map(|((t, all), (_, zoom))| {
            format!("{},{:.1},{:.1}", t / (60 * SEC), all / 60.0, zoom / 60.0)
        });
    write_csv(args, "fig17_rates.csv", "t_minutes,all_pps,zoom_pps", rows);
    let total_all: f64 = exp.all_rate.bins().iter().sum();
    let total_zoom: f64 = exp.zoom_rate.bins().iter().sum();
    println!("Fig. 17: packet rates over the trace");
    println!(
        "  mean all:  {:.0} pkt/s   mean zoom: {:.0} pkt/s ({:.1} % — paper: 6.8 %)",
        total_all / (args.minutes as f64 * 60.0),
        total_zoom / (args.minutes as f64 * 60.0),
        100.0 * total_zoom / total_all.max(1.0)
    );
    assert!(total_zoom < total_all);
}
