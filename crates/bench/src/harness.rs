//! Shared plumbing for the experiment binaries: argument parsing, CSV
//! output, and the standard capture→analysis run.

use std::io::Write;
use std::path::PathBuf;
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_capture::cidr::prefix_set;
use zoom_capture::pipeline::{CapturePipeline, PipelineConfig};
use zoom_sim::campus::CampusStream;
use zoom_sim::infra::Infrastructure;
use zoom_sim::scenario;
use zoom_wire::pcap::LinkType;

/// Common experiment parameters, parsed from `--seed`, `--minutes`,
/// `--scale` (denominator), `--background`, and `--out` flags.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    pub seed: u64,
    pub minutes: u64,
    /// Scale denominator: load is 1/scale_denom of the paper's campus.
    pub scale_denom: f64,
    pub background_ratio: f64,
    /// Output directory for CSV artifacts.
    pub out_dir: PathBuf,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            seed: 7,
            minutes: 20,
            scale_denom: 24.0,
            background_ratio: 0.0,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl ExpArgs {
    /// Parse from `std::env::args`, applying experiment-specific
    /// defaults first.
    pub fn parse(mut defaults: ExpArgs) -> ExpArgs {
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() + 1 {
            let flag = args.get(i).map(String::as_str);
            let value = args.get(i + 1);
            match (flag, value) {
                (Some("--seed"), Some(v)) => {
                    defaults.seed = v.parse().expect("--seed <u64>");
                    i += 2;
                }
                (Some("--minutes"), Some(v)) => {
                    defaults.minutes = v.parse().expect("--minutes <u64>");
                    i += 2;
                }
                (Some("--scale"), Some(v)) => {
                    defaults.scale_denom = v.parse().expect("--scale <denominator>");
                    i += 2;
                }
                (Some("--background"), Some(v)) => {
                    defaults.background_ratio = v.parse().expect("--background <ratio>");
                    i += 2;
                }
                (Some("--out"), Some(v)) => {
                    defaults.out_dir = PathBuf::from(v);
                    i += 2;
                }
                _ => i += 1,
            }
        }
        defaults
    }

    /// Duration in nanoseconds.
    pub fn duration(&self) -> u64 {
        self.minutes * 60 * zoom_sim::time::SEC
    }

    /// Load scale.
    pub fn scale(&self) -> f64 {
        1.0 / self.scale_denom
    }
}

/// Write a CSV file into the output directory; returns the path.
pub fn write_csv(
    args: &ExpArgs,
    name: &str,
    header: &str,
    rows: impl IntoIterator<Item = String>,
) -> PathBuf {
    std::fs::create_dir_all(&args.out_dir).expect("create results dir");
    let path = args.out_dir.join(name);
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        writeln!(f, "{row}").expect("write row");
    }
    f.flush().expect("flush csv");
    println!("[csv] {}", path.display());
    path
}

/// The standard campus run: generate → filter → analyze. Returns the
/// analyzer, the capture pipeline (for its counters), and the scenario
/// truth.
pub struct CampusRun {
    pub analyzer: Analyzer,
    pub capture: CapturePipeline,
    pub truth: Vec<zoom_sim::campus::MeetingTruth>,
    pub infra: Infrastructure,
}

/// Run the campus workload through capture + analysis.
pub fn run_campus(args: &ExpArgs) -> CampusRun {
    let (scenario_obj, infra) = scenario::campus_study(
        args.seed,
        args.duration(),
        args.scale(),
        args.background_ratio,
    );
    let truth = scenario_obj.truth.clone();
    eprintln!(
        "[campus] {} meetings over {} min at 1/{} scale",
        truth.len(),
        args.minutes,
        args.scale_denom
    );
    let mut capture = CapturePipeline::new(PipelineConfig {
        campus_nets: prefix_set(&[scenario::CAMPUS_NET]),
        excluded_nets: Default::default(),
        zoom_list: infra.ip_list.clone(),
        stun_timeout_nanos: 120 * zoom_sim::time::SEC,
        anonymizer: None,
        family: zoom_wire::family::FamilySelect::Only(zoom_wire::family::FamilyId::Zoom),
    });
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    let stream: CampusStream = scenario_obj.into_stream();
    for record in stream {
        let (_, out) = capture.process_record(&record, LinkType::Ethernet);
        if let Some(out) = out {
            analyzer.process_packet(out.ts_nanos, &out.data, LinkType::Ethernet);
        }
    }
    CampusRun {
        analyzer,
        capture,
        truth,
        infra,
    }
}

/// Render a fixed-width table row.
pub fn row3(
    a: impl std::fmt::Display,
    b: impl std::fmt::Display,
    c: impl std::fmt::Display,
) -> String {
    format!("{a:<28} {b:>12} {c:>12}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_duration() {
        let a = ExpArgs::default();
        assert_eq!(a.duration(), 20 * 60 * 1_000_000_000);
        assert!((a.scale() - 1.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn csv_written() {
        let dir = std::env::temp_dir().join("zoom_bench_test_csv");
        let args = ExpArgs {
            out_dir: dir.clone(),
            ..Default::default()
        };
        let p = write_csv(&args, "t.csv", "a,b", vec!["1,2".to_string()]);
        let content = std::fs::read_to_string(p).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_dir_all(dir).ok();
    }
}
