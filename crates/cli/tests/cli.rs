//! End-to-end tests of the `zoom-tools` binary: simulate → filter →
//! analyze → dissect → discover over real files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_zoom-tools")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zoom_tools_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(bin()).args(args).output().expect("spawn");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn full_cli_round_trip() {
    let raw = tmp("raw.pcap");
    let filtered = tmp("filtered.pcap");
    let features = tmp("features.csv");

    // simulate
    let (_, err, ok) = run(&[
        "simulate",
        raw.to_str().unwrap(),
        "--seconds",
        "20",
        "--seed",
        "3",
        "--scenario",
        "validation",
    ]);
    assert!(ok, "simulate failed: {err}");
    assert!(err.contains("wrote"), "stderr: {err}");

    // filter (with anonymization)
    let (_, err, ok) = run(&[
        "filter",
        raw.to_str().unwrap(),
        filtered.to_str().unwrap(),
        "--anonymize",
        "424242",
    ]);
    assert!(ok, "filter failed: {err}");
    assert!(err.contains("filtered"), "stderr: {err}");

    // analyze with feature export; campus must be the anonymized prefix,
    // but summary-level numbers work regardless.
    let (out, err, ok) = run(&[
        "analyze",
        filtered.to_str().unwrap(),
        "--features",
        features.to_str().unwrap(),
    ]);
    assert!(ok, "analyze failed: {err}");
    assert!(out.contains("=== trace summary ==="), "{out}");
    assert!(out.contains("rtp streams:"), "{out}");
    let csv = std::fs::read_to_string(&features).unwrap();
    assert!(csv.starts_with("ssrc,second,"), "{csv}");
    assert!(csv.lines().count() > 10);

    // dissect
    let (out, _, ok) = run(&["dissect", filtered.to_str().unwrap(), "--max", "3"]);
    assert!(ok);
    assert!(out.contains("Zoom SFU Encapsulation") || out.contains("Zoom Media Encapsulation"));

    // discover
    let (out, _, ok) = run(&["discover", raw.to_str().unwrap()]);
    assert!(ok);
    assert!(out.contains("RTP header at offset"), "{out}");
}

#[test]
fn streaming_analyze_emits_windows_then_final() {
    let raw = tmp("stream_raw.pcap");
    let (_, err, ok) = run(&[
        "simulate",
        raw.to_str().unwrap(),
        "--seconds",
        "25",
        "--seed",
        "11",
        "--scenario",
        "multi",
    ]);
    assert!(ok, "simulate failed: {err}");

    let (out, err, ok) = run(&["analyze", raw.to_str().unwrap(), "--window", "5s"]);
    assert!(ok, "analyze failed: {err}");
    let lines: Vec<&str> = out.lines().collect();
    let windows = lines
        .iter()
        .filter(|l| l.starts_with("{\"type\":\"window\""))
        .count();
    assert!(windows >= 3, "expected >=3 window lines, got {windows}: {out}");
    let last = lines.last().expect("non-empty output");
    assert!(
        last.starts_with("{\"type\":\"final\""),
        "last line should be the final report: {last}"
    );
    // Every line is one JSON object (NDJSON): starts and ends as one.
    for l in &lines {
        assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
    }

    // The churn scenario with eviction enabled still exits cleanly and
    // reports windowed evictions.
    let churn = tmp("churn_raw.pcap");
    let (_, err, ok) = run(&[
        "simulate",
        churn.to_str().unwrap(),
        "--seconds",
        "40",
        "--seed",
        "5",
        "--scenario",
        "churn",
    ]);
    assert!(ok, "simulate churn failed: {err}");
    let (out, err, ok) = run(&[
        "analyze",
        churn.to_str().unwrap(),
        "--window",
        "5s",
        "--idle-timeout",
        "5s",
        "--shards",
        "2",
    ]);
    assert!(ok, "churn analyze failed: {err}");
    assert!(out.contains("\"evicted\":true"), "no eviction observed: {out}");
    assert!(err.contains("peak tracked entries"), "stderr: {err}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let (_, _, ok) = run(&[]);
    assert!(!ok);
    let (_, err, ok) = run(&["analyze", "/nonexistent/file.pcap"]);
    assert!(!ok);
    assert!(err.contains("error:"));
    let (_, _, ok) = run(&["frobnicate"]);
    assert!(!ok);
    let (_, err, ok) = run(&["simulate", "/tmp/x.pcap", "--scenario", "bogus"]);
    assert!(!ok);
    assert!(err.contains("unknown scenario"));
}
