//! Documentation link checker: every relative markdown link in README.md
//! and docs/*.md must point at a file that exists in the repository, so
//! the docs index can't rot as files move. Run by CI's lint job.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// Pull `](target)` link targets out of markdown, skipping fenced code
/// blocks (``` ... ```) where `](` is just text.
fn extract_links(text: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(p) = rest.find("](") {
            let after = &rest[p + 2..];
            let Some(end) = after.find(')') else { break };
            // A `[text](path "title")` link keeps only the path token.
            let target = after[..end]
                .split_whitespace()
                .next()
                .unwrap_or("")
                .to_string();
            links.push(target);
            rest = &after[end + 1..];
        }
    }
    links
}

#[test]
fn relative_doc_links_resolve() {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    for entry in std::fs::read_dir(root.join("docs")).expect("docs dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    assert!(files.len() > 5, "expected README plus several docs");

    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let text = std::fs::read_to_string(file).expect("read doc");
        let dir = file.parent().expect("doc dir");
        for target in extract_links(&text) {
            if target.contains("://") || target.starts_with('#') || target.starts_with("mailto:") {
                continue; // external or intra-page
            }
            // Drop a trailing `#anchor`; we check file existence only.
            let path_part = target.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            checked += 1;
            if !dir.join(path_part).exists() {
                broken.push(format!("{}: {target}", file.display()));
            }
        }
    }
    assert!(checked > 10, "link extraction found only {checked} links");
    assert!(broken.is_empty(), "broken relative links:\n{}", broken.join("\n"));
}
