//! `zoom-tools` — the command-line face of the toolchain, mirroring the
//! software analysis tools the paper released alongside the study.
//!
//! ```text
//! zoom-tools analyze  [in.pcap] [--source pcap:FILE|sim:SPEC]... [--campus CIDR]
//!                     [--family auto|zoom|webrtc]
//!                     [--shards N] [--ring-cap N] [--lossy] [--window DUR]
//!                     [--idle-timeout DUR] [--follow] [--idle-exit DUR]
//!                     [--json] [--features out.csv] [--serve ADDR]
//!                     [--metrics out.json|out.prom] [--metrics-interval DUR]
//!                     [--trace out.ndjson] [--trace-sample N] [--self-profile out.folded]
//! zoom-tools capture  <out.pcap> --source pcap:FILE|sim:SPEC [--source ...]
//!                     [--campus CIDR] [--family auto|zoom|webrtc]
//!                     [--anonymize KEY] [--no-filter]
//!                     [--ring-cap N] [--lossy] [--follow] [--idle-exit DUR]
//!                     [--metrics out.json|out.prom]
//! zoom-tools merge    <frags...> | --listen ADDR --workers N [--journal DIR]
//!                     [--window DUR] [--shards N] [--checkpoint PATH] [--restore]
//!                     [--json] [--serve ADDR] [--metrics out.json|out.prom]
//!                     [--trace out.ndjson] [--trace-sample N] [--self-profile out.folded]
//! zoom-tools dissect  <in.pcap> [--max N] [--family auto|zoom|webrtc]
//! zoom-tools discover <in.pcap> [--max-offset N]
//! zoom-tools filter   <in.pcap> <out.pcap> [--campus CIDR] [--anonymize KEY]
//!                     [--metrics out.json|out.prom]
//! zoom-tools simulate <out.pcap> [--seconds N] [--seed N]
//!                     [--scenario validation|p2p|multi|churn|campus-10x|webrtc]
//! ```
//!
//! Argument parsing is hand-rolled (the workspace deliberately avoids
//! extra dependencies); every subcommand lives in its own module.
//!
//! Failures exit with a distinct code per error class — see
//! [`cmd::CliError`] for the full table (2 usage, 3 configuration,
//! 4 parse/protocol, 5 I/O, 6 shard panic, 7 checkpoint, 1 otherwise).

mod cmd;

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         zoom-tools analyze  [in.pcap] [--source pcap:FILE|sim:SPEC]... [--campus CIDR] [--shards N]\n  \
                             [--family auto|zoom|webrtc]\n  \
                             [--ring-cap N] [--lossy] [--window DUR] [--idle-timeout DUR]\n  \
                             [--follow] [--idle-exit DUR] [--json] [--features out.csv] [--serve ADDR]\n  \
                             [--metrics out.json|out.prom] [--metrics-interval DUR]\n  \
                             [--trace out.ndjson] [--trace-sample N] [--self-profile out.folded]\n  \
                             [--emit-fragments ADDR|FILE [--worker-label NAME]]\n  \
         zoom-tools merge    <frags...> | --listen ADDR --workers N [--journal DIR]\n  \
                             [--window DUR] [--idle-timeout DUR] [--shards N] [--campus CIDR]\n  \
                             [--checkpoint PATH] [--restore] [--json] [--serve ADDR]\n  \
                             [--ring-cap N] [--lossy] [--metrics out.json|out.prom]\n  \
                             [--trace out.ndjson] [--trace-sample N] [--self-profile out.folded]\n  \
         zoom-tools capture  <out.pcap> --source pcap:FILE|sim:SPEC [--source ...] [--campus CIDR]\n  \
                             [--anonymize KEY] [--no-filter] [--ring-cap N] [--lossy]\n  \
                             [--follow] [--idle-exit DUR] [--metrics out.json|out.prom]\n  \
         zoom-tools dissect  <in.pcap> [--max N] [--family auto|zoom|webrtc]\n  \
         zoom-tools discover <in.pcap> [--max-offset N]\n  \
         zoom-tools filter   <in.pcap> <out.pcap> [--campus CIDR] [--anonymize KEY] [--metrics out.json]\n  \
         zoom-tools simulate <out.pcap> [--seconds N] [--seed N]\n  \
                             [--scenario validation|p2p|multi|churn|campus-10x|webrtc]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "analyze" => cmd::analyze::run(rest),
        "capture" => cmd::capture::run(rest),
        "dissect" => cmd::dissect::run(rest),
        "discover" => cmd::discover::run(rest),
        "filter" => cmd::filter::run(rest),
        "merge" => cmd::merge::run(rest),
        "simulate" => cmd::simulate::run(rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            // Each error class exits with its own code (see cmd::CliError).
            ExitCode::from(e.code)
        }
    }
}
