//! Shared `--source SPEC` handling for `analyze`, `capture`, and the
//! fragment-emitting worker path.
//!
//! Spec strings parse through the typed
//! [`SourceSpec`] grammar — one
//! `FromStr` shared by every subcommand instead of the per-command
//! string splitting the CLI used to do — and each parsed spec selects a
//! [`PacketSource`] backend:
//!
//! * [`SourceSpec::Pcap`] — a pcap file ([`PcapFileSource`]); with
//!   `--follow` the file is polled for appended records per source.
//! * [`SourceSpec::Sim`] — a simulated live tap: the scenario's records
//!   are generated up front, then delivered through the AF_PACKET-style
//!   [`live_ring`] backend by a feeder thread, so the ingest side
//!   exercises the same ring hand-off a real socket capture would.
//!   Scenarios match `simulate`: `validation`, `p2p`, `multi`, `churn`,
//!   `campus-10x`, `webrtc` (the *name* is validated here, where the catalogue
//!   lives — the grammar itself accepts any name).
//!
//! Source labels are the spec's canonical `Display` form, so
//! `sim:p2p` and `sim:p2p,seed=7,secs=60` label identically
//! (`docs/DISTRIBUTED.md` has the migration notes).
//!
//! A bare positional input (the legacy `analyze trace.pcap` shape) is
//! equivalent to `--source pcap:trace.pcap`.

use super::CliError;
use std::collections::HashMap;
use zoom_capture::mux::{MuxConfig, Overflow};
use zoom_capture::source::{
    live_ring, FollowConfig, PacketSource, PcapFileSource, BATCH_RECORDS,
};
use zoom_capture::spec::SourceSpec;
use zoom_sim::meeting::{MeetingConfig, MeetingSim};
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::{LinkType, Record};

/// Generates one scenario's records, timestamp-sorted — the same
/// workloads (and the same `MeetingConfig` tweaks) as `simulate`, so a
/// `sim:` source is record-identical to analyzing a `simulate` output
/// file with matching parameters.
pub fn scenario_records(name: &str, seed: u64, seconds: u64) -> Result<Vec<Record>, String> {
    // The WebRTC scenario generates records directly (no MeetingConfig:
    // a WebRTC session is not a Zoom meeting), already timestamp-sorted.
    if name == "webrtc" {
        return Ok(zoom_sim::webrtc::scenario(seed, seconds * SEC));
    }
    let configs: Vec<MeetingConfig> = match name {
        "validation" => {
            let mut cfg = scenario::validation_experiment(seed);
            for p in &mut cfg.participants {
                p.leave_at = seconds * SEC;
            }
            vec![cfg]
        }
        "p2p" => vec![scenario::p2p_meeting(seed, seconds * SEC)],
        "multi" => vec![scenario::multi_party(seed, seconds * SEC)],
        "churn" => scenario::churn(seed, seconds * SEC),
        "campus-10x" => scenario::campus_10x(seed, seconds * SEC),
        other => {
            return Err(format!(
                "unknown scenario '{other}' (validation|p2p|multi|churn|campus-10x|webrtc)"
            ))
        }
    };
    // Multi-meeting scenarios interleave by timestamp so the capture
    // looks like one border tap observing them all.
    let mut records: Vec<Record> = configs.into_iter().flat_map(MeetingSim::new).collect();
    records.sort_by_key(|r| r.ts_nanos);
    Ok(records)
}

/// Parses the spec strings of one invocation into typed form: every
/// positional input becomes a `pcap:` spec, then each `--source` value
/// in order. Grammar failures exit with the configuration code.
pub fn parse_specs(
    positional: &[String],
    specs: &[(String, String)],
) -> Result<Vec<SourceSpec>, CliError> {
    let mut parsed = Vec::with_capacity(positional.len() + specs.len());
    for input in positional {
        parsed.push(SourceSpec::Pcap {
            path: input.clone(),
        });
    }
    for (_, spec) in specs {
        parsed.push(spec.parse::<SourceSpec>()?);
    }
    Ok(parsed)
}

/// Builds the source for one parsed spec. `follow` applies to pcap
/// sources only: a followed file keeps being polled until it has been
/// quiet for the configured idle-exit.
pub fn build_source(
    spec: &SourceSpec,
    follow: Option<FollowConfig>,
) -> Result<Box<dyn PacketSource>, CliError> {
    match spec {
        SourceSpec::Pcap { path } => {
            let mut src = PcapFileSource::open(path).map_err(CliError::from)?;
            if let Some(cfg) = follow {
                src = src.follow(cfg);
            }
            Ok(Box::new(src))
        }
        SourceSpec::Sim {
            scenario,
            seed,
            secs,
        } => {
            let records =
                scenario_records(scenario, *seed, *secs).map_err(CliError::config)?;
            // The label is the canonical spec so shorthand and explicit
            // forms of the same tap share one metrics series.
            let (mut handle, source) = live_ring(&spec.to_string(), LinkType::Ethernet, 8);
            // The feeder thread stands in for the kernel side of a live
            // ring: it pushes batches losslessly (the generator can
            // wait; a real NIC cannot) and exits when the consuming
            // source is dropped.
            std::thread::spawn(move || {
                let mut batch = handle.take_batch();
                for r in &records {
                    if batch.len() >= BATCH_RECORDS {
                        match handle.push_batch_blocking(batch) {
                            Ok(()) => batch = handle.take_batch(),
                            Err(_) => return, // consumer gone
                        }
                    }
                    batch.push(r.ts_nanos, r.orig_len, &r.data);
                }
                if !batch.is_empty() {
                    let _ = handle.push_batch_blocking(batch);
                }
            });
            Ok(Box::new(source))
        }
    }
}

/// Builds the full source list for a command invocation: every
/// `--source` spec in order, preceded by the legacy positional input (as
/// a pcap source) when one was given.
pub fn build_sources(
    positional: &[String],
    specs: &[(String, String)],
    follow: Option<FollowConfig>,
) -> Result<Vec<Box<dyn PacketSource>>, CliError> {
    let parsed = parse_specs(positional, specs)?;
    if parsed.is_empty() {
        return Err("no input: give a pcap path or at least one --source".into());
    }
    parsed.iter().map(|s| build_source(s, follow)).collect()
}

/// Parse `--ring-cap` / `--lossy` into the fan-in configuration.
/// Defaults to lossless (`Overflow::Block`): file replay can wait, so
/// reports stay deterministic. `--lossy` switches to live semantics —
/// full rings drop batches with exact `ring_full_drops` accounting.
pub fn mux_flags(flags: &HashMap<String, String>) -> Result<MuxConfig, String> {
    let ring_capacity = match flags.get("ring-cap") {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|n| *n > 0)
            .ok_or_else(|| format!("--ring-cap expects a positive batch count, got {v:?}"))?,
        None => MuxConfig::default().ring_capacity,
    };
    let overflow = if flags.contains_key("lossy") {
        Overflow::Drop
    } else {
        Overflow::Block
    };
    Ok(MuxConfig {
        ring_capacity,
        overflow,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> SourceSpec {
        s.parse().unwrap()
    }

    #[test]
    fn bad_specs_error_with_config_code() {
        let reps = [("source".to_string(), "nocolon".to_string())];
        let e = build_sources(&[], &reps, None).err().unwrap();
        assert_eq!(e.code, 3, "grammar errors are configuration errors");
        assert!(e.message.contains("pcap:PATH"));

        let reps = [("source".to_string(), "ftp:whatever".to_string())];
        assert_eq!(build_sources(&[], &reps, None).err().unwrap().code, 3);

        assert!(build_source(&spec("pcap:/definitely/not/there.pcap"), None).is_err());
        let e = build_source(&spec("sim:unknown-scenario"), None).err().unwrap();
        assert_eq!(e.code, 3);
        assert!(e
            .message
            .contains("validation|p2p|multi|churn|campus-10x|webrtc"));
    }

    #[test]
    fn campus_10x_is_heavy_churn() {
        // The bench-gate standard load: ~10x the `churn` scenario's
        // meeting population inside a one-minute trace, so the batch
        // pipeline is measured under real flow-table pressure.
        let records = scenario_records("campus-10x", 7, 60).unwrap();
        assert!(
            records.len() > 100_000,
            "campus-10x too light: {} records",
            records.len()
        );
        let churn: usize = scenario::churn(7, 60 * SEC).len();
        let meetings = scenario::campus_10x(7, 60 * SEC).len();
        assert!(
            meetings >= 10 * churn,
            "campus-10x has {meetings} meetings, want >= 10x churn's {churn}"
        );
    }

    #[test]
    fn positional_inputs_become_pcap_specs() {
        let parsed = parse_specs(&["trace.pcap".into()], &[]).unwrap();
        assert_eq!(
            parsed,
            vec![SourceSpec::Pcap {
                path: "trace.pcap".into()
            }]
        );
    }

    #[test]
    fn sim_source_delivers_scenario_records() {
        use zoom_wire::handoff::RecordBatch;

        let expected = scenario_records("p2p", 3, 5).unwrap();
        let mut src = build_source(&spec("sim:p2p,seed=3,secs=5"), None).unwrap();
        assert_eq!(src.label(), "sim:p2p,seed=3,secs=5");
        let mut got = 0usize;
        let mut batch = RecordBatch::new();
        loop {
            batch.clear();
            let live = src.next_batch(&mut batch).unwrap();
            got += batch.len();
            if !live {
                break;
            }
        }
        assert_eq!(got, expected.len());
    }
}
