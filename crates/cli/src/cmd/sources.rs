//! Shared `--source SPEC` handling for `analyze` and `capture`.
//!
//! A spec selects a [`PacketSource`] backend:
//!
//! * `pcap:PATH` — a pcap file ([`PcapFileSource`]); with `--follow` the
//!   file is polled for appended records per source.
//! * `sim:SCENARIO[,seed=N][,secs=N]` — a simulated live tap: the
//!   scenario's records are generated up front, then delivered through
//!   the AF_PACKET-style [`live_ring`] backend by a feeder thread, so
//!   the ingest side exercises the same ring hand-off a real socket
//!   capture would. Scenarios match `simulate`: `validation`, `p2p`,
//!   `multi`, `churn`.
//!
//! A bare positional input (the legacy `analyze trace.pcap` shape) is
//! equivalent to `--source pcap:trace.pcap`.

use std::collections::HashMap;
use zoom_capture::mux::{MuxConfig, Overflow};
use zoom_capture::source::{
    live_ring, FollowConfig, PacketSource, PcapFileSource, BATCH_RECORDS,
};
use zoom_sim::meeting::{MeetingConfig, MeetingSim};
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::{LinkType, Record};

/// Generates one scenario's records, timestamp-sorted — the same
/// workloads (and the same `MeetingConfig` tweaks) as `simulate`, so a
/// `sim:` source is record-identical to analyzing a `simulate` output
/// file with matching parameters.
pub fn scenario_records(name: &str, seed: u64, seconds: u64) -> Result<Vec<Record>, String> {
    let configs: Vec<MeetingConfig> = match name {
        "validation" => {
            let mut cfg = scenario::validation_experiment(seed);
            for p in &mut cfg.participants {
                p.leave_at = seconds * SEC;
            }
            vec![cfg]
        }
        "p2p" => vec![scenario::p2p_meeting(seed, seconds * SEC)],
        "multi" => vec![scenario::multi_party(seed, seconds * SEC)],
        "churn" => scenario::churn(seed, seconds * SEC),
        other => {
            return Err(format!(
                "unknown scenario '{other}' (validation|p2p|multi|churn)"
            ))
        }
    };
    // Multi-meeting scenarios interleave by timestamp so the capture
    // looks like one border tap observing them all.
    let mut records: Vec<Record> = configs.into_iter().flat_map(MeetingSim::new).collect();
    records.sort_by_key(|r| r.ts_nanos);
    Ok(records)
}

/// Parses `sim:` parameters: `SCENARIO[,seed=N][,secs=N]`.
fn parse_sim_spec(spec: &str) -> Result<(String, u64, u64), String> {
    let mut parts = spec.split(',');
    let name = parts.next().unwrap_or("").trim();
    if name.is_empty() {
        return Err("sim: spec needs a scenario (validation|p2p|multi|churn)".into());
    }
    let (mut seed, mut secs) = (7u64, 60u64);
    for part in parts {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("bad sim option {part:?} (expected key=value)"))?;
        let v: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("sim option {key}={value:?} is not a number"))?;
        match key.trim() {
            "seed" => seed = v,
            "secs" => secs = v,
            other => return Err(format!("unknown sim option {other:?} (seed|secs)")),
        }
    }
    Ok((name.to_string(), seed, secs))
}

/// Builds the source for one spec. `follow` applies to pcap sources
/// only: a followed file keeps being polled until it has been quiet for
/// the configured idle-exit.
pub fn build_source(
    spec: &str,
    follow: Option<FollowConfig>,
) -> Result<Box<dyn PacketSource>, String> {
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("bad source {spec:?} (expected pcap:PATH or sim:SPEC)"))?;
    match kind {
        "pcap" => {
            let mut src = PcapFileSource::open(rest).map_err(|e| e.to_string())?;
            if let Some(cfg) = follow {
                src = src.follow(cfg);
            }
            Ok(Box::new(src))
        }
        "sim" => {
            let (name, seed, secs) = parse_sim_spec(rest)?;
            let records = scenario_records(&name, seed, secs)?;
            let (mut handle, source) =
                live_ring(&format!("sim:{rest}"), LinkType::Ethernet, 8);
            // The feeder thread stands in for the kernel side of a live
            // ring: it pushes batches losslessly (the generator can
            // wait; a real NIC cannot) and exits when the consuming
            // source is dropped.
            std::thread::spawn(move || {
                let mut batch = handle.take_batch();
                for r in &records {
                    if batch.len() >= BATCH_RECORDS {
                        match handle.push_batch_blocking(batch) {
                            Ok(()) => batch = handle.take_batch(),
                            Err(_) => return, // consumer gone
                        }
                    }
                    batch.push(r.ts_nanos, r.orig_len, &r.data);
                }
                if !batch.is_empty() {
                    let _ = handle.push_batch_blocking(batch);
                }
            });
            Ok(Box::new(source))
        }
        other => Err(format!(
            "unknown source kind {other:?} (expected pcap:PATH or sim:SPEC)"
        )),
    }
}

/// Builds the full source list for a command invocation: every
/// `--source` spec in order, preceded by the legacy positional input (as
/// a pcap source) when one was given.
pub fn build_sources(
    positional: &[String],
    specs: &[(String, String)],
    follow: Option<FollowConfig>,
) -> Result<Vec<Box<dyn PacketSource>>, String> {
    let mut sources = Vec::new();
    for input in positional {
        sources.push(build_source(&format!("pcap:{input}"), follow)?);
    }
    for (_, spec) in specs {
        sources.push(build_source(spec, follow)?);
    }
    if sources.is_empty() {
        return Err("no input: give a pcap path or at least one --source".into());
    }
    Ok(sources)
}

/// Parse `--ring-cap` / `--lossy` into the fan-in configuration.
/// Defaults to lossless (`Overflow::Block`): file replay can wait, so
/// reports stay deterministic. `--lossy` switches to live semantics —
/// full rings drop batches with exact `ring_full_drops` accounting.
pub fn mux_flags(flags: &HashMap<String, String>) -> Result<MuxConfig, String> {
    let ring_capacity = match flags.get("ring-cap") {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|n| *n > 0)
            .ok_or_else(|| format!("--ring-cap expects a positive batch count, got {v:?}"))?,
        None => MuxConfig::default().ring_capacity,
    };
    let overflow = if flags.contains_key("lossy") {
        Overflow::Drop
    } else {
        Overflow::Block
    };
    Ok(MuxConfig {
        ring_capacity,
        overflow,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_spec_parses_options() {
        assert_eq!(
            parse_sim_spec("p2p,seed=3,secs=20").unwrap(),
            ("p2p".into(), 3, 20)
        );
        assert_eq!(parse_sim_spec("multi").unwrap(), ("multi".into(), 7, 60));
        assert!(parse_sim_spec("").is_err());
        assert!(parse_sim_spec("p2p,bogus=1").is_err());
        assert!(parse_sim_spec("p2p,seed=x").is_err());
    }

    #[test]
    fn bad_specs_error() {
        assert!(build_source("nocolon", None).is_err());
        assert!(build_source("ftp:whatever", None).is_err());
        assert!(build_source("pcap:/definitely/not/there.pcap", None).is_err());
        assert!(build_source("sim:unknown-scenario", None).is_err());
    }

    #[test]
    fn sim_source_delivers_scenario_records() {
        use zoom_wire::handoff::RecordBatch;

        let expected = scenario_records("p2p", 3, 5).unwrap();
        let mut src = build_source("sim:p2p,seed=3,secs=5", None).unwrap();
        assert_eq!(src.label(), "sim:p2p,seed=3,secs=5");
        let mut got = 0usize;
        let mut batch = RecordBatch::new();
        loop {
            batch.clear();
            let live = src.next_batch(&mut batch).unwrap();
            got += batch.len();
            if !live {
                break;
            }
        }
        assert_eq!(got, expected.len());
    }
}
