//! `zoom-tools merge` — the merge half of the distributed shard tier:
//! consume wire-framed fragment streams from `analyze --emit-fragments`
//! workers and run the ordinary analysis over the union, byte-identical
//! to a single-process `analyze` of the same records.
//!
//! Two input modes:
//!
//! * `merge FILES...` — each positional file is one worker's spooled
//!   fragment stream.
//! * `merge --listen ADDR --workers N` — bind a TCP listener, accept
//!   exactly N worker connections, and analyze them live.
//!   `--journal DIR` tees every connection's bytes to
//!   `DIR/worker-<i>.frag` while it streams, so a crashed merge can be
//!   re-run in file mode over the journal.
//!
//! Every worker becomes one fragment lane in the same capture fan-in
//! `analyze` uses, so the merged record order — and therefore the
//! output — is the deterministic `(ts, lane)` merge the differential
//! suites pin down. The workers' self-reported accounting is folded into
//! this process's metrics as `zoom_worker_*` series, and the
//! conservation invariant extends across the wire:
//! `Σ worker packets == merge packets_in + Σ drops`.
//!
//! With `--window` the streaming engine emits NDJSON window reports just
//! like `analyze --window`; `--checkpoint PATH` then persists a
//! [`MergeCheckpoint`] after every emitted window, and `--restore`
//! resumes from one — the replay (same files, or the journal) suppresses
//! the already-emitted window prefix and continues with bit-identical
//! output (`docs/DISTRIBUTED.md` has the runbook).

use super::analyze::{finish_mux, print_report, MetricsFile, MUX_BATCH};
use super::sources::mux_flags;
use super::{campus_flag, parse_args, parse_duration, CliError, CmdResult, TraceOutput};
use std::collections::HashMap;
use std::io::{Read, Write as _};
use std::sync::Arc;
use std::time::Duration;
use zoom_analysis::dist::{MergeCheckpoint, WindowGate, WorkerMark};
use zoom_analysis::engine::{EngineConfig, StreamingEngine};
use zoom_analysis::obs::trace::TraceCollector;
use zoom_analysis::obs::{link_state, serve, PipelineMetrics, WorkerMetrics};
use zoom_analysis::parallel::ParallelAnalyzer;
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::PacketSink;
use zoom_capture::fragment::{FragmentSource, WorkerAccount};
use zoom_capture::mux::{CaptureMux, MuxConfig};
use zoom_capture::source::PacketSource;
use zoom_wire::handoff::RecordBatch;

/// A boxed byte stream: a spool file or an accepted worker connection,
/// optionally teed into the journal.
type Input = Box<dyn Read + Send>;

/// Tees every byte read from a worker connection into the journal file,
/// so listen-mode sessions can be replayed in file mode after a crash.
struct Tee<R: Read> {
    inner: R,
    journal: std::io::BufWriter<std::fs::File>,
}

impl<R: Read> Read for Tee<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        if n == 0 {
            self.journal.flush()?;
        } else {
            self.journal.write_all(&buf[..n])?;
        }
        Ok(n)
    }
}

/// One connected (or spooled) worker, before it becomes a mux lane.
struct Worker {
    source: FragmentSource<Input>,
    account: Arc<WorkerAccount>,
    label: String,
}

fn open_worker(input: Input, context: &str) -> Result<Worker, CliError> {
    let source = FragmentSource::open(input)
        .map_err(|e| CliError::protocol(format!("{context}: {e}")))?;
    let account = source.account();
    let label = source.worker_label().to_string();
    Ok(Worker {
        source,
        account,
        label,
    })
}

/// Collect workers from positional spool files.
fn file_workers(files: &[String]) -> Result<Vec<Worker>, CliError> {
    files
        .iter()
        .map(|path| {
            let f = std::fs::File::open(path)
                .map_err(|e| CliError::io(format!("{path}: {e}")))?;
            open_worker(Box::new(std::io::BufReader::new(f)), path)
        })
        .collect()
}

/// Bind `addr`, accept exactly `count` worker connections, and wrap
/// each (teed into `journal` when given) as a fragment lane.
fn listen_workers(
    addr: &str,
    count: usize,
    journal: Option<&str>,
) -> Result<Vec<Worker>, CliError> {
    if let Some(dir) = journal {
        std::fs::create_dir_all(dir).map_err(|e| CliError::io(format!("{dir}: {e}")))?;
    }
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    eprintln!("listening for {count} worker(s) on {local}");
    let mut workers = Vec::with_capacity(count);
    for i in 0..count {
        let (conn, peer) = listener
            .accept()
            .map_err(|e| CliError::io(format!("{addr}: accept: {e}")))?;
        let input: Input = match journal {
            Some(dir) => {
                let path = format!("{dir}/worker-{i}.frag");
                let f = std::fs::File::create(&path)
                    .map_err(|e| CliError::io(format!("{path}: {e}")))?;
                Box::new(Tee {
                    inner: conn,
                    journal: std::io::BufWriter::new(f),
                })
            }
            None => Box::new(conn),
        };
        let w = open_worker(input, &peer.to_string())?;
        eprintln!("worker {} connected from {peer}", w.label);
        workers.push(w);
    }
    Ok(workers)
}

/// Copy each worker's latest self-reported totals into its registered
/// `zoom_worker_*` series. Cheap (a few atomics per worker), so it runs
/// inline with ingest and once more before every snapshot.
fn sync_worker_metrics(pairs: &[(Arc<WorkerAccount>, Arc<WorkerMetrics>)]) {
    use std::sync::atomic::Ordering;
    for (acc, wm) in pairs {
        let t = acc.totals();
        wm.packets.set(t.packets);
        wm.bytes.set(t.bytes);
        wm.batches.set(t.batches);
        wm.ring_full_drops.set(t.ring_full_drops);
        wm.truncated.set(t.truncated);
        let received = acc.records_received.load(Ordering::Acquire);
        let have = wm.records_received.get();
        if received > have {
            wm.records_received.add(received - have);
        }
        let complete = acc.complete.load(Ordering::Acquire);
        wm.complete.set(u64::from(complete));
        // Don't regress an ERROR set by the ingest failure path.
        if wm.link_state.get() != link_state::ERROR {
            wm.link_state.set(if complete {
                link_state::DONE
            } else if received > 0 {
                link_state::STREAMING
            } else {
                link_state::PENDING
            });
        }
    }
}

/// Mark every worker that never finished cleanly as errored; called when
/// the ingest loop surfaces a failure so `/debug/pipeline` and the final
/// metrics snapshot show which link(s) died.
fn mark_incomplete_errored(pairs: &[(Arc<WorkerAccount>, Arc<WorkerMetrics>)]) {
    use std::sync::atomic::Ordering;
    for (acc, wm) in pairs {
        if !acc.complete.load(Ordering::Acquire) {
            wm.link_state.set(link_state::ERROR);
        }
    }
}

/// Register every worker against the metrics registry and return the
/// (account, series) pairs the ingest loop keeps in sync.
fn register_workers(
    metrics: &PipelineMetrics,
    workers: &[Worker],
) -> Vec<(Arc<WorkerAccount>, Arc<WorkerMetrics>)> {
    workers
        .iter()
        .map(|w| (Arc::clone(&w.account), metrics.register_worker(&w.label)))
        .collect()
}

/// Split the gathered workers into mux lanes plus the label list the
/// checkpoint records. With a collector, each lane stitches incoming
/// `Trace` frames into it (worker-side spans join this process's spans
/// by trace ID) and tags decoded batches for downstream attribution.
fn into_sources(
    workers: Vec<Worker>,
    trace: Option<&Arc<TraceCollector>>,
) -> (Vec<Box<dyn PacketSource>>, Vec<String>) {
    let labels = workers.iter().map(|w| w.label.clone()).collect();
    let sources = workers
        .into_iter()
        .map(|w| match trace {
            Some(tc) => Box::new(w.source.with_trace(Arc::clone(tc))) as Box<dyn PacketSource>,
            None => Box::new(w.source) as Box<dyn PacketSource>,
        })
        .collect();
    (sources, labels)
}

/// The merge-side ingest loop: identical to the `analyze` fan-in feed —
/// run-extended batches through the batched dissection path — plus the
/// per-batch worker-metrics sync.
fn feed<S: PacketSink>(
    mux: &mut CaptureMux,
    sink: &mut S,
    metrics_file: &mut Option<MetricsFile>,
    pairs: &[(Arc<WorkerAccount>, Arc<WorkerMetrics>)],
) -> CmdResult {
    let mut batch = RecordBatch::new();
    loop {
        let Some(link) = mux.next_batch(&mut batch, MUX_BATCH)? else {
            return Ok(());
        };
        sink.push_batch(&batch, link)?;
        sync_worker_metrics(pairs);
        if let Some(m) = metrics_file {
            sink.note_pcap_progress(mux.records_delivered(), mux.bytes_delivered());
            m.tick(batch.len() as u32, || sink.metrics())?;
        }
    }
}

pub fn run(args: &[String]) -> CmdResult {
    let (files, flags) = parse_args(args, &["json", "lossy", "restore"])?;
    let campus = campus_flag(&flags)?;
    let shards: usize = match flags.get("shards") {
        Some(v) => v.parse::<usize>().ok().filter(|n| *n > 0).ok_or_else(|| {
            CliError::config(format!("--shards expects a positive integer, got {v:?}"))
        })?,
        None => 1,
    };
    let window = flags.get("window").map(|v| parse_duration(v)).transpose()?;
    let idle_timeout = flags
        .get("idle-timeout")
        .map(|v| parse_duration(v))
        .transpose()?;
    let mux_config = mux_flags(&flags)?;
    let metrics_file = MetricsFile::from_flags(&flags)?;
    let trace_out = TraceOutput::from_flags(&flags)?;
    let checkpoint_path = flags.get("checkpoint").cloned();
    let restore = flags.contains_key("restore");
    if restore && checkpoint_path.is_none() {
        return Err(CliError::config("--restore needs --checkpoint PATH"));
    }
    if checkpoint_path.is_some() && window.is_none() {
        return Err(CliError::config(
            "--checkpoint needs --window: only windowed output can be resumed incrementally",
        ));
    }

    let config = AnalyzerConfig::builder()
        .campus_prefix(campus.0, campus.1)
        .build()?;

    // Gather workers: spool files, or live connections.
    let workers = match flags.get("listen") {
        Some(addr) => {
            if !files.is_empty() {
                return Err(CliError::config(
                    "--listen and positional fragment files are mutually exclusive",
                ));
            }
            let count: usize = flags
                .get("workers")
                .ok_or_else(|| CliError::config("merge --listen needs --workers N"))?
                .parse::<usize>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| CliError::config("--workers expects a positive integer"))?;
            listen_workers(addr, count, flags.get("journal").map(String::as_str))?
        }
        None => {
            if files.is_empty() {
                return Err(CliError::config(
                    "no input: give fragment files or --listen ADDR --workers N",
                ));
            }
            file_workers(&files)?
        }
    };

    // Restore: the replayed inputs must be the checkpointed worker set,
    // and the gate suppresses the window prefix a previous incarnation
    // already wrote.
    let mut gate = WindowGate::default();
    if restore {
        let path = checkpoint_path.as_deref().expect("checked above");
        let cp = MergeCheckpoint::load(std::path::Path::new(path))?;
        let labels: Vec<String> = workers.iter().map(|w| w.label.clone()).collect();
        cp.check_workers(&labels)?;
        gate = WindowGate::resume_from(&cp);
        eprintln!(
            "restoring from {path}: suppressing {} already-emitted window(s)",
            cp.windows_emitted
        );
    }

    if window.is_some() || idle_timeout.is_some() {
        run_streaming_merge(
            workers,
            config,
            shards,
            window,
            idle_timeout,
            gate,
            checkpoint_path.as_deref(),
            &flags,
            metrics_file,
            mux_config,
            trace_out,
        )
    } else {
        run_batch_merge(
            workers,
            config,
            shards,
            &flags,
            metrics_file,
            mux_config,
            trace_out,
        )
    }
}

/// Unwindowed merge: the same batch pipeline as `analyze` over the
/// fragment lanes, ending in the shared report printer.
fn run_batch_merge(
    workers: Vec<Worker>,
    config: AnalyzerConfig,
    shards: usize,
    flags: &HashMap<String, String>,
    mut metrics_file: Option<MetricsFile>,
    mux_config: MuxConfig,
    mut trace_out: Option<TraceOutput>,
) -> CmdResult {
    let analyzer: Analyzer = if shards > 1 {
        let mut par = ParallelAnalyzer::new(config, shards);
        let mh = par.metrics_handle();
        if let Some(t) = &trace_out {
            t.enable(&mh.trace, "merge");
        }
        let pairs = register_workers(&mh, &workers);
        let (sources, _) = into_sources(workers, trace_out.as_ref().map(|_| &mh.trace));
        let mut mux = CaptureMux::start(sources, mux_config, Some(&mh));
        let fed = feed(&mut mux, &mut par, &mut metrics_file, &pairs);
        if fed.is_err() {
            mark_incomplete_errored(&pairs);
        }
        fed?;
        sync_worker_metrics(&pairs);
        finish_mux(mux, &mut par)?;
        ParallelAnalyzer::finish(&mut par)?;
        if let Some(m) = &mut metrics_file {
            m.write(&par.metrics())?;
        }
        if let Some(t) = &mut trace_out {
            t.finish(&mh.trace)?;
        }
        par.into_analyzer()
    } else {
        let mut seq = Analyzer::new(config);
        let mh = seq.metrics_handle();
        if let Some(t) = &trace_out {
            t.enable(&mh.trace, "merge");
        }
        let pairs = register_workers(&mh, &workers);
        let (sources, _) = into_sources(workers, trace_out.as_ref().map(|_| &mh.trace));
        let mut mux = CaptureMux::start(sources, mux_config, Some(&mh));
        let fed = feed(&mut mux, &mut seq, &mut metrics_file, &pairs);
        if fed.is_err() {
            mark_incomplete_errored(&pairs);
        }
        fed?;
        sync_worker_metrics(&pairs);
        finish_mux(mux, &mut seq)?;
        if let Some(m) = &mut metrics_file {
            m.write(&seq.metrics())?;
        }
        if let Some(t) = &mut trace_out {
            t.finish(&mh.trace)?;
        }
        seq
    };
    print_report(&analyzer, flags)
}

/// Windowed merge: NDJSON window reports exactly as `analyze --window`
/// prints them, gated for checkpoint restore and checkpointed after
/// every emitted window.
#[allow(clippy::too_many_arguments)]
fn run_streaming_merge(
    workers: Vec<Worker>,
    config: AnalyzerConfig,
    shards: usize,
    window: Option<Duration>,
    idle_timeout: Option<Duration>,
    mut gate: WindowGate,
    checkpoint_path: Option<&str>,
    flags: &HashMap<String, String>,
    mut metrics_file: Option<MetricsFile>,
    mux_config: MuxConfig,
    mut trace_out: Option<TraceOutput>,
) -> CmdResult {
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: config,
        shards,
        window,
        idle_timeout,
        qoe: None,
    })?;

    let serve_handle = flags
        .get("serve")
        .map(|addr| serve::serve(addr.as_str(), engine.metrics_handle()))
        .transpose()
        .map_err(|e| CliError::io(format!("--serve: {e}")))?;
    if let Some(h) = &serve_handle {
        eprintln!(
            "serving /metrics, /healthz, and /debug/* on http://{}",
            h.local_addr()
        );
    }

    let mh = engine.metrics_handle();
    if let Some(t) = &trace_out {
        t.enable(&mh.trace, "merge");
    }
    let pairs = register_workers(&mh, &workers);
    let (sources, labels) = into_sources(workers, trace_out.as_ref().map(|_| &mh.trace));
    let mut mux = CaptureMux::start(sources, mux_config, Some(&mh));

    let save_checkpoint = |gate: &WindowGate| -> Result<(), CliError> {
        let Some(path) = checkpoint_path else {
            return Ok(());
        };
        use std::sync::atomic::Ordering;
        let cp = MergeCheckpoint {
            windows_emitted: gate.windows_seen(),
            workers: labels
                .iter()
                .zip(&pairs)
                .map(|(label, (acc, _))| WorkerMark {
                    label: label.clone(),
                    consumed: acc.records_received.load(Ordering::Acquire),
                })
                .collect(),
        };
        cp.save(std::path::Path::new(path))?;
        Ok(())
    };

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut batch = RecordBatch::new();
    loop {
        let link = match mux.next_batch(&mut batch, MUX_BATCH) {
            Ok(Some(link)) => link,
            Ok(None) => break,
            Err(e) => {
                // Surface which worker link(s) died in /debug/pipeline
                // and the final snapshot before propagating.
                mark_incomplete_errored(&pairs);
                return Err(e.into());
            }
        };
        engine.push_batch(&batch, link)?;
        sync_worker_metrics(&pairs);
        let mut wrote = false;
        for w in engine.take_windows() {
            if gate.admit() {
                writeln!(out, "{}", w.to_json()).map_err(|e| e.to_string())?;
                wrote = true;
            }
        }
        if wrote {
            out.flush().map_err(|e| e.to_string())?;
            save_checkpoint(&gate)?;
        }
        if let Some(m) = &mut metrics_file {
            engine.note_pcap_progress(mux.records_delivered(), mux.bytes_delivered());
            m.tick(batch.len() as u32, || engine.metrics())?;
        }
        if let Some(t) = &mut trace_out {
            t.drain(&mh.trace)?;
        }
    }
    sync_worker_metrics(&pairs);
    finish_mux(mux, &mut engine)?;
    let output = engine.drain()?;
    if let Some(m) = &mut metrics_file {
        m.write(&output.analyzer.metrics())?;
    }
    if let Some(t) = &mut trace_out {
        t.finish(&mh.trace)?;
    }
    writeln!(out, "{}", output.final_window.to_json()).map_err(|e| e.to_string())?;
    writeln!(out, "{}", output.report.to_json()).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    save_checkpoint(&gate)?;
    eprintln!(
        "merged {} packets from {} worker(s), peak tracked entries {}",
        output.report.summary.total_packets,
        labels.len(),
        output.peak_tracked_entries
    );
    if let Some(h) = serve_handle {
        // Graceful: stop accepting scrapes before the process exits so
        // a scraper mid-request gets a response, not a reset.
        h.shutdown();
    }
    Ok(())
}
