//! `zoom-tools analyze` — run the full passive analysis over one or more
//! packet sources and print the trace summary, per-meeting breakdown,
//! per-stream metrics, and latency estimates. Optionally export the
//! per-second ML feature matrix (§8).
//!
//! Input is either a positional pcap path (the classic single-file
//! shape) or any number of repeatable `--source` specs (`pcap:FILE`,
//! `sim:SCENARIO[,seed=N][,secs=N]`); both can be mixed. Multiple
//! sources are captured concurrently — one capture thread per source,
//! hand-off through bounded lock-free rings — and merged into one
//! deterministic timestamp-ordered stream, so an N-source run is
//! byte-identical to the equivalent single-source run (see
//! `docs/CAPTURE.md`).
//!
//! With `--window`, `--idle-timeout`, or `--follow` the command switches
//! to the streaming engine: one NDJSON line per closed window on stdout,
//! followed by the final end-of-trace report. `--follow` keeps polling
//! every pcap source for newly appended records (a live capture being
//! written by another process) until it has been quiet for `--idle-exit`
//! — the follow loop is source-agnostic, not tied to a single file.
//!
//! All three sinks (sequential, sharded, streaming) are fed through the
//! one `PacketSink` ingest loop. `--metrics <path>` writes an
//! observability snapshot file — JSON by default, Prometheus text
//! exposition when the path ends in `.prom` — rewritten every
//! `--metrics-interval` (default 5s, works with `--follow`) and once
//! more when the input is exhausted.
//!
//! Streaming mode adds live telemetry: `--serve ADDR` exposes
//! `GET /metrics` (Prometheus text, including the per-meeting
//! `zoom_qoe_*` labeled series) and `GET /healthz` on a std-only HTTP
//! endpoint for the duration of the run, and `--qoe-watch` runs the
//! degradation detector over every closed window, interleaving
//! `{"type":"qoe_alert",...}` NDJSON lines with the window reports on
//! stdout (thresholds: `--qoe-fps-floor`, `--qoe-jitter-ms`,
//! `--qoe-collapse-ratio`).
//!
//! `--trace out.ndjson` switches on sampled structured tracing: one
//! capture batch in every `--trace-sample` (default 16) gets a causal
//! trace ID, and every stage it crosses (source read, ring hand-off,
//! dissection, shard routing, window emission) appends a pinned-schema
//! span event to the file. `--self-profile out.folded` aggregates the
//! same samples into flamegraph-style folded stacks. Both are side
//! channels: reports and window NDJSON stay byte-identical with tracing
//! on or off. See `docs/OBSERVABILITY.md`.
//!
//! With `--emit-fragments TARGET` the command becomes a distributed
//! *worker* instead: the captured (and deterministically merged) records
//! are shipped over the `zoom_wire::frame` protocol — to a `merge
//! --listen` node when TARGET is a socket address, to a spool file
//! otherwise — along with this worker's capture accounting, and no local
//! analysis runs. `--worker-label` names the worker in the merge node's
//! `zoom_worker_*` metrics. See `docs/DISTRIBUTED.md`.

use super::sources::{build_sources, mux_flags};
use super::{campus_flag, parse_args_repeat, parse_duration, CliError, CmdResult, TraceOutput};
use std::collections::HashMap;
use std::io::Write as _;
use std::time::Duration;
use zoom_analysis::engine::{EngineConfig, QoeThresholds, StreamingEngine};
use zoom_analysis::features;
use zoom_analysis::obs::serve;
use zoom_analysis::metrics::stall::{analyze as stall_analyze, StallConfig};
use zoom_analysis::obs::MetricsSnapshot;
use zoom_analysis::parallel::ParallelAnalyzer;
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::PacketSink;
use zoom_capture::mux::{CaptureMux, MuxConfig};
use zoom_capture::source::{FollowConfig, PacketSource};
use zoom_wire::handoff::RecordBatch;
use zoom_wire::pcap::{LinkType, Reader, RecordBuf};
use zoom_wire::zoom::MediaType;

/// How many records one fan-in drain hands to the sink at once: large
/// enough to amortize the batch dissection setup across a type-sorted
/// pass, small enough that the copy arena stays cache-resident.
pub(crate) const MUX_BATCH: usize = 1024;

/// The `--metrics <path>` snapshot file: rewritten in place every
/// `--metrics-interval` while records flow, and once more at the end.
/// A `.prom` extension selects the Prometheus text exposition format;
/// anything else gets the JSON snapshot.
pub(crate) struct MetricsFile {
    path: String,
    prom: bool,
    interval: Duration,
    last: std::time::Instant,
    pushes: u32,
}

impl MetricsFile {
    pub(crate) fn from_flags(
        flags: &HashMap<String, String>,
    ) -> Result<Option<MetricsFile>, String> {
        let Some(path) = flags.get("metrics") else {
            return Ok(None);
        };
        let interval = flags
            .get("metrics-interval")
            .map(|v| parse_duration(v))
            .transpose()?
            .unwrap_or(Duration::from_secs(5));
        Ok(Some(MetricsFile {
            path: path.clone(),
            prom: path.ends_with(".prom"),
            interval,
            last: std::time::Instant::now(),
            pushes: 0,
        }))
    }

    /// Called after every push — one record on the single-reader path, a
    /// whole merged batch on the fan-in paths; rewrites the file when the
    /// interval has elapsed. The clock is only consulted once at least
    /// 256 records have accumulated, so the per-packet cost stays
    /// negligible.
    pub(crate) fn tick(
        &mut self,
        records: u32,
        snap: impl FnOnce() -> MetricsSnapshot,
    ) -> CmdResult {
        self.pushes = self.pushes.saturating_add(records);
        if self.pushes < 256 {
            return Ok(());
        }
        self.pushes = 0;
        if self.last.elapsed() < self.interval {
            return Ok(());
        }
        self.last = std::time::Instant::now();
        self.write(&snap())
    }

    pub(crate) fn write(&mut self, snap: &MetricsSnapshot) -> CmdResult {
        let body = if self.prom {
            snap.to_prom()
        } else {
            let mut json = snap.to_json();
            json.push('\n');
            json
        };
        std::fs::write(&self.path, body)
            .map_err(|e| CliError::io(format!("{}: {e}", self.path)))
    }
}

/// The one ingest loop every batch sink shares: buffer-reusing reads
/// pushed through [`PacketSink`], with periodic metrics snapshots.
fn feed_pcap<S: PacketSink, R: std::io::Read>(
    reader: &mut Reader<R>,
    sink: &mut S,
    link: LinkType,
    metrics_file: &mut Option<MetricsFile>,
) -> CmdResult {
    let mut buf = RecordBuf::new();
    while reader
        .read_into(&mut buf)
        .map_err(|e| CliError::protocol(e.to_string()))?
    {
        sink.push(buf.ts_nanos(), buf.data(), link)?;
        if let Some(m) = metrics_file {
            sink.note_pcap_progress(reader.records_read(), reader.bytes_read());
            m.tick(1, || sink.metrics())?;
        }
    }
    Ok(())
}

/// The multi-source ingest loop: records arrive pre-merged in timestamp
/// order from the capture fan-in, a whole run-extended batch at a time,
/// and enter the sink through the batched dissection path; progress
/// gauges come from the mux's delivered counts instead of a single
/// reader's.
fn feed_mux<S: PacketSink>(
    mux: &mut CaptureMux,
    sink: &mut S,
    metrics_file: &mut Option<MetricsFile>,
) -> CmdResult {
    let mut batch = RecordBatch::new();
    loop {
        let Some(link) = mux.next_batch(&mut batch, MUX_BATCH)? else {
            return Ok(());
        };
        sink.push_batch(&batch, link)?;
        if let Some(m) = metrics_file {
            sink.note_pcap_progress(mux.records_delivered(), mux.bytes_delivered());
            m.tick(batch.len() as u32, || sink.metrics())?;
        }
    }
}

/// Tear down the fan-in after ingest: surface capture errors, fold
/// source-side truncation into the sink's gauges, and warn like the
/// single-reader path always has.
pub(crate) fn finish_mux<S: PacketSink>(mux: CaptureMux, sink: &mut S) -> CmdResult {
    let truncated = mux.truncated_records();
    let drops = mux.ring_full_drops();
    mux.finish()?;
    sink.note_pcap_truncated(truncated);
    if truncated > 0 {
        eprintln!("warning: {truncated} truncated record(s) at source tails ignored");
    }
    if drops > 0 {
        eprintln!("warning: {drops} record(s) dropped at full capture rings (see ring_full_drops)");
    }
    Ok(())
}

/// Parse the `--qoe-*` flags into detector thresholds. `--qoe-watch`
/// enables the detector with defaults; any explicit threshold flag also
/// enables it.
fn qoe_flags(flags: &HashMap<String, String>) -> Result<Option<QoeThresholds>, String> {
    let mut t = QoeThresholds::default();
    let mut enabled = flags.contains_key("qoe-watch");
    let mut float = |key: &str, slot: &mut f64| -> Result<(), String> {
        if let Some(v) = flags.get(key) {
            *slot = v
                .parse::<f64>()
                .ok()
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or_else(|| format!("--{key} expects a non-negative number, got {v:?}"))?;
            enabled = true;
        }
        Ok(())
    };
    float("qoe-fps-floor", &mut t.fps_floor)?;
    float("qoe-jitter-ms", &mut t.jitter_ceiling_ms)?;
    float("qoe-collapse-ratio", &mut t.collapse_ratio)?;
    Ok(enabled.then_some(t))
}

pub fn run(args: &[String]) -> CmdResult {
    let (pos, flags, source_specs) =
        parse_args_repeat(args, &["follow", "json", "qoe-watch", "lossy"], &["source"])?;
    let campus = campus_flag(&flags)?;
    let shards: usize = match flags.get("shards") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--shards expects a positive integer, got {v:?}"))?,
        None => 1,
    };
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let window = flags.get("window").map(|v| parse_duration(v)).transpose()?;
    let idle_timeout = flags
        .get("idle-timeout")
        .map(|v| parse_duration(v))
        .transpose()?;
    let follow = flags.contains_key("follow");
    let idle_exit = flags
        .get("idle-exit")
        .map(|v| parse_duration(v))
        .transpose()?
        .unwrap_or(Duration::from_secs(5));
    let qoe = qoe_flags(&flags)?;
    let mux_config = mux_flags(&flags)?;
    let mut metrics_file = MetricsFile::from_flags(&flags)?;
    let trace_out = TraceOutput::from_flags(&flags)?;

    // `--family auto|zoom|webrtc` selects which protocol families the
    // dissector probes for; bad values are configuration errors (exit 3).
    let family = flags
        .get("family")
        .map(|v| {
            v.parse::<zoom_wire::family::FamilySelect>()
                .map_err(|e| CliError::config(e.to_string()))
        })
        .transpose()?
        .unwrap_or_default();

    let config = AnalyzerConfig::builder()
        .campus_prefix(campus.0, campus.1)
        .family(family)
        .build()?;

    // The fragment-emitting worker path: capture and merge the sources
    // exactly as analysis would, but ship the merged records (plus this
    // worker's capture accounting) to a merge node instead of analyzing
    // them locally. See docs/DISTRIBUTED.md.
    if let Some(target) = flags.get("emit-fragments") {
        let follow_cfg = follow.then_some(FollowConfig {
            poll: Duration::from_millis(200),
            idle_exit,
        });
        let label = flags
            .get("worker-label")
            .cloned()
            .unwrap_or_else(|| "worker".to_string());
        let sources = build_sources(&pos, &source_specs, follow_cfg)?;
        return run_emit(sources, target, &label, mux_config, trace_out);
    }

    let streaming = window.is_some() || idle_timeout.is_some() || follow;
    if qoe.is_some() && window.is_none() {
        return Err("--qoe-watch needs --window: the detector evaluates closed windows".into());
    }
    if flags.contains_key("serve") && !streaming {
        return Err("--serve needs streaming mode (--window, --idle-timeout, or --follow)".into());
    }
    if streaming {
        // Streaming always goes through the capture fan-in, so follow
        // mode is source-agnostic: every pcap source polls its own file.
        let follow_cfg = follow.then_some(FollowConfig {
            poll: Duration::from_millis(200),
            idle_exit,
        });
        let sources = build_sources(&pos, &source_specs, follow_cfg)?;
        return run_streaming(
            sources,
            config,
            shards,
            window,
            idle_timeout,
            qoe,
            &flags,
            metrics_file,
            mux_config,
            trace_out,
        );
    }
    // Tracing samples at batch boundaries, so a traced run always goes
    // through the capture fan-in — the differential suites pin the
    // single-file and fan-in paths byte-identical, so the report is
    // unchanged; only the trace side channel appears.
    if !source_specs.is_empty() || pos.len() > 1 || trace_out.is_some() {
        let sources = build_sources(&pos, &source_specs, None)?;
        return run_batch_mux(
            sources,
            config,
            shards,
            &flags,
            metrics_file,
            mux_config,
            trace_out,
        );
    }

    // Legacy single-file batch path: a direct buffer-reusing reader loop
    // with no capture threads — the zero-copy fast path benchmarked in
    // BENCH_ingest.json stays intact.
    let [input] = pos.as_slice() else {
        return Err("no input: give a pcap path or at least one --source".into());
    };
    let file = std::fs::File::open(input).map_err(|e| CliError::io(format!("{input}: {e}")))?;
    let mut reader = Reader::new(std::io::BufReader::new(file))
        .map_err(|e| CliError::protocol(format!("{input}: {e}")))?;
    let link = reader.link_type();
    // The sharded path produces byte-identical results for any shard
    // count; --shards 1 keeps everything on the calling thread. Both
    // sinks go through the same PacketSink feed loop, which reuses one
    // record buffer — zero steady-state allocations in the read loop.
    let analyzer: Analyzer = if shards > 1 {
        let mut par = ParallelAnalyzer::new(config, shards);
        feed_pcap(&mut reader, &mut par, link, &mut metrics_file)?;
        par.note_pcap_truncated(reader.truncated_records());
        ParallelAnalyzer::finish(&mut par)?;
        if let Some(m) = &mut metrics_file {
            m.write(&par.metrics())?;
        }
        par.into_analyzer()
    } else {
        let mut seq = Analyzer::new(config);
        feed_pcap(&mut reader, &mut seq, link, &mut metrics_file)?;
        seq.note_pcap_truncated(reader.truncated_records());
        if let Some(m) = &mut metrics_file {
            m.write(&seq.metrics())?;
        }
        seq
    };
    if reader.truncated_records() > 0 {
        eprintln!(
            "warning: {} truncated record(s) at end of {input} ignored",
            reader.truncated_records()
        );
    }

    print_report(&analyzer, &flags)
}

/// The multi-source batch path: capture threads fan records into the
/// analysis sink through the lock-free rings, then the same report as
/// the single-file path is printed — byte-identical for equivalent
/// inputs (see `tests/multi_source_differential.rs`).
fn run_batch_mux(
    sources: Vec<Box<dyn PacketSource>>,
    config: AnalyzerConfig,
    shards: usize,
    flags: &HashMap<String, String>,
    mut metrics_file: Option<MetricsFile>,
    mux_config: MuxConfig,
    mut trace_out: Option<TraceOutput>,
) -> CmdResult {
    let analyzer: Analyzer = if shards > 1 {
        let mut par = ParallelAnalyzer::new(config, shards);
        let mh = par.metrics_handle();
        if let Some(t) = &trace_out {
            t.enable(&mh.trace, "analyze");
        }
        let mut mux = CaptureMux::start(sources, mux_config, Some(&mh));
        feed_mux(&mut mux, &mut par, &mut metrics_file)?;
        finish_mux(mux, &mut par)?;
        ParallelAnalyzer::finish(&mut par)?;
        if let Some(m) = &mut metrics_file {
            m.write(&par.metrics())?;
        }
        if let Some(t) = &mut trace_out {
            t.finish(&mh.trace)?;
        }
        par.into_analyzer()
    } else {
        let mut seq = Analyzer::new(config);
        let mh = seq.metrics_handle();
        if let Some(t) = &trace_out {
            t.enable(&mh.trace, "analyze");
        }
        let mut mux = CaptureMux::start(sources, mux_config, Some(&mh));
        feed_mux(&mut mux, &mut seq, &mut metrics_file)?;
        finish_mux(mux, &mut seq)?;
        if let Some(m) = &mut metrics_file {
            m.write(&seq.metrics())?;
        }
        if let Some(t) = &mut trace_out {
            t.finish(&mh.trace)?;
        }
        seq
    };
    print_report(&analyzer, flags)
}

/// The human-readable (or `--json`) end-of-run report, shared by the
/// legacy single-file path and the multi-source fan-in path.
pub(crate) fn print_report(analyzer: &Analyzer, flags: &HashMap<String, String>) -> CmdResult {
    if flags.contains_key("json") {
        println!("{}", analyzer.report().to_json());
        export_features(analyzer, flags)?;
        return Ok(());
    }

    let summary = analyzer.summary();
    println!("=== trace summary ===");
    println!("packets:      {}", summary.total_packets);
    println!(
        "zoom packets: {} ({} bytes)",
        summary.zoom_packets, summary.zoom_bytes
    );
    println!("zoom flows:   {}", summary.zoom_flows);
    println!("rtp streams:  {}", summary.rtp_streams);
    println!("meetings:     {}", summary.meetings);
    println!("duration:     {:.1} s", summary.duration_nanos as f64 / 1e9);
    let (dp, db) = analyzer.classifier().decoded_fraction();
    println!(
        "decoded:      {:.1} % pkts / {:.1} % bytes",
        dp * 100.0,
        db * 100.0
    );

    // RTT context feeds the stall analysis threshold.
    let rtts = analyzer.rtp_rtt_samples();
    let mean_rtt_nanos = if rtts.is_empty() {
        50_000_000
    } else {
        (rtts.iter().map(|s| s.rtt_nanos).sum::<u64>() / rtts.len() as u64).max(1)
    };

    println!("\n=== meetings ===");
    for m in analyzer.meetings() {
        println!(
            "meeting {}: {} visible participant(s), {} stream(s), servers {:?}",
            m.id,
            m.participant_estimate,
            m.streams.len(),
            m.servers
        );
    }

    println!("\n=== streams ===");
    for s in analyzer.streams().iter() {
        let frames = s.frames.as_ref().map(|f| f.frames().len()).unwrap_or(0);
        print!(
            "  {} ssrc=0x{:02x} [{}] pkts={} rate={:.0} kbit/s frames={} jitter={:.2} ms",
            s.key.flow,
            s.key.ssrc,
            s.media_type.label(),
            s.packets,
            s.mean_media_bitrate() / 1e3,
            frames,
            s.frame_jitter.jitter_ms(),
        );
        if let Some(f) = &s.frames {
            let report = stall_analyze(
                f.frames(),
                StallConfig {
                    rtt_nanos: mean_rtt_nanos,
                    ..Default::default()
                },
            );
            if !report.stalls.is_empty() || report.retransmission_recovered > 0 {
                print!(
                    " stalls={} ({:.0} ms) retx-frames={}",
                    report.stalls.len(),
                    report.stalled_nanos as f64 / 1e6,
                    report.retransmission_recovered
                );
            }
        }
        println!();
    }

    if !rtts.is_empty() {
        println!(
            "\nRTT to SFU (RTP copies): {} samples, mean {:.1} ms",
            rtts.len(),
            mean_rtt_nanos as f64 / 1e6
        );
    }
    let tcp = analyzer.tcp_rtt_samples();
    if !tcp.is_empty() {
        let mean = tcp.iter().map(|s| s.rtt_ms()).sum::<f64>() / tcp.len() as f64;
        println!(
            "RTT via TCP control:     {} samples, mean {mean:.1} ms",
            tcp.len()
        );
    }

    export_features(analyzer, flags)?;
    Ok(())
}

/// The streaming path: NDJSON window reports as windows close, then the
/// final report, all on stdout. All sources — including a followed,
/// still-growing pcap — are captured concurrently and merged through
/// the fan-in, so the ingest loop below never knows (or cares) how many
/// files or simulated taps are behind it.
#[allow(clippy::too_many_arguments)]
fn run_streaming(
    sources: Vec<Box<dyn PacketSource>>,
    config: AnalyzerConfig,
    shards: usize,
    window: Option<Duration>,
    idle_timeout: Option<Duration>,
    qoe: Option<QoeThresholds>,
    flags: &HashMap<String, String>,
    mut metrics_file: Option<MetricsFile>,
    mux_config: MuxConfig,
    mut trace_out: Option<TraceOutput>,
) -> CmdResult {
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: config,
        shards,
        window,
        idle_timeout,
        qoe,
    })?;

    // The scrape endpoint holds only the metrics Arc, so it serves live
    // snapshots for the whole run and stops when the handle drops.
    let serve_handle = flags
        .get("serve")
        .map(|addr| serve::serve(addr.as_str(), engine.metrics_handle()))
        .transpose()
        .map_err(|e| format!("--serve: {e}"))?;
    if let Some(h) = &serve_handle {
        eprintln!(
            "serving /metrics, /healthz, and /debug/* on http://{}",
            h.addr()
        );
    }

    let mh = engine.metrics_handle();
    if let Some(t) = &trace_out {
        t.enable(&mh.trace, "analyze");
    }
    let mut mux = CaptureMux::start(sources, mux_config, Some(&mh));

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    // next_batch blocks (sleeping) only when nothing is buffered and a
    // live source is quiet — a followed pcap keeps its lane alive until
    // its own idle-exit elapses, so follow semantics are per source, not
    // global — and hands back a partial batch rather than sitting on
    // buffered records, so window emission latency matches the
    // per-record loop it replaced.
    let mut batch = RecordBatch::new();
    while let Some(link) = mux.next_batch(&mut batch, MUX_BATCH)? {
        engine.push_batch(&batch, link)?;
        let mut wrote = false;
        for w in engine.take_windows() {
            writeln!(out, "{}", w.to_json()).map_err(|e| e.to_string())?;
            wrote = true;
        }
        for a in engine.take_alerts() {
            writeln!(out, "{}", a.to_json()).map_err(|e| e.to_string())?;
            wrote = true;
        }
        if wrote {
            // Live followers tail this NDJSON; don't sit on closed
            // windows while the mux waits for quiet sources.
            out.flush().map_err(|e| e.to_string())?;
        }
        if let Some(m) = &mut metrics_file {
            engine.note_pcap_progress(mux.records_delivered(), mux.bytes_delivered());
            m.tick(batch.len() as u32, || engine.metrics())?;
        }
        if let Some(t) = &mut trace_out {
            t.drain(&mh.trace)?;
        }
    }
    finish_mux(mux, &mut engine)?;
    // Alerts from windows the last pushes closed; drain itself cuts a
    // partial window the detector deliberately skips.
    for a in engine.take_alerts() {
        writeln!(out, "{}", a.to_json()).map_err(|e| e.to_string())?;
    }
    let output = engine.drain()?;
    // The final snapshot is written after drain: only once the shard
    // workers have quiesced does the conservation invariant hold.
    if let Some(m) = &mut metrics_file {
        m.write(&output.analyzer.metrics())?;
    }
    if let Some(t) = &mut trace_out {
        t.finish(&mh.trace)?;
    }
    writeln!(out, "{}", output.final_window.to_json()).map_err(|e| e.to_string())?;
    writeln!(out, "{}", output.report.to_json()).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "streamed {} packets, peak tracked entries {}",
        output.report.summary.total_packets, output.peak_tracked_entries
    );
    export_features(&output.analyzer, flags)?;
    Ok(())
}

/// The worker half of the distributed tier: capture + deterministic
/// merge exactly as analysis would, but the merged records — plus this
/// worker's accounting — leave over the `zoom_wire::frame` protocol
/// (to a TCP merge node when `target` parses as a socket address, to a
/// spool file otherwise) instead of entering a local analyzer.
fn run_emit(
    sources: Vec<Box<dyn PacketSource>>,
    target: &str,
    label: &str,
    mux_config: MuxConfig,
    mut trace_out: Option<TraceOutput>,
) -> CmdResult {
    use zoom_analysis::obs::trace::spans;
    use zoom_analysis::obs::PipelineMetrics;
    use zoom_capture::source::BATCH_RECORDS;
    use zoom_wire::frame::{FrameWriter, Totals};

    // One fragment stream carries one link type (the Hello pins it),
    // mirroring the one-link rule a pcap file has.
    let link = sources[0].link_type();
    if let Some(s) = sources.iter().find(|s| s.link_type() != link) {
        return Err(CliError::config(format!(
            "sources disagree on link type ({:?} vs {:?}); emit one fragment stream per link",
            link,
            s.link_type()
        )));
    }
    let out: Box<dyn std::io::Write + Send> =
        if let Ok(addr) = target.parse::<std::net::SocketAddr>() {
            Box::new(
                std::net::TcpStream::connect(addr)
                    .map_err(|e| CliError::io(format!("{target}: {e}")))?,
            )
        } else {
            Box::new(
                std::fs::File::create(target)
                    .map_err(|e| CliError::io(format!("{target}: {e}")))?,
            )
        };
    let mut writer = FrameWriter::new(std::io::BufWriter::new(out), label, link)
        .map_err(|e| CliError::io(format!("{target}: {e}")))?;

    // Tracing on a worker stamps sampled batches at its own capture
    // sources and ships their span events as `Trace` frames, each
    // annotating the `Records` frame that follows it — so the merge
    // node can stitch this worker's capture-side spans to its own by
    // trace ID. Untraced runs pass `None` and the byte stream is
    // identical to one from a build that never heard of tracing.
    let worker_metrics = trace_out.as_ref().map(|t| {
        let m = PipelineMetrics::new(0);
        t.enable(&m.trace, &format!("worker:{label}"));
        m
    });
    let mut mux = CaptureMux::start(sources, mux_config, worker_metrics.as_ref());
    // The mux batches the merged stream itself (run extension over the
    // winning lane), so every non-empty drain becomes one wire frame.
    let mut batch = RecordBatch::new();
    let mut frames = 0u64;
    while mux.next_batch(&mut batch, BATCH_RECORDS)?.is_some() {
        if batch.trace_id != 0 {
            let m = worker_metrics.as_ref().expect("traced batch implies metrics");
            m.trace.record(
                batch.trace_id,
                spans::FRAGMENT_ENCODE,
                label,
                batch.len() as u64,
                0,
            );
            let ndjson = m.trace.drain_trace_ndjson(batch.trace_id);
            writer
                .write_trace(batch.trace_id, ndjson.as_bytes())
                .map_err(|e| CliError::io(format!("{target}: {e}")))?;
        }
        writer
            .write_batch(&batch)
            .map_err(|e| CliError::io(format!("{target}: {e}")))?;
        frames += 1;
    }

    let delivered = mux.records_delivered();
    let bytes = mux.bytes_delivered();
    let drops = mux.ring_full_drops();
    let truncated = mux.truncated_records();
    mux.finish()?;
    writer
        .finish(Totals {
            packets: delivered + drops,
            bytes,
            batches: frames,
            ring_full_drops: drops,
            truncated,
        })
        .map_err(|e| CliError::io(format!("{target}: {e}")))?;
    if truncated > 0 {
        eprintln!("warning: {truncated} truncated record(s) at source tails ignored");
    }
    if drops > 0 {
        eprintln!("warning: {drops} record(s) dropped at full capture rings (see ring_full_drops)");
    }
    eprintln!(
        "worker {label}: emitted {delivered} record(s) ({bytes} bytes) in {frames} frame(s) to {target}"
    );
    // Events whose Records frame never followed (e.g. a final partial
    // batch) land in the local trace file instead of the wire.
    if let (Some(t), Some(m)) = (&mut trace_out, &worker_metrics) {
        t.finish(&m.trace)?;
    }
    Ok(())
}

/// Optional ML feature export (`--features out.csv`).
fn export_features(analyzer: &Analyzer, flags: &HashMap<String, String>) -> CmdResult {
    let Some(path) = flags.get("features") else {
        return Ok(());
    };
    let mut out = std::io::BufWriter::new(
        std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?,
    );
    let mut total = 0usize;
    let mut first = true;
    for s in analyzer.streams().of_type(MediaType::Video) {
        let rows = features::extract_features(s);
        total += rows.len();
        let csv = features::to_csv(&rows);
        let body = if first {
            first = false;
            csv
        } else {
            // Skip the header on subsequent streams.
            csv.split_once('\n').map(|x| x.1).unwrap_or("").to_string()
        };
        out.write_all(body.as_bytes()).map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())?;
    eprintln!("wrote {total} feature rows to {path}");
    Ok(())
}
