//! `zoom-tools analyze` — run the full passive analysis over a pcap file
//! and print the trace summary, per-meeting breakdown, per-stream metrics,
//! and latency estimates. Optionally export the per-second ML feature
//! matrix (§8).

use super::{campus_flag, parse_args, CmdResult};
use std::io::Write as _;
use zoom_analysis::features;
use zoom_analysis::metrics::stall::{analyze as stall_analyze, StallConfig};
use zoom_analysis::parallel::ParallelAnalyzer;
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_wire::pcap::Reader;
use zoom_wire::zoom::MediaType;

pub fn run(args: &[String]) -> CmdResult {
    let (pos, flags) = parse_args(args)?;
    let [input] = pos.as_slice() else {
        return Err("analyze needs exactly one input pcap".into());
    };
    let campus = campus_flag(&flags)?;
    let shards: usize = match flags.get("shards") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--shards expects a positive integer, got {v:?}"))?,
        None => 1,
    };
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }

    let file = std::fs::File::open(input).map_err(|e| format!("{input}: {e}"))?;
    let mut reader =
        Reader::new(std::io::BufReader::new(file)).map_err(|e| format!("{input}: {e}"))?;
    let link = reader.link_type();
    let config = AnalyzerConfig {
        campus: vec![campus],
        ..Default::default()
    };
    // The sharded path produces byte-identical results for any shard
    // count; --shards 1 keeps everything on the calling thread.
    let analyzer: Analyzer = if shards > 1 {
        let mut par = ParallelAnalyzer::new(config, shards);
        while let Some(record) = reader.next_record().map_err(|e| e.to_string())? {
            par.process_record(&record, link);
        }
        par.into_analyzer()
    } else {
        let mut seq = Analyzer::new(config);
        while let Some(record) = reader.next_record().map_err(|e| e.to_string())? {
            seq.process_record(&record, link);
        }
        seq
    };

    let summary = analyzer.summary();
    println!("=== trace summary ===");
    println!("packets:      {}", summary.total_packets);
    println!(
        "zoom packets: {} ({} bytes)",
        summary.zoom_packets, summary.zoom_bytes
    );
    println!("zoom flows:   {}", summary.zoom_flows);
    println!("rtp streams:  {}", summary.rtp_streams);
    println!("meetings:     {}", summary.meetings);
    println!("duration:     {:.1} s", summary.duration_nanos as f64 / 1e9);
    let (dp, db) = analyzer.classifier().decoded_fraction();
    println!(
        "decoded:      {:.1} % pkts / {:.1} % bytes",
        dp * 100.0,
        db * 100.0
    );

    // RTT context feeds the stall analysis threshold.
    let rtts = analyzer.rtp_rtt_samples();
    let mean_rtt_nanos = if rtts.is_empty() {
        50_000_000
    } else {
        (rtts.iter().map(|s| s.rtt_nanos).sum::<u64>() / rtts.len() as u64).max(1)
    };

    println!("\n=== meetings ===");
    for m in analyzer.meetings() {
        println!(
            "meeting {}: {} visible participant(s), {} stream(s), servers {:?}",
            m.id,
            m.participant_estimate,
            m.streams.len(),
            m.servers
        );
    }

    println!("\n=== streams ===");
    for s in analyzer.streams().iter() {
        let frames = s.frames.as_ref().map(|f| f.frames().len()).unwrap_or(0);
        print!(
            "  {} ssrc=0x{:02x} [{}] pkts={} rate={:.0} kbit/s frames={} jitter={:.2} ms",
            s.key.flow,
            s.key.ssrc,
            s.media_type.label(),
            s.packets,
            s.mean_media_bitrate() / 1e3,
            frames,
            s.frame_jitter.jitter_ms(),
        );
        if let Some(f) = &s.frames {
            let report = stall_analyze(
                f.frames(),
                StallConfig {
                    rtt_nanos: mean_rtt_nanos,
                    ..Default::default()
                },
            );
            if !report.stalls.is_empty() || report.retransmission_recovered > 0 {
                print!(
                    " stalls={} ({:.0} ms) retx-frames={}",
                    report.stalls.len(),
                    report.stalled_nanos as f64 / 1e6,
                    report.retransmission_recovered
                );
            }
        }
        println!();
    }

    if !rtts.is_empty() {
        println!(
            "\nRTT to SFU (RTP copies): {} samples, mean {:.1} ms",
            rtts.len(),
            mean_rtt_nanos as f64 / 1e6
        );
    }
    let tcp = analyzer.tcp_rtt_samples();
    if !tcp.is_empty() {
        let mean = tcp.iter().map(|s| s.rtt_ms()).sum::<f64>() / tcp.len() as f64;
        println!(
            "RTT via TCP control:     {} samples, mean {mean:.1} ms",
            tcp.len()
        );
    }

    // Optional ML feature export.
    if let Some(path) = flags.get("features") {
        let mut out = std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?,
        );
        let mut total = 0usize;
        let mut first = true;
        for s in analyzer.streams().of_type(MediaType::Video) {
            let rows = features::extract_features(s);
            total += rows.len();
            let csv = features::to_csv(&rows);
            let body = if first {
                first = false;
                csv
            } else {
                // Skip the header on subsequent streams.
                csv.split_once('\n').map(|x| x.1).unwrap_or("").to_string()
            };
            out.write_all(body.as_bytes()).map_err(|e| e.to_string())?;
        }
        out.flush().map_err(|e| e.to_string())?;
        println!("\nwrote {total} feature rows to {path}");
    }
    Ok(())
}
