//! `zoom-tools capture` — run the live capture front-end on its own:
//! N concurrent sources fan into one deterministic timestamp-ordered
//! stream through bounded lock-free rings, optionally filtered and
//! anonymized by the capture pipeline (the software Tofino), and written
//! to a single output pcap.
//!
//! This is `filter` generalized to the multi-source world: where
//! `filter` reads one file inline, `capture` runs one capture thread per
//! `--source` (pcap files, followed growing files, or `sim:` live taps)
//! and merges them — the offline stand-in for a port-mirrored
//! multi-tap deployment. `--no-filter` skips classification and writes
//! every merged record, turning the command into a pure capture merger.
//!
//! Capture-side accounting flows into the same observability registry
//! `analyze` uses: `--metrics PATH` snapshots per-source
//! `zoom_source_*` series plus the capture-stage counters, and the
//! extended conservation invariant (`Σ source_packets == packets_in +
//! Σ ring_full_drops`) holds over the written file.

use super::sources::{build_sources, mux_flags};
use super::{campus_flag, parse_args_repeat, parse_duration, CmdResult};
use std::time::Duration;
use zoom_analysis::obs::{CaptureMetricsSnapshot, PipelineMetrics};
use zoom_capture::anonymize::{Anonymizer, Mode};
use zoom_capture::cidr::{Cidr, PrefixMap};
use zoom_capture::mux::CaptureMux;
use zoom_capture::pipeline::{CapturePipeline, PipelineConfig};
use zoom_capture::source::FollowConfig;
use zoom_capture::zoom_nets;
use zoom_wire::pcap::{LinkType, Record, Writer};

pub fn run(args: &[String]) -> CmdResult {
    let (pos, flags, source_specs) =
        parse_args_repeat(args, &["follow", "lossy", "no-filter"], &["source"])?;
    let [output] = pos.as_slice() else {
        return Err("capture needs exactly one output pcap; give inputs with --source".into());
    };
    if source_specs.is_empty() {
        return Err("capture needs at least one --source (pcap:PATH or sim:SPEC)".into());
    }
    let (campus_ip, campus_len) = campus_flag(&flags)?;
    let anonymizer = flags
        .get("anonymize")
        .map(|key| {
            key.parse::<u64>()
                .map(|k| Anonymizer::new(k, Mode::PrefixPreserving))
                .map_err(|_| "--anonymize takes a numeric key".to_string())
        })
        .transpose()?;
    let filtering = !flags.contains_key("no-filter");
    if !filtering && anonymizer.is_some() {
        return Err("--anonymize needs the filter pipeline (drop --no-filter)".into());
    }
    let follow = flags.contains_key("follow");
    let idle_exit = flags
        .get("idle-exit")
        .map(|v| parse_duration(v))
        .transpose()?
        .unwrap_or(Duration::from_secs(5));
    let follow_cfg = follow.then_some(FollowConfig {
        poll: Duration::from_millis(200),
        idle_exit,
    });
    let mux_config = mux_flags(&flags)?;

    let family = flags
        .get("family")
        .map(|v| {
            v.parse::<zoom_wire::family::FamilySelect>()
                .map_err(|e| super::CliError::config(e.to_string()))
        })
        .transpose()?
        .unwrap_or(zoom_wire::family::FamilySelect::Only(
            zoom_wire::family::FamilyId::Zoom,
        ));
    let mut pipeline = filtering
        .then(|| -> Result<CapturePipeline, String> {
            let mut campus_nets = PrefixMap::new();
            let std::net::IpAddr::V4(v4) = campus_ip else {
                return Err("campus must be IPv4".into());
            };
            campus_nets.insert(Cidr::new(v4, campus_len), ());
            Ok(CapturePipeline::new(PipelineConfig {
                campus_nets,
                excluded_nets: PrefixMap::new(),
                // The sample of Zoom's published list; swap in the full
                // feed in a real deployment.
                zoom_list: zoom_nets::sample_list(),
                stun_timeout_nanos: 120 * 1_000_000_000,
                anonymizer,
                family,
            }))
        })
        .transpose()?;

    // Per-source series register against this standalone registry; the
    // verdict counters below keep its conservation invariant intact.
    let metrics = PipelineMetrics::new(0);
    let sources = build_sources(&[], &source_specs, follow_cfg)?;
    let mut mux = CaptureMux::start(sources, mux_config, Some(&metrics));

    // The output link type is pinned by the first merged record; a pcap
    // file cannot mix link types, so heterogeneous sources are an error.
    let mut writer: Option<Writer<std::io::BufWriter<std::fs::File>>> = None;
    let mut out_link = LinkType::Ethernet;
    let mut rec = Record {
        ts_nanos: 0,
        orig_len: 0,
        data: Vec::new(),
    };
    let mut written = 0u64;
    let mut written_bytes = 0u64;
    while let Some(r) = mux.next_record().map_err(|e| e.to_string())? {
        metrics.record_in(r.data.len());
        match &writer {
            None => {
                let outfile =
                    std::fs::File::create(output).map_err(|e| format!("{output}: {e}"))?;
                writer = Some(
                    Writer::new(std::io::BufWriter::new(outfile), r.link)
                        .map_err(|e| format!("{output}: {e}"))?,
                );
                out_link = r.link;
            }
            Some(_) if r.link != out_link => {
                return Err(format!(
                    "sources disagree on link type ({:?} vs {:?}); a pcap holds exactly one",
                    out_link, r.link
                )
                .into());
            }
            Some(_) => {}
        }
        let w = writer.as_mut().expect("writer created above");
        if let Some(p) = &mut pipeline {
            rec.ts_nanos = r.ts_nanos;
            rec.orig_len = r.orig_len;
            rec.data.clear();
            rec.data.extend_from_slice(r.data);
            let (verdict, passed) = p.process_record(&rec, r.link);
            if verdict.passes() {
                metrics.packets_classified.inc();
            } else if verdict == zoom_capture::pipeline::Verdict::Unparseable {
                metrics.drop_malformed.inc();
            } else {
                metrics.packets_not_zoom.inc();
            }
            if let Some(out) = passed {
                written += 1;
                written_bytes += out.data.len() as u64;
                w.write_record(&out).map_err(|e| e.to_string())?;
            }
        } else {
            // Pass-through merge: every record counts as accepted.
            metrics.packets_classified.inc();
            rec.ts_nanos = r.ts_nanos;
            rec.orig_len = r.orig_len;
            rec.data.clear();
            rec.data.extend_from_slice(r.data);
            written += 1;
            written_bytes += rec.data.len() as u64;
            w.write_record(&rec).map_err(|e| e.to_string())?;
        }
    }
    if let Some(w) = writer.take() {
        w.finish().map_err(|e| e.to_string())?;
    } else {
        // No records at all: still produce a valid (empty) pcap.
        let outfile = std::fs::File::create(output).map_err(|e| format!("{output}: {e}"))?;
        Writer::new(std::io::BufWriter::new(outfile), out_link)
            .map_err(|e| format!("{output}: {e}"))?
            .finish()
            .map_err(|e| e.to_string())?;
    }

    let truncated = mux.truncated_records();
    let ring_drops = mux.ring_full_drops();
    let lane_stats: Vec<_> = (0..mux.sources()).map(|i| mux.lane_stats(i)).collect();
    let delivered = mux.records_delivered();
    mux.finish().map_err(|e| e.to_string())?;
    metrics.pcap_truncated_records.set(truncated);
    metrics.pcap_records_read.set(delivered);

    if let Some(path) = flags.get("metrics") {
        let mut snap = metrics.snapshot();
        if let Some(p) = &pipeline {
            let c = p.counters();
            snap.capture = Some(CaptureMetricsSnapshot {
                total: c.total,
                excluded: c.excluded,
                zoom_ip_matched: c.zoom_ip_matched,
                stun_registered: c.stun_registered,
                p2p_matched: c.p2p_matched,
                rtc_stun_registered: c.rtc_stun_registered,
                rtc_p2p_matched: c.rtc_p2p_matched,
                dropped: c.dropped,
                unparseable: c.unparseable,
                passed: c.passed,
                passed_bytes: c.passed_bytes,
                total_bytes: c.total_bytes,
            });
        }
        debug_assert!(snap.conservation_holds());
        let body = if path.ends_with(".prom") {
            snap.to_prom()
        } else {
            let mut s = snap.to_json();
            s.push('\n');
            s
        };
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
    }

    for s in &lane_stats {
        eprintln!(
            "source {}: {} packets ({} bytes) in {} batches, {} ring-full drops{}",
            s.label,
            s.packets,
            s.bytes,
            s.batches,
            s.ring_full_drops,
            if s.truncated > 0 {
                format!(", {} truncated", s.truncated)
            } else {
                String::new()
            }
        );
    }
    if truncated > 0 {
        eprintln!("warning: {truncated} truncated record(s) at source tails ignored");
    }
    if ring_drops > 0 {
        eprintln!("warning: {ring_drops} record(s) dropped at full capture rings (see ring_full_drops)");
    }
    eprintln!(
        "captured {delivered} merged packets from {} source(s) -> {written} written ({written_bytes} bytes) to {output}",
        lane_stats.len()
    );
    Ok(())
}
