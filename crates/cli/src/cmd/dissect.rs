//! `zoom-tools dissect` — print Wireshark-plugin-style field trees for the
//! packets of a pcap file (Appendix C).

use super::{parse_args, CliError, CmdResult};
use zoom_wire::dissect::{dissect, render_tree, P2pProbe, Probe, WebrtcProbe};
use zoom_wire::family::{FamilyId, FamilySelect};
use zoom_wire::pcap::Reader;

pub fn run(args: &[String]) -> CmdResult {
    let (pos, flags) = parse_args(args, &[])?;
    let [input] = pos.as_slice() else {
        return Err("dissect needs exactly one input pcap".into());
    };
    let max: usize = flags
        .get("max")
        .map(|v| v.parse().map_err(|_| "--max must be a number".to_string()))
        .transpose()?
        .unwrap_or(25);
    let family = flags
        .get("family")
        .map(|v| {
            v.parse::<FamilySelect>()
                .map_err(|e| CliError::config(e.to_string()))
        })
        .transpose()?
        .unwrap_or_default();
    // Dissection is display-only, so probe eagerly: analysis-side session
    // gating doesn't apply, and showing every recognizable layer is the
    // point of the tool.
    let probe = match family {
        FamilySelect::Auto => Probe {
            zoom: true,
            p2p: P2pProbe::Auto,
            webrtc: WebrtcProbe::Auto,
        },
        FamilySelect::Only(FamilyId::Zoom) => Probe::from(P2pProbe::Auto),
        other => other.probe(),
    };

    let file = std::fs::File::open(input).map_err(|e| format!("{input}: {e}"))?;
    let mut reader =
        Reader::new(std::io::BufReader::new(file)).map_err(|e| format!("{input}: {e}"))?;
    let link = reader.link_type();
    let mut index = 0u64;
    let mut shown = 0usize;
    while let Some(record) = reader.next_record().map_err(|e| e.to_string())? {
        index += 1;
        if shown >= max {
            break;
        }
        match dissect(record.ts_nanos, &record.data, link, probe) {
            Ok(d) => {
                println!("--- packet {index} ({} bytes) ---", record.data.len());
                print!("{}", render_tree(&d));
                shown += 1;
            }
            Err(e) => println!("--- packet {index}: not dissectable ({e}) ---"),
        }
    }
    Ok(())
}
