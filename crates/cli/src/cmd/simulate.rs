//! `zoom-tools simulate` — generate a synthetic Zoom capture for testing
//! downstream tooling (including this repository's own `analyze`).

use super::{parse_args, CmdResult};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::{LinkType, Writer};

pub fn run(args: &[String]) -> CmdResult {
    let (pos, flags) = parse_args(args, &[])?;
    let [output] = pos.as_slice() else {
        return Err("simulate needs exactly one output pcap".into());
    };
    let seconds: u64 = flags
        .get("seconds")
        .map(|v| {
            v.parse()
                .map_err(|_| "--seconds must be a number".to_string())
        })
        .transpose()?
        .unwrap_or(60);
    let seed: u64 = flags
        .get("seed")
        .map(|v| v.parse().map_err(|_| "--seed must be a number".to_string()))
        .transpose()?
        .unwrap_or(7);
    let scenario_name = flags
        .get("scenario")
        .map(String::as_str)
        .unwrap_or("validation");

    let configs = match scenario_name {
        "validation" => {
            let mut cfg = scenario::validation_experiment(seed);
            for p in &mut cfg.participants {
                p.leave_at = seconds * SEC;
            }
            vec![cfg]
        }
        "p2p" => vec![scenario::p2p_meeting(seed, seconds * SEC)],
        "multi" => vec![scenario::multi_party(seed, seconds * SEC)],
        "churn" => scenario::churn(seed, seconds * SEC),
        other => {
            return Err(format!(
                "unknown scenario '{other}' (validation|p2p|multi|churn)"
            ))
        }
    };

    let file = std::fs::File::create(output).map_err(|e| format!("{output}: {e}"))?;
    let mut writer = Writer::new(std::io::BufWriter::new(file), LinkType::Ethernet)
        .map_err(|e| e.to_string())?;
    // Multi-meeting scenarios interleave by timestamp so the capture
    // looks like one border tap observing them all.
    let mut records: Vec<_> = configs.into_iter().flat_map(MeetingSim::new).collect();
    records.sort_by_key(|r| r.ts_nanos);
    let mut packets = 0u64;
    let mut bytes = 0u64;
    for record in records {
        packets += 1;
        bytes += record.data.len() as u64;
        writer.write_record(&record).map_err(|e| e.to_string())?;
    }
    writer.finish().map_err(|e| e.to_string())?;
    eprintln!("wrote {packets} packets ({bytes} bytes) of '{scenario_name}' traffic to {output}");
    Ok(())
}
