//! `zoom-tools simulate` — generate a synthetic Zoom capture for testing
//! downstream tooling (including this repository's own `analyze`).

use super::sources::scenario_records;
use super::{parse_args, CmdResult};
use zoom_wire::pcap::{LinkType, Writer};

pub fn run(args: &[String]) -> CmdResult {
    let (pos, flags) = parse_args(args, &[])?;
    let [output] = pos.as_slice() else {
        return Err("simulate needs exactly one output pcap".into());
    };
    let seconds: u64 = flags
        .get("seconds")
        .map(|v| {
            v.parse()
                .map_err(|_| "--seconds must be a number".to_string())
        })
        .transpose()?
        .unwrap_or(60);
    let seed: u64 = flags
        .get("seed")
        .map(|v| v.parse().map_err(|_| "--seed must be a number".to_string()))
        .transpose()?
        .unwrap_or(7);
    let scenario_name = flags
        .get("scenario")
        .map(String::as_str)
        .unwrap_or("validation");

    // The same generator backs `--source sim:SPEC`, so a simulated file
    // and a simulated live source with matching parameters are
    // record-identical.
    let records = scenario_records(scenario_name, seed, seconds)?;

    let file = std::fs::File::create(output).map_err(|e| format!("{output}: {e}"))?;
    let mut writer = Writer::new(std::io::BufWriter::new(file), LinkType::Ethernet)
        .map_err(|e| e.to_string())?;
    let mut packets = 0u64;
    let mut bytes = 0u64;
    for record in records {
        packets += 1;
        bytes += record.data.len() as u64;
        writer.write_record(&record).map_err(|e| e.to_string())?;
    }
    writer.finish().map_err(|e| e.to_string())?;
    eprintln!("wrote {packets} packets ({bytes} bytes) of '{scenario_name}' traffic to {output}");
    Ok(())
}
