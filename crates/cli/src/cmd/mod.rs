//! Subcommand implementations, the tiny shared flag parser, and the
//! [`CliError`] exit-code mapping.

pub mod analyze;
pub mod capture;
pub mod discover;
pub mod dissect;
pub mod filter;
pub mod merge;
pub mod simulate;
pub mod sources;

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// A subcommand failure carrying the process exit code alongside the
/// message, so scripts can branch on *why* a run failed without parsing
/// stderr. The mapping (also in `docs/DISTRIBUTED.md`):
///
/// | code | meaning                                                |
/// |------|--------------------------------------------------------|
/// | 1    | generic runtime failure                                |
/// | 2    | usage (bad subcommand / malformed arguments)           |
/// | 3    | invalid configuration (bad flag value, bad `--source`) |
/// | 4    | parse / wire-protocol error (malformed pcap, fragment) |
/// | 5    | I/O failure (file or socket)                           |
/// | 6    | an analysis shard panicked                             |
/// | 7    | checkpoint unreadable or mismatched on restore         |
///
/// [`zoom_analysis::Error`] and [`zoom_analysis::dist::MergeError`] are
/// both `#[non_exhaustive]`; the `From` impls below map their variants
/// and default any future ones to code 1.
#[derive(Debug)]
pub struct CliError {
    /// The process exit code for this failure.
    pub code: u8,
    /// The human-readable message printed to stderr.
    pub message: String,
}

impl CliError {
    /// Code 3: a flag or spec value that parsed but is invalid.
    pub fn config(message: impl Into<String>) -> CliError {
        CliError {
            code: 3,
            message: message.into(),
        }
    }

    /// Code 4: input bytes violating an expected format or protocol.
    pub fn protocol(message: impl Into<String>) -> CliError {
        CliError {
            code: 4,
            message: message.into(),
        }
    }

    /// Code 5: an I/O failure, prefixed with the path or peer.
    pub fn io(message: impl Into<String>) -> CliError {
        CliError {
            code: 5,
            message: message.into(),
        }
    }

}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError { code: 1, message }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> CliError {
        message.to_string().into()
    }
}

impl From<zoom_analysis::Error> for CliError {
    fn from(e: zoom_analysis::Error) -> CliError {
        use zoom_analysis::Error;
        let code = match &e {
            Error::Io { .. } => 5,
            Error::Parse(_) => 4,
            Error::Config(_) => 3,
            Error::ShardPanic(_) => 6,
            _ => 1,
        };
        CliError {
            code,
            message: e.to_string(),
        }
    }
}

impl From<zoom_analysis::dist::MergeError> for CliError {
    fn from(e: zoom_analysis::dist::MergeError) -> CliError {
        use zoom_analysis::dist::MergeError;
        let code = match &e {
            MergeError::Io { .. } => 5,
            MergeError::Protocol(_) => 4,
            MergeError::Checkpoint(_) | MergeError::Mismatch(_) => 7,
            _ => 1,
        };
        CliError {
            code,
            message: e.to_string(),
        }
    }
}

impl From<zoom_capture::spec::SpecError> for CliError {
    fn from(e: zoom_capture::spec::SpecError) -> CliError {
        CliError::config(e.to_string())
    }
}

impl From<zoom_capture::source::SourceError> for CliError {
    fn from(e: zoom_capture::source::SourceError) -> CliError {
        use zoom_capture::source::SourceError;
        match e {
            SourceError::Io(err) => CliError::io(err.to_string()),
            other => CliError::protocol(other.to_string()),
        }
    }
}

/// Result alias for subcommands.
pub type CmdResult = Result<(), CliError>;

/// Split arguments into positional values and `--flag value` pairs.
///
/// Flags listed in `bool_flags` take no value (`--follow`); they appear
/// in the map with an empty-string value so `flags.contains_key` works.
pub fn parse_args(
    args: &[String],
    bool_flags: &[&str],
) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let (pos, flags, _) = parse_args_repeat(args, bool_flags, &[])?;
    Ok((pos, flags))
}

/// Positional arguments, last-one-wins flag map, and repeated flags in
/// occurrence order — the result shape of [`parse_args_repeat`].
pub type ParsedArgs = (Vec<String>, HashMap<String, String>, Vec<(String, String)>);

/// Like [`parse_args`], but flags listed in `repeat_flags` may appear
/// multiple times (`--source a --source b`); their occurrences are
/// returned in order as `(name, value)` pairs instead of landing in the
/// last-one-wins map.
pub fn parse_args_repeat(
    args: &[String],
    bool_flags: &[&str],
    repeat_flags: &[&str],
) -> Result<ParsedArgs, String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut repeated = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if bool_flags.contains(&name) {
                flags.insert(name.to_string(), String::new());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                if repeat_flags.contains(&name) {
                    repeated.push((name.to_string(), value.clone()));
                } else {
                    flags.insert(name.to_string(), value.clone());
                }
                i += 2;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok((positional, flags, repeated))
}

/// Parse a human-friendly duration: `10s`, `500ms`, `2m`, or a bare
/// number of seconds (`10`). Fractions are accepted (`1.5s`).
pub fn parse_duration(spec: &str) -> Result<Duration, String> {
    let spec = spec.trim();
    let (num, scale_nanos) = if let Some(v) = spec.strip_suffix("ms") {
        (v, 1_000_000.0)
    } else if let Some(v) = spec.strip_suffix('s') {
        (v, 1e9)
    } else if let Some(v) = spec.strip_suffix('m') {
        (v, 60.0 * 1e9)
    } else {
        (spec, 1e9)
    };
    let value: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad duration {spec:?} (expected e.g. 10s, 500ms, 2m)"))?;
    if !value.is_finite() || value <= 0.0 {
        return Err(format!("duration {spec:?} must be positive"));
    }
    let nanos = value * scale_nanos;
    if nanos > u64::MAX as f64 {
        return Err(format!("duration {spec:?} is too large"));
    }
    Ok(Duration::from_nanos(nanos as u64))
}

/// The `--trace FILE` / `--trace-sample N` / `--self-profile FILE`
/// flags, shared by `analyze` and `merge`: sampled structured-tracing
/// NDJSON to `FILE`, one batch in every `N` traced (default 16), and an
/// optional flamegraph-style folded-stacks profile of per-stage
/// latencies. Everything is a side channel — reports and window NDJSON
/// on stdout are byte-identical with tracing on or off.
pub struct TraceOutput {
    file: Option<std::io::BufWriter<std::fs::File>>,
    profile_path: Option<String>,
    sample: u64,
}

impl TraceOutput {
    /// Build from parsed flags; `Ok(None)` when no tracing flag is
    /// present. `--trace-sample` without `--trace`/`--self-profile` is a
    /// configuration error.
    pub fn from_flags(flags: &HashMap<String, String>) -> Result<Option<TraceOutput>, CliError> {
        let path = flags.get("trace");
        let profile_path = flags.get("self-profile").cloned();
        let sample = match flags.get("trace-sample") {
            Some(v) => v.parse::<u64>().ok().filter(|n| *n > 0).ok_or_else(|| {
                CliError::config(format!(
                    "--trace-sample expects a positive integer, got {v:?}"
                ))
            })?,
            None => 16,
        };
        if path.is_none() && profile_path.is_none() {
            if flags.contains_key("trace-sample") {
                return Err(CliError::config(
                    "--trace-sample needs --trace FILE or --self-profile FILE",
                ));
            }
            return Ok(None);
        }
        let file = path
            .map(|p| {
                std::fs::File::create(p)
                    .map(std::io::BufWriter::new)
                    .map_err(|e| CliError::io(format!("{p}: {e}")))
            })
            .transpose()?;
        Ok(Some(TraceOutput {
            file,
            profile_path,
            sample,
        }))
    }

    /// Switch the collector on under this run's node label.
    pub fn enable(&self, trace: &zoom_analysis::obs::trace::TraceCollector, node: &str) {
        trace.enable(self.sample, node);
    }

    /// Append everything queued for export to the trace file. Called
    /// periodically from ingest loops so long `--follow` runs never hit
    /// the collector's bounded-queue drop path.
    pub fn drain(&mut self, trace: &zoom_analysis::obs::trace::TraceCollector) -> CmdResult {
        let Some(f) = &mut self.file else {
            return Ok(());
        };
        let lines = trace.drain_ndjson();
        if !lines.is_empty() {
            use std::io::Write as _;
            f.write_all(lines.as_bytes())
                .map_err(|e| CliError::io(format!("--trace: {e}")))?;
        }
        Ok(())
    }

    /// Final drain + flush, then the folded-stacks profile when asked
    /// for; reports the recorded/dropped totals on stderr.
    pub fn finish(&mut self, trace: &zoom_analysis::obs::trace::TraceCollector) -> CmdResult {
        self.drain(trace)?;
        if let Some(f) = &mut self.file {
            use std::io::Write as _;
            f.flush().map_err(|e| CliError::io(format!("--trace: {e}")))?;
        }
        if let Some(p) = &self.profile_path {
            std::fs::write(p, trace.folded_stacks())
                .map_err(|e| CliError::io(format!("{p}: {e}")))?;
        }
        let (recorded, dropped) = trace.event_counts();
        eprintln!("trace: {recorded} span event(s) recorded, {dropped} dropped");
        Ok(())
    }
}

/// Parse a `--campus` CIDR flag into the `(addr, len)` form the analyzer
/// uses; defaults to 10.8.0.0/16.
pub fn campus_flag(flags: &HashMap<String, String>) -> Result<(std::net::IpAddr, u8), String> {
    let spec = flags
        .get("campus")
        .map(String::as_str)
        .unwrap_or("10.8.0.0/16");
    zoom_analysis::pipeline::parse_cidr(spec).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_positional_and_flags() {
        let (pos, flags) = parse_args(&s(&["a.pcap", "--max", "5", "b.pcap"]), &[]).unwrap();
        assert_eq!(pos, vec!["a.pcap", "b.pcap"]);
        assert_eq!(flags.get("max").unwrap(), "5");
    }

    #[test]
    fn missing_flag_value_errors() {
        assert!(parse_args(&s(&["--max"]), &[]).is_err());
    }

    #[test]
    fn bool_flags_take_no_value() {
        let (pos, flags) =
            parse_args(&s(&["--follow", "a.pcap", "--max", "5"]), &["follow"]).unwrap();
        assert_eq!(pos, vec!["a.pcap"]);
        assert!(flags.contains_key("follow"));
        assert_eq!(flags.get("max").unwrap(), "5");
    }

    #[test]
    fn repeat_flags_preserve_order() {
        let (pos, flags, repeated) = parse_args_repeat(
            &s(&["--source", "pcap:a", "--shards", "2", "--source", "sim:p2p"]),
            &[],
            &["source"],
        )
        .unwrap();
        assert!(pos.is_empty());
        assert_eq!(flags.get("shards").unwrap(), "2");
        assert_eq!(
            repeated,
            vec![
                ("source".to_string(), "pcap:a".to_string()),
                ("source".to_string(), "sim:p2p".to_string()),
            ]
        );
    }

    #[test]
    fn durations_parse() {
        assert_eq!(parse_duration("10s").unwrap(), Duration::from_secs(10));
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("2m").unwrap(), Duration::from_secs(120));
        assert_eq!(parse_duration("10").unwrap(), Duration::from_secs(10));
        assert_eq!(
            parse_duration("1.5s").unwrap(),
            Duration::from_millis(1_500)
        );
        assert!(parse_duration("0s").is_err());
        assert!(parse_duration("-1s").is_err());
        assert!(parse_duration("junk").is_err());
    }

    #[test]
    fn campus_default_and_custom() {
        let (_, flags) = parse_args(&s(&[]), &[]).unwrap();
        let (ip, len) = campus_flag(&flags).unwrap();
        assert_eq!(ip.to_string(), "10.8.0.0");
        assert_eq!(len, 16);
        let (_, flags) = parse_args(&s(&["--campus", "192.168.0.0/24"]), &[]).unwrap();
        let (ip, len) = campus_flag(&flags).unwrap();
        assert_eq!(ip.to_string(), "192.168.0.0");
        assert_eq!(len, 24);
        let (_, flags) = parse_args(&s(&["--campus", "junk"]), &[]).unwrap();
        assert!(campus_flag(&flags).is_err());
    }
}
