//! Subcommand implementations and the tiny shared flag parser.

pub mod analyze;
pub mod discover;
pub mod dissect;
pub mod filter;
pub mod simulate;

use std::collections::HashMap;

/// Result alias for subcommands.
pub type CmdResult = Result<(), String>;

/// Split arguments into positional values and `--flag value` pairs.
pub fn parse_args(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
            i += 2;
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok((positional, flags))
}

/// Parse a `--campus` CIDR flag into the `(addr, len)` form the analyzer
/// uses; defaults to 10.8.0.0/16.
pub fn campus_flag(flags: &HashMap<String, String>) -> Result<(std::net::IpAddr, u8), String> {
    let spec = flags
        .get("campus")
        .map(String::as_str)
        .unwrap_or("10.8.0.0/16");
    let (addr, len) = spec
        .split_once('/')
        .ok_or_else(|| format!("bad CIDR {spec}"))?;
    Ok((
        addr.parse().map_err(|e| format!("bad CIDR {spec}: {e}"))?,
        len.parse().map_err(|e| format!("bad CIDR {spec}: {e}"))?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_positional_and_flags() {
        let (pos, flags) = parse_args(&s(&["a.pcap", "--max", "5", "b.pcap"])).unwrap();
        assert_eq!(pos, vec!["a.pcap", "b.pcap"]);
        assert_eq!(flags.get("max").unwrap(), "5");
    }

    #[test]
    fn missing_flag_value_errors() {
        assert!(parse_args(&s(&["--max"])).is_err());
    }

    #[test]
    fn campus_default_and_custom() {
        let (_, flags) = parse_args(&s(&[])).unwrap();
        let (ip, len) = campus_flag(&flags).unwrap();
        assert_eq!(ip.to_string(), "10.8.0.0");
        assert_eq!(len, 16);
        let (_, flags) = parse_args(&s(&["--campus", "192.168.0.0/24"])).unwrap();
        let (ip, len) = campus_flag(&flags).unwrap();
        assert_eq!(ip.to_string(), "192.168.0.0");
        assert_eq!(len, 24);
        let (_, flags) = parse_args(&s(&["--campus", "junk"])).unwrap();
        assert!(campus_flag(&flags).is_err());
    }
}
