//! `zoom-tools filter` — run the capture pipeline (the software Tofino)
//! over a pcap, writing only Zoom packets, optionally anonymized: the
//! offline equivalent of the paper's data-plane deployment.

use super::{campus_flag, parse_args, CmdResult};
use zoom_analysis::obs::{CaptureMetricsSnapshot, PipelineMetrics};
use zoom_capture::anonymize::{Anonymizer, Mode};
use zoom_capture::cidr::{Cidr, PrefixMap};
use zoom_capture::pipeline::{CapturePipeline, PipelineConfig};
use zoom_capture::zoom_nets;
use zoom_wire::pcap::{Reader, Writer};

pub fn run(args: &[String]) -> CmdResult {
    let (pos, flags) = parse_args(args, &[])?;
    let [input, output] = pos.as_slice() else {
        return Err("filter needs <in.pcap> <out.pcap>".into());
    };
    let (campus_ip, campus_len) = campus_flag(&flags)?;
    let anonymizer = flags
        .get("anonymize")
        .map(|key| {
            key.parse::<u64>()
                .map(|k| Anonymizer::new(k, Mode::PrefixPreserving))
                .map_err(|_| "--anonymize takes a numeric key".to_string())
        })
        .transpose()?;

    let mut campus_nets = PrefixMap::new();
    let std::net::IpAddr::V4(v4) = campus_ip else {
        return Err("campus must be IPv4".into());
    };
    campus_nets.insert(Cidr::new(v4, campus_len), ());

    let family = flags
        .get("family")
        .map(|v| {
            v.parse::<zoom_wire::family::FamilySelect>()
                .map_err(|e| super::CliError::config(e.to_string()))
        })
        .transpose()?
        .unwrap_or(zoom_wire::family::FamilySelect::Only(
            zoom_wire::family::FamilyId::Zoom,
        ));

    let mut pipeline = CapturePipeline::new(PipelineConfig {
        campus_nets,
        excluded_nets: PrefixMap::new(),
        // The sample of Zoom's published list; swap in the full feed in a
        // real deployment.
        zoom_list: zoom_nets::sample_list(),
        stun_timeout_nanos: 120 * 1_000_000_000,
        anonymizer,
        family,
    });

    let infile = std::fs::File::open(input).map_err(|e| format!("{input}: {e}"))?;
    let mut reader =
        Reader::new(std::io::BufReader::new(infile)).map_err(|e| format!("{input}: {e}"))?;
    let link = reader.link_type();
    let outfile = std::fs::File::create(output).map_err(|e| format!("{output}: {e}"))?;
    let mut writer = Writer::new(std::io::BufWriter::new(outfile), link)
        .map_err(|e| format!("{output}: {e}"))?;

    while let Some(record) = reader.next_record().map_err(|e| e.to_string())? {
        let (_, passed) = pipeline.process_record(&record, link);
        if let Some(out) = passed {
            writer.write_record(&out).map_err(|e| e.to_string())?;
        }
    }
    writer.finish().map_err(|e| e.to_string())?;

    let c = pipeline.counters();
    if let Some(path) = flags.get("metrics") {
        // The capture stage has no dissect/shard pipeline behind it, so the
        // base snapshot is empty; only the `capture` section is populated.
        let mut snap = PipelineMetrics::new(0).snapshot();
        snap.capture = Some(CaptureMetricsSnapshot {
            total: c.total,
            excluded: c.excluded,
            zoom_ip_matched: c.zoom_ip_matched,
            stun_registered: c.stun_registered,
            p2p_matched: c.p2p_matched,
            rtc_stun_registered: c.rtc_stun_registered,
            rtc_p2p_matched: c.rtc_p2p_matched,
            dropped: c.dropped,
            unparseable: c.unparseable,
            passed: c.passed,
            passed_bytes: c.passed_bytes,
            total_bytes: c.total_bytes,
        });
        let body = if path.ends_with(".prom") {
            snap.to_prom()
        } else {
            let mut s = snap.to_json();
            s.push('\n');
            s
        };
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
    }
    eprintln!(
        "filtered {} -> {} packets ({:.1} %); server {}, stun {}, p2p {}, dropped {}",
        c.total,
        c.passed,
        100.0 * c.passed as f64 / c.total.max(1) as f64,
        c.zoom_ip_matched,
        c.stun_registered,
        c.p2p_matched,
        c.dropped
    );
    Ok(())
}
