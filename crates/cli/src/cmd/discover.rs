//! `zoom-tools discover` — the §4.2 reverse-engineering blueprint against
//! an arbitrary pcap: classify field positions per UDP flow, scan for RTP
//! signatures, and hunt RTCP by learned SSRCs.

use super::{parse_args, CmdResult};
use std::collections::HashMap;
use zoom_analysis::entropy::{find_rtcp_by_ssrc, find_rtp_offsets, scan_flow, FieldClass};
use zoom_wire::dissect::{dissect, P2pProbe, Transport};
use zoom_wire::flow::FiveTuple;
use zoom_wire::pcap::Reader;

pub fn run(args: &[String]) -> CmdResult {
    let (pos, flags) = parse_args(args, &[])?;
    let [input] = pos.as_slice() else {
        return Err("discover needs exactly one input pcap".into());
    };
    let max_offset: usize = flags
        .get("max-offset")
        .map(|v| {
            v.parse()
                .map_err(|_| "--max-offset must be a number".to_string())
        })
        .transpose()?
        .unwrap_or(48);

    let file = std::fs::File::open(input).map_err(|e| format!("{input}: {e}"))?;
    let mut reader =
        Reader::new(std::io::BufReader::new(file)).map_err(|e| format!("{input}: {e}"))?;
    let link = reader.link_type();
    let mut flows: HashMap<FiveTuple, Vec<(u64, Vec<u8>)>> = HashMap::new();
    while let Some(record) = reader.next_record().map_err(|e| e.to_string())? {
        if let Ok(d) = dissect(record.ts_nanos, &record.data, link, P2pProbe::Off) {
            if matches!(d.transport, Transport::Udp { .. }) {
                flows
                    .entry(d.five_tuple)
                    .or_default()
                    .push((d.ts_nanos, d.payload.to_vec()));
            }
        }
    }
    type FlowPackets = Vec<(FiveTuple, Vec<(u64, Vec<u8>)>)>;
    let mut ordered: FlowPackets = flows.into_iter().collect();
    ordered.sort_by_key(|(_, v)| std::cmp::Reverse(v.len()));

    for (flow, packets) in ordered.iter().take(5) {
        if packets.len() < 50 {
            continue;
        }
        println!("=== flow {flow} ({} packets) ===", packets.len());
        // Confident field classifications.
        for (offset, width, class, sig) in scan_flow(packets, max_offset) {
            if class == FieldClass::Mixed {
                continue;
            }
            println!(
                "  +{offset:<3} w{width}  {class:<14?} entropy={:.2} distinct={}",
                sig.normalized_entropy, sig.distinct
            );
        }
        // RTP signature scan.
        let hits = find_rtp_offsets(packets, max_offset);
        for (offset, frac) in &hits {
            println!(
                "  RTP header at offset {offset} ({:.0} % structural match)",
                frac * 100.0
            );
        }
        // RTCP by SSRC correlation.
        if let Some(&(off, _)) = hits.first() {
            let mut ssrcs = std::collections::HashSet::new();
            let mut non_rtp = Vec::new();
            for (t, p) in packets {
                if p.len() >= off + 12 && zoom_wire::rtp::Packet::new_checked(&p[off..]).is_ok() {
                    ssrcs.insert(zoom_wire::rtp::Packet::new_unchecked(&p[off..]).ssrc());
                } else {
                    non_rtp.push((*t, p.clone()));
                }
            }
            let ssrcs: Vec<u32> = ssrcs.into_iter().collect();
            println!("  SSRCs: {ssrcs:x?}");
            let mut rtcp_hits: Vec<(usize, usize)> =
                find_rtcp_by_ssrc(&non_rtp, &ssrcs).into_iter().collect();
            rtcp_hits.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            for (offset, count) in rtcp_hits.iter().take(3) {
                println!("  SSRC seen at offset {offset} in {count} non-RTP packets (RTCP?)");
            }
        }
        println!();
    }
    Ok(())
}
