//! End-to-end tests for the structured-tracing tier: worker-side span
//! events shipped over `ZFRG` `Trace` frames must stitch into the merge
//! node's collector by trace ID, the exported NDJSON schema is pinned,
//! and tracing is strictly a side channel — enabling it changes no byte
//! of window or report output.
//!
//! * A 2-worker fragment run with per-worker collectors (node
//!   `worker:wN`) merged through `FragmentSource::with_trace` yields
//!   traces whose IDs carry both worker-side spans (`source_read`,
//!   `fragment_encode`) and merge-side spans (`merge_decode`,
//!   `dissect`, `engine_push`) — the cross-process stitch.
//! * Every exported line matches the pinned `trace_span` schema, keys
//!   in pinned order, `trace_id` zero-padded 16-hex.
//! * The traced merge's windows and final report are byte-identical to
//!   the same fragments merged with tracing off.

use std::collections::BTreeMap;
use std::io::Cursor;
use std::sync::Arc;
use std::time::Duration;
use zoom_analysis::engine::{EngineConfig, EngineOutput, StreamingEngine};
use zoom_analysis::obs::trace::{spans, TraceCollector};
use zoom_analysis::pipeline::AnalyzerConfig;
use zoom_analysis::report::WindowReport;
use zoom_analysis::PacketSink;
use zoom_capture::fragment::FragmentSource;
use zoom_capture::mux::{CaptureMux, MuxConfig, Overflow};
use zoom_capture::source::PacketSource;
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::frame::{FrameWriter, Totals};
use zoom_wire::handoff::RecordBatch;
use zoom_wire::pcap::{LinkType, Record};

/// Strictly increasing timestamps pin a single valid merge order, so
/// the traced-vs-untraced differential below is unambiguous.
fn strictly_increasing_records(seed: u64, secs: u64) -> Vec<Record> {
    let mut records: Vec<Record> =
        MeetingSim::new(scenario::multi_party(seed, secs * SEC)).collect();
    records.sort_by_key(|r| r.ts_nanos);
    let mut last = 0u64;
    for r in &mut records {
        if r.ts_nanos <= last {
            r.ts_nanos = last + 1;
        }
        last = r.ts_nanos;
    }
    records
}

fn split_round_robin(records: &[Record], n: usize) -> Vec<Vec<Record>> {
    let mut parts = vec![Vec::new(); n];
    for (i, r) in records.iter().enumerate() {
        parts[i % n].push(r.clone());
    }
    parts
}

/// Encode one worker's fragment stream the way a traced
/// `analyze --emit-fragments --trace` worker ships it: a per-worker
/// collector samples batches, records worker-side spans, and a `Trace`
/// frame carrying that trace's NDJSON precedes each tagged `Records`
/// frame. With `sample_every == 0` this degrades to the plain untraced
/// stream (no `Trace` frames at all — backwards compatible).
fn frame_stream(records: &[Record], label: &str, sample_every: u64) -> Vec<u8> {
    let tc = TraceCollector::new();
    if sample_every > 0 {
        tc.enable(sample_every, &format!("worker:{label}"));
    }
    let mut w = FrameWriter::new(Vec::new(), label, LinkType::Ethernet).expect("header");
    let mut batch = RecordBatch::new();
    let mut bytes = 0u64;
    let mut frames = 0u64;
    for chunk in records.chunks(64) {
        batch.clear();
        for r in chunk {
            batch.push(r.ts_nanos, r.orig_len, &r.data);
            bytes += r.data.len() as u64;
        }
        if let Some(id) = tc.sample() {
            batch.trace_id = id;
            tc.record(id, spans::SOURCE_READ, label, batch.len() as u64, 0);
            tc.record(id, spans::FRAGMENT_ENCODE, label, batch.len() as u64, 0);
            w.write_trace(id, tc.drain_trace_ndjson(id).as_bytes())
                .expect("trace frame");
        }
        w.write_batch(&batch).expect("records frame");
        frames += 1;
    }
    w.finish(Totals {
        packets: records.len() as u64,
        bytes,
        batches: frames,
        ring_full_drops: 0,
        truncated: 0,
    })
    .expect("bye frame")
}

/// Merge the fragment splits exactly as `zoom-tools merge --trace`
/// wires it: `FragmentSource` lanes (stitching collectors when traced)
/// through the fan-in into the batched engine path. Returns the drained
/// trace NDJSON alongside the analysis output.
fn merge_run(
    splits: &[Vec<Record>],
    sample_every: u64,
) -> (Vec<WindowReport>, EngineOutput, String) {
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: AnalyzerConfig::default(),
        shards: 1,
        window: Some(Duration::from_secs(5)),
        idle_timeout: None,
        qoe: None,
    })
    .expect("valid engine config");
    let mh = engine.metrics_handle();
    if sample_every > 0 {
        mh.trace.enable(sample_every, "merge");
    }
    let sources: Vec<Box<dyn PacketSource>> = splits
        .iter()
        .enumerate()
        .map(|(i, recs)| {
            let stream = frame_stream(recs, &format!("w{i}"), sample_every);
            let mut src = FragmentSource::open(Cursor::new(stream)).expect("valid stream");
            if sample_every > 0 {
                src = src.with_trace(Arc::clone(&mh.trace));
            }
            let wm = mh.register_worker(src.worker_label());
            let _ = wm;
            Box::new(src) as Box<dyn PacketSource>
        })
        .collect();
    let mut mux = CaptureMux::start(
        sources,
        MuxConfig {
            ring_capacity: 8,
            overflow: Overflow::Block,
        },
        Some(&mh),
    );
    let mut windows = Vec::new();
    let mut batch = RecordBatch::new();
    while let Some(link) = mux.next_batch(&mut batch, 512).expect("mux batch") {
        engine.push_batch(&batch, link).expect("push");
        windows.extend(engine.take_windows());
    }
    mux.finish().expect("capture teardown");
    let out = engine.drain().expect("drain");
    let ndjson = mh.trace.drain_ndjson();
    (windows, out, ndjson)
}

/// Pull `"key":"value"` (string) out of a pinned-schema line.
fn str_field<'a>(line: &'a str, key: &str) -> &'a str {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag).unwrap_or_else(|| panic!("{key} in {line}")) + tag.len();
    let end = line[start..].find('"').expect("closing quote") + start;
    &line[start..end]
}

#[test]
fn two_worker_traces_stitch_across_the_wire() {
    let records = strictly_increasing_records(17, 20);
    assert!(records.len() > 500);
    let splits = split_round_robin(&records, 2);
    let (_, _, ndjson) = merge_run(&splits, 1);

    // Group spans by trace ID: node + span names seen under each.
    let mut by_trace: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    for line in ndjson.lines() {
        by_trace
            .entry(str_field(line, "trace_id").to_string())
            .or_default()
            .push((
                str_field(line, "node").to_string(),
                str_field(line, "span").to_string(),
            ));
    }
    assert!(!by_trace.is_empty(), "traced run exported no spans");

    let mut stitched = 0usize;
    let mut worker_nodes_seen: Vec<String> = Vec::new();
    for (tid, spans_seen) in &by_trace {
        let workers: Vec<&str> = spans_seen
            .iter()
            .filter(|(n, _)| n.starts_with("worker:"))
            .map(|(n, _)| n.as_str())
            .collect();
        let merges: Vec<&str> = spans_seen
            .iter()
            .filter(|(n, _)| n == "merge")
            .map(|(_, s)| s.as_str())
            .collect();
        if workers.is_empty() || merges.is_empty() {
            continue;
        }
        stitched += 1;
        // Worker-side spans made it across the wire under this ID...
        let worker_spans: Vec<&str> = spans_seen
            .iter()
            .filter(|(n, _)| n.starts_with("worker:"))
            .map(|(_, s)| s.as_str())
            .collect();
        assert!(
            worker_spans.contains(&spans::SOURCE_READ)
                && worker_spans.contains(&spans::FRAGMENT_ENCODE),
            "trace {tid}: worker spans incomplete: {worker_spans:?}"
        );
        // ...and the merge node continued the same trace through decode
        // and the engine.
        assert!(
            merges.contains(&spans::MERGE_DECODE),
            "trace {tid}: no merge_decode span: {merges:?}"
        );
        worker_nodes_seen.extend(workers.iter().map(|w| w.to_string()));
    }
    assert!(stitched > 0, "no trace stitched worker and merge spans");
    assert!(
        worker_nodes_seen.iter().any(|w| w == "worker:w0")
            && worker_nodes_seen.iter().any(|w| w == "worker:w1"),
        "expected spans from both workers, saw {worker_nodes_seen:?}"
    );
    // The merge-side pipeline stages show up somewhere in the export.
    let all: String = ndjson.clone();
    for span in [spans::DISSECT, spans::ENGINE_PUSH, spans::SHARD_ROUTE] {
        assert!(
            all.contains(&format!("\"span\":\"{span}\"")),
            "missing merge-side {span} span"
        );
    }
}

#[test]
fn trace_ndjson_schema_is_pinned() {
    let records = strictly_increasing_records(5, 10);
    let splits = split_round_robin(&records, 2);
    let (_, _, ndjson) = merge_run(&splits, 1);
    assert!(!ndjson.is_empty());
    for line in ndjson.lines() {
        // Keys in pinned order — consumers may parse positionally.
        assert!(
            line.starts_with("{\"type\":\"trace_span\",\"trace_id\":\""),
            "schema drift: {line}"
        );
        for key in ["\"span\":\"", "\"node\":\"", "\"site\":\"", "\"ts_nanos\":", "\"dur_nanos\":", "\"records\":"] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        let order = [
            "\"type\"",
            "\"trace_id\"",
            "\"span\"",
            "\"node\"",
            "\"site\"",
            "\"ts_nanos\"",
            "\"dur_nanos\"",
            "\"records\"",
        ];
        let mut pos = 0;
        for key in order {
            let at = line.find(key).unwrap_or_else(|| panic!("{key} in {line}"));
            assert!(at >= pos, "key order drift at {key}: {line}");
            pos = at;
        }
        // Every span name comes from the closed catalogue, so renaming
        // a stage fails here rather than on a dashboard.
        let span = str_field(line, "span");
        assert!(
            zoom_analysis::obs::trace::SPAN_CATALOGUE.contains(&span),
            "span {span} not in SPAN_CATALOGUE"
        );
        let tid = str_field(line, "trace_id");
        assert_eq!(tid.len(), 16, "trace_id not 16-hex: {line}");
        assert!(
            tid.chars().all(|c| c.is_ascii_hexdigit()),
            "trace_id not hex: {line}"
        );
        assert!(line.ends_with('}'), "unterminated line: {line}");
    }
}

#[test]
fn tracing_is_a_side_channel_output_stays_byte_identical() {
    let records = strictly_increasing_records(23, 20);
    let splits = split_round_robin(&records, 2);
    let (base_windows, base_out, base_ndjson) = merge_run(&splits, 0);
    assert!(base_ndjson.is_empty(), "untraced run exported spans");
    for sample_every in [1u64, 4] {
        let (windows, out, ndjson) = merge_run(&splits, sample_every);
        assert!(!ndjson.is_empty(), "traced run exported nothing");
        assert_eq!(
            windows.len(),
            base_windows.len(),
            "sample {sample_every}: window count"
        );
        for (x, y) in windows.iter().zip(&base_windows) {
            assert_eq!(
                x.to_json(),
                y.to_json(),
                "sample {sample_every}: window {}",
                x.index
            );
        }
        assert_eq!(
            out.final_window.to_json(),
            base_out.final_window.to_json(),
            "sample {sample_every}: final window"
        );
        assert_eq!(
            out.report.to_json(),
            base_out.report.to_json(),
            "sample {sample_every}: final report"
        );
    }
}
