//! Capture-pipeline ↔ analyzer integration: filtering from a mixed feed,
//! anonymization, and exclusion behaviour.

use std::net::IpAddr;
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_capture::anonymize::{Anonymizer, Mode};
use zoom_capture::cidr::prefix_set;
use zoom_capture::pipeline::{CapturePipeline, PipelineConfig, Verdict};
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::LinkType;

fn mixed_feed() -> (
    zoom_sim::campus::CampusStream,
    zoom_sim::infra::Infrastructure,
) {
    // Seed chosen so the 5-minute window draws a healthy number of campus
    // meetings under the workspace PRNG (see vendor/README.md): 3 meetings,
    // 10 on-campus participants.
    let (scenario, infra) = scenario::campus_study(5, 300 * SEC, 1.0 / 5.0, 4.0);
    (scenario.into_stream(), infra)
}

#[test]
fn pipeline_filters_background_and_keeps_zoom() {
    let (stream, infra) = mixed_feed();
    let mut capture = CapturePipeline::new(PipelineConfig {
        campus_nets: prefix_set(&[scenario::CAMPUS_NET]),
        excluded_nets: Default::default(),
        zoom_list: infra.ip_list.clone(),
        stun_timeout_nanos: 120 * SEC,
        anonymizer: None,
        family: zoom_wire::family::FamilySelect::Only(zoom_wire::family::FamilyId::Zoom),
    });
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    for record in stream {
        let (_, out) = capture.process_record(&record, LinkType::Ethernet);
        if let Some(out) = out {
            analyzer.process_packet(out.ts_nanos, &out.data, LinkType::Ethernet);
        }
    }
    let c = capture.counters();
    assert!(c.dropped > 0, "background must be dropped");
    assert!(c.passed > 0, "zoom must pass");
    // Background runs at ~4× the long-run average Zoom rate; the short
    // window's actual Zoom share varies with the meeting draw, but must
    // be a strict minority-to-moderate share, never all or nothing.
    let pass_rate = c.passed as f64 / c.total as f64;
    assert!(
        (0.003..0.85).contains(&pass_rate),
        "pass rate {pass_rate:.3}"
    );
    assert!(c.passed > 1_000, "too little zoom traffic: {}", c.passed);
    // Whatever passed analyzes into streams and meetings.
    let summary = analyzer.summary();
    assert!(summary.rtp_streams > 0);
    assert!(summary.meetings > 0);
    // The analyzer saw essentially no non-Zoom packets: its Zoom packet
    // count ≈ what the pipeline passed (control/STUN included).
    assert!(summary.zoom_packets as f64 > 0.9 * c.passed as f64);
}

#[test]
fn anonymized_output_remains_fully_analyzable() {
    // Anonymize campus addresses prefix-preservingly; the analyzer —
    // configured for the *anonymized* campus prefix, as the researchers
    // in the paper were — must reconstruct the same meetings.
    let anonymizer = Anonymizer::new(0xfeed, Mode::PrefixPreserving);
    let campus_v4: std::net::Ipv4Addr = "10.8.0.0".parse().unwrap();
    let anon_campus = anonymizer.anonymize_v4(campus_v4);
    let anon_prefix: (IpAddr, u8) = (
        IpAddr::V4(std::net::Ipv4Addr::new(
            anon_campus.octets()[0],
            anon_campus.octets()[1],
            0,
            0,
        )),
        16,
    );

    let run = |anon: Option<Anonymizer>, campus: (IpAddr, u8)| {
        let (stream, infra) = mixed_feed();
        let mut capture = CapturePipeline::new(PipelineConfig {
            campus_nets: prefix_set(&[scenario::CAMPUS_NET]),
            excluded_nets: Default::default(),
            zoom_list: infra.ip_list.clone(),
            stun_timeout_nanos: 120 * SEC,
            anonymizer: anon,
            family: zoom_wire::family::FamilySelect::Only(zoom_wire::family::FamilyId::Zoom),
        });
        let mut analyzer = Analyzer::new(
            AnalyzerConfig::builder()
                .campus_prefix(campus.0, campus.1)
                .build()
                .expect("valid config"),
        );
        for record in stream {
            let (_, out) = capture.process_record(&record, LinkType::Ethernet);
            if let Some(out) = out {
                analyzer.process_packet(out.ts_nanos, &out.data, LinkType::Ethernet);
            }
        }
        analyzer.summary()
    };

    let clear = run(None, (IpAddr::V4(campus_v4), 16));
    let anonymized = run(Some(anonymizer), anon_prefix);
    assert_eq!(clear.rtp_streams, anonymized.rtp_streams);
    assert_eq!(clear.meetings, anonymized.meetings);
    assert_eq!(clear.zoom_packets, anonymized.zoom_packets);
}

#[test]
fn excluded_subnets_are_dropped_entirely() {
    // Enough meetings that clients land in both halves of the /16.
    let (scenario_obj, infra) = scenario::campus_study(13, 240 * SEC, 1.0 / 2.0, 0.0);
    let mut capture = CapturePipeline::new(PipelineConfig {
        campus_nets: prefix_set(&[scenario::CAMPUS_NET]),
        // Exclude half the campus client space.
        excluded_nets: prefix_set(&["10.8.0.0/17"]),
        zoom_list: infra.ip_list.clone(),
        stun_timeout_nanos: 120 * SEC,
        anonymizer: None,
        family: zoom_wire::family::FamilySelect::Only(zoom_wire::family::FamilyId::Zoom),
    });
    let mut excluded_seen = 0u64;
    for record in scenario_obj.into_stream() {
        let (verdict, out) = capture.process_record(&record, LinkType::Ethernet);
        if verdict == Verdict::Excluded {
            excluded_seen += 1;
            assert!(out.is_none());
        }
    }
    assert!(excluded_seen > 0, "nothing hit the excluded subnets");
}
