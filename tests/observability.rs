//! Integration tests for the observability layer: the conservation
//! invariant (`packets_in == packets_classified + packets_not_zoom +
//! drops`), identical drop accounting across the sequential, parallel,
//! and streaming sinks at 1/2/8 shards, the drop section of the JSON
//! report, and the QoE degradation detector (exact alert NDJSON
//! sequence, gauge recovery, shard-count determinism).

use std::time::Duration;

use proptest::prelude::*;
use zoom_analysis::engine::{EngineConfig, QoeThresholds, StreamingEngine};
use zoom_analysis::obs::MetricsSnapshot;
use zoom_analysis::parallel::ParallelAnalyzer;
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::PacketSink;
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::{LinkType, Record};

/// A frame too short for an Ethernet header: dissects as a truncated
/// drop.
fn truncated_frame() -> Vec<u8> {
    vec![0u8; 7]
}

/// A well-formed Ethernet frame carrying ARP: a non-IP drop.
fn non_ip_frame() -> Vec<u8> {
    let mut f = vec![0u8; 14];
    f[12] = 0x08;
    f[13] = 0x06;
    f
}

/// Ethernet + minimal IPv4 header with protocol 1 (ICMP): a
/// non-transport drop.
fn non_transport_frame() -> Vec<u8> {
    let mut f = vec![0u8; 34];
    f[12] = 0x08; // ethertype IPv4
    f[13] = 0x00;
    f[14] = 0x45; // version 4, IHL 5
    f[16] = 0x00; // total length 20
    f[17] = 0x14;
    f[22] = 64; // TTL
    f[23] = 1; // protocol ICMP
    f
}

/// A meeting trace with dissect garbage salted in at `every`-record
/// intervals, cycling through the three drop stages above. Returns the
/// records and the number of garbage frames inserted.
fn salted_records(seed: u64, secs: u64, every: usize) -> (Vec<Record>, u64) {
    let sim: Vec<Record> = MeetingSim::new(scenario::multi_party(seed, secs * SEC)).collect();
    let mut out = Vec::with_capacity(sim.len() + sim.len() / every + 1);
    let mut garbage = 0u64;
    for (i, r) in sim.into_iter().enumerate() {
        if i % every == 0 {
            let frame = match garbage % 3 {
                0 => truncated_frame(),
                1 => non_ip_frame(),
                _ => non_transport_frame(),
            };
            out.push(Record::full(r.ts_nanos, frame));
            garbage += 1;
        }
        out.push(r);
    }
    (out, garbage)
}

fn feed<S: PacketSink>(sink: &mut S, records: &[Record]) {
    for r in records {
        sink.push(r.ts_nanos, &r.data, LinkType::Ethernet)
            .expect("push");
    }
}

/// The full accounting vector a sink exposes; two sinks that saw the
/// same trace must agree on every component.
fn accounting(m: &MetricsSnapshot) -> [u64; 9] {
    [
        m.packets_in,
        m.packets_classified,
        m.packets_not_zoom,
        m.malformed_zme,
        m.drop_unsupported_link,
        m.drop_non_ip,
        m.drop_non_transport,
        m.drop_truncated,
        m.drop_malformed,
    ]
}

#[test]
fn sequential_sink_conserves_and_attributes_drops() {
    let (records, garbage) = salted_records(7, 20, 50);
    let mut a = Analyzer::new(AnalyzerConfig::default());
    feed(&mut a, &records);
    let m = a.metrics();
    assert_eq!(m.packets_in, records.len() as u64);
    assert_eq!(m.drops_total(), garbage);
    assert!(m.drop_truncated > 0);
    assert!(m.drop_non_ip > 0);
    assert!(m.drop_non_transport > 0);
    assert!(m.conservation_holds(), "conservation: {m:?}");
}

#[test]
fn report_json_surfaces_drop_counters_and_truncation() {
    let (records, _) = salted_records(11, 15, 40);
    let mut a = Analyzer::new(AnalyzerConfig::default());
    feed(&mut a, &records);
    a.note_pcap_truncated(3);
    let report = a.finish().expect("finish");
    assert_eq!(report.drops.pcap_truncated, 3);
    assert!(report.drops.truncated > 0);
    let json = report.to_json();
    assert!(json.contains("\"drops\":{"), "missing drops section");
    assert!(json.contains("\"pcap_truncated\":3"), "missing truncation");
}

#[test]
fn metrics_json_and_prom_agree_on_totals() {
    let (records, garbage) = salted_records(3, 15, 30);
    let mut a = Analyzer::new(AnalyzerConfig::default());
    feed(&mut a, &records);
    let m = a.metrics();
    let json = m.to_json();
    assert!(json.contains("\"conservation_holds\":true"));
    assert!(json.contains(&format!("\"packets_in\":{}", records.len())));
    let prom = m.to_prom();
    assert!(prom.contains("zoom_packets_in_total"));
    assert!(prom.contains(&format!("zoom_packets_in_total {}", records.len())));
    let dropped: u64 = prom
        .lines()
        .filter(|l| l.starts_with("zoom_dissect_drops_total{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(dropped, garbage);
}

/// Runs the streaming engine over the records and returns the quiesced
/// accounting snapshot.
fn engine_accounting(records: &[Record], shards: usize, window: Option<Duration>) -> [u64; 9] {
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: AnalyzerConfig::default(),
        shards,
        window,
        idle_timeout: None,
        qoe: None,
    })
    .expect("engine");
    feed(&mut engine, records);
    let _ = engine.take_windows();
    let out = engine.drain().expect("drain");
    accounting(&out.analyzer.metrics())
}

// ------------------------------------------------------ QoE detector --

/// One ZME-wrapped video packet toward the SFU: the same shape as the
/// engine's unit-test traffic, with caller-controlled arrival time and
/// RTP timestamp so the scenario can script fps drops and jitter
/// spikes.
fn qoe_video_record(ts: u64, seq: u16, rtp_ts: u32) -> Record {
    use zoom_wire::{compose, rtp, zoom};
    let payload = zoom::Builder {
        sfu: Some(zoom::SfuEncapRepr {
            encap_type: zoom::SFU_TYPE_MEDIA,
            sequence: seq,
            direction: zoom::DIR_TO_SFU,
        }),
        media: zoom::MediaEncapRepr {
            media_type: zoom::MediaType::Video,
            sequence: seq,
            timestamp: (ts / 1_000_000) as u32,
            frame_sequence: Some(seq),
            packets_in_frame: Some(1),
        },
        rtp: Some(rtp::Repr {
            marker: true,
            payload_type: 98,
            sequence_number: seq,
            timestamp: rtp_ts,
            ssrc: 0x77,
            csrc_count: 0,
            has_extension: false,
        }),
        payload: vec![0xA5; 700],
    }
    .build();
    let data = compose::udp_ipv4_ethernet(
        std::net::Ipv4Addr::new(10, 8, 0, 1),
        std::net::Ipv4Addr::new(170, 114, 0, 1),
        50_000,
        8801,
        &payload,
    );
    Record::full(ts, data)
}

const MS: u64 = 1_000_000;

/// A scripted churn-style vignette on one video stream, 2-second
/// windows:
///
/// * windows 0–1 (0–4 s): healthy — 30 fps, clean 33 ms cadence;
/// * windows 2–3 (4–8 s): degraded — 5 fps with ±150 ms arrival
///   displacement against a steady RTP clock (fps floor break, jitter
///   spike, and a >50% bitrate collapse all at once);
/// * windows 4–5 (8–12 s): recovered — healthy cadence again.
fn qoe_scenario() -> Vec<Record> {
    let mut out = Vec::new();
    let mut seq: u16 = 0;
    let mut push = |ts: u64, rtp_ts: u32| {
        seq += 1;
        out.push(qoe_video_record(ts, seq, rtp_ts));
    };
    for i in 0..120u64 {
        // 90 kHz RTP clock tracking arrival exactly.
        push(i * 33 * MS, (i * 33 * 90) as u32);
    }
    let deg_base = 4_000 * MS;
    let deg_rtp = 120 * 33 * 90;
    for i in 0..20u64 {
        // Nominal 200 ms cadence; odd packets arrive 150 ms late with an
        // on-schedule RTP timestamp -> transit swings of 150 ms.
        let displace = if i % 2 == 1 { 150 * MS } else { 0 };
        push(
            deg_base + i * 200 * MS + displace,
            (deg_rtp + i * 200 * 90) as u32,
        );
    }
    let rec_base = 8_000 * MS;
    let rec_rtp = deg_rtp + 20 * 200 * 90;
    for i in 0..182u64 {
        // Runs past 12 s so window 5 (10–12 s) closes and the jitter
        // estimator has decayed back under the ceiling.
        push(rec_base + i * 33 * MS, (rec_rtp + i * 33 * 90) as u32);
    }
    out
}

/// Feed the scenario through a QoE-watching engine; returns each
/// alert's NDJSON line (in emission order), the degraded-gauge state
/// observed right after the alert fired, and the quiesced metrics.
fn run_qoe(records: &[Record], shards: usize) -> (Vec<String>, Vec<(String, u64)>, MetricsSnapshot) {
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: AnalyzerConfig::default(),
        shards,
        window: Some(Duration::from_secs(2)),
        idle_timeout: None,
        qoe: Some(QoeThresholds::default()),
    })
    .expect("engine");
    let mut ndjson = Vec::new();
    let mut gauge_trail = Vec::new();
    for r in records {
        engine
            .push(r.ts_nanos, &r.data, LinkType::Ethernet)
            .expect("push");
        let alerts = engine.take_alerts();
        if !alerts.is_empty() {
            for a in &alerts {
                ndjson.push(a.to_json());
            }
            // Observe the gauge family as the operator would, right
            // after the alerts fired.
            for (labels, v) in engine.metrics().qoe.degraded {
                gauge_trail.push((labels.join("/"), v));
            }
        }
    }
    let _ = engine.take_windows();
    let out = engine.drain().expect("drain");
    (ndjson, gauge_trail, out.analyzer.metrics())
}

#[test]
fn qoe_alert_ndjson_sequence_is_exact_and_gauge_clears() {
    let records = qoe_scenario();
    let (ndjson, gauge_trail, metrics) = run_qoe(&records, 1);
    // The scenario is fully scripted, so the alert stream is pinned
    // byte-for-byte: the fps drop and bitrate collapse trip in the first
    // fully-degraded window (window 2), the RFC 3550 jitter estimator
    // crosses its ceiling one window later, and everything recovers once
    // the healthy cadence resumes (jitter last, since the estimator
    // decays with a 1/16 gain).
    assert_eq!(
        ndjson,
        [
            r#"{"type":"qoe_alert","window":2,"end_nanos":6000000000,"meeting":"0","media":"video","kind":"low_fps","state":"degraded","value":5,"threshold":10}"#,
            r#"{"type":"qoe_alert","window":2,"end_nanos":6000000000,"meeting":"0","media":"video","kind":"bitrate_collapse","state":"degraded","value":28000,"threshold":82600}"#,
            r#"{"type":"qoe_alert","window":3,"end_nanos":8000000000,"meeting":"0","media":"video","kind":"high_jitter","state":"degraded","value":83.30987503628202,"threshold":50}"#,
            r#"{"type":"qoe_alert","window":4,"end_nanos":10000000000,"meeting":"0","media":"video","kind":"low_fps","state":"recovered","value":30.5,"threshold":10}"#,
            r#"{"type":"qoe_alert","window":4,"end_nanos":10000000000,"meeting":"0","media":"video","kind":"bitrate_collapse","state":"recovered","value":170800,"threshold":82600}"#,
            r#"{"type":"qoe_alert","window":5,"end_nanos":12000000000,"meeting":"0","media":"video","kind":"high_jitter","state":"recovered","value":1.2214434597768484,"threshold":50}"#,
        ]
    );
    // The zoom_qoe_degraded gauge tracks the alert stream: each kind
    // goes to 1 when it degrades and clears to 0 on recovery, ending
    // with every series at 0.
    let g = |kind: &str, v: u64| (format!("0/{kind}"), v);
    assert_eq!(
        gauge_trail,
        [
            // after window 2: fps + bitrate degraded
            g("bitrate_collapse", 1),
            g("low_fps", 1),
            // after window 3: jitter joins them
            g("bitrate_collapse", 1),
            g("high_jitter", 1),
            g("low_fps", 1),
            // after window 4: fps + bitrate recovered
            g("bitrate_collapse", 0),
            g("high_jitter", 1),
            g("low_fps", 0),
            // after window 5: everything clear
            g("bitrate_collapse", 0),
            g("high_jitter", 0),
            g("low_fps", 0),
        ]
    );
    assert!(metrics.conservation_holds());
}

#[test]
fn qoe_alerts_byte_identical_across_shards() {
    let records = qoe_scenario();
    let (baseline, _, m1) = run_qoe(&records, 1);
    assert!(
        !baseline.is_empty(),
        "scenario must produce at least one alert"
    );
    assert!(
        m1.conservation_holds(),
        "conservation with telemetry enabled"
    );
    for shards in [2usize, 8] {
        let (alerts, _, m) = run_qoe(&records, shards);
        assert_eq!(alerts, baseline, "{shards} shards");
        assert!(m.conservation_holds(), "{shards} shards conservation");
    }
}

proptest! {
    /// The drop/classification accounting is a property of the trace,
    /// not of the deployment shape: 1, 2, and 8 shards — windowed or
    /// not — must produce the identical accounting vector, and every
    /// vector must satisfy the conservation invariant.
    #[test]
    fn drop_accounting_identical_across_shards(
        seed in 0u64..10_000,
        secs in 12u64..16,
        every in 20usize..60,
        windowed in proptest::arbitrary::any::<bool>(),
    ) {
        let (records, garbage) = salted_records(seed, secs, every);
        let window = windowed.then(|| Duration::from_secs(5));

        let mut seq = Analyzer::new(AnalyzerConfig::default());
        feed(&mut seq, &records);
        let baseline = accounting(&seq.metrics());
        prop_assert_eq!(
            baseline[4] + baseline[5] + baseline[6] + baseline[7] + baseline[8],
            garbage
        );
        // Conservation: packets_in == classified + not_zoom + Σ drops.
        prop_assert_eq!(
            baseline[0],
            baseline[1] + baseline[2] + baseline[4] + baseline[5]
                + baseline[6] + baseline[7] + baseline[8]
        );

        for shards in [1usize, 2, 8] {
            prop_assert_eq!(
                engine_accounting(&records, shards, window),
                baseline,
                "{} shards, window {:?}",
                shards,
                window
            );
        }

        let mut par = ParallelAnalyzer::new(AnalyzerConfig::default(), 8);
        feed(&mut par, &records);
        // The inherent `finish(&mut self)` quiesces the engine without
        // consuming the analyzer, so the metrics remain readable.
        ParallelAnalyzer::finish(&mut par).expect("finish");
        prop_assert_eq!(accounting(&par.metrics()), baseline, "parallel sink");
    }
}
