//! Integration tests for the observability layer: the conservation
//! invariant (`packets_in == packets_classified + packets_not_zoom +
//! drops`), identical drop accounting across the sequential, parallel,
//! and streaming sinks at 1/2/8 shards, and the drop section of the
//! JSON report.

use std::time::Duration;

use proptest::prelude::*;
use zoom_analysis::engine::{EngineConfig, StreamingEngine};
use zoom_analysis::obs::MetricsSnapshot;
use zoom_analysis::parallel::ParallelAnalyzer;
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::PacketSink;
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::{LinkType, Record};

/// A frame too short for an Ethernet header: dissects as a truncated
/// drop.
fn truncated_frame() -> Vec<u8> {
    vec![0u8; 7]
}

/// A well-formed Ethernet frame carrying ARP: a non-IP drop.
fn non_ip_frame() -> Vec<u8> {
    let mut f = vec![0u8; 14];
    f[12] = 0x08;
    f[13] = 0x06;
    f
}

/// Ethernet + minimal IPv4 header with protocol 1 (ICMP): a
/// non-transport drop.
fn non_transport_frame() -> Vec<u8> {
    let mut f = vec![0u8; 34];
    f[12] = 0x08; // ethertype IPv4
    f[13] = 0x00;
    f[14] = 0x45; // version 4, IHL 5
    f[16] = 0x00; // total length 20
    f[17] = 0x14;
    f[22] = 64; // TTL
    f[23] = 1; // protocol ICMP
    f
}

/// A meeting trace with dissect garbage salted in at `every`-record
/// intervals, cycling through the three drop stages above. Returns the
/// records and the number of garbage frames inserted.
fn salted_records(seed: u64, secs: u64, every: usize) -> (Vec<Record>, u64) {
    let sim: Vec<Record> = MeetingSim::new(scenario::multi_party(seed, secs * SEC)).collect();
    let mut out = Vec::with_capacity(sim.len() + sim.len() / every + 1);
    let mut garbage = 0u64;
    for (i, r) in sim.into_iter().enumerate() {
        if i % every == 0 {
            let frame = match garbage % 3 {
                0 => truncated_frame(),
                1 => non_ip_frame(),
                _ => non_transport_frame(),
            };
            out.push(Record::full(r.ts_nanos, frame));
            garbage += 1;
        }
        out.push(r);
    }
    (out, garbage)
}

fn feed<S: PacketSink>(sink: &mut S, records: &[Record]) {
    for r in records {
        sink.push(r.ts_nanos, &r.data, LinkType::Ethernet)
            .expect("push");
    }
}

/// The full accounting vector a sink exposes; two sinks that saw the
/// same trace must agree on every component.
fn accounting(m: &MetricsSnapshot) -> [u64; 9] {
    [
        m.packets_in,
        m.packets_classified,
        m.packets_not_zoom,
        m.malformed_zme,
        m.drop_unsupported_link,
        m.drop_non_ip,
        m.drop_non_transport,
        m.drop_truncated,
        m.drop_malformed,
    ]
}

#[test]
fn sequential_sink_conserves_and_attributes_drops() {
    let (records, garbage) = salted_records(7, 20, 50);
    let mut a = Analyzer::new(AnalyzerConfig::default());
    feed(&mut a, &records);
    let m = a.metrics();
    assert_eq!(m.packets_in, records.len() as u64);
    assert_eq!(m.drops_total(), garbage);
    assert!(m.drop_truncated > 0);
    assert!(m.drop_non_ip > 0);
    assert!(m.drop_non_transport > 0);
    assert!(m.conservation_holds(), "conservation: {m:?}");
}

#[test]
fn report_json_surfaces_drop_counters_and_truncation() {
    let (records, _) = salted_records(11, 15, 40);
    let mut a = Analyzer::new(AnalyzerConfig::default());
    feed(&mut a, &records);
    a.note_pcap_truncated(3);
    let report = a.finish().expect("finish");
    assert_eq!(report.drops.pcap_truncated, 3);
    assert!(report.drops.truncated > 0);
    let json = report.to_json();
    assert!(json.contains("\"drops\":{"), "missing drops section");
    assert!(json.contains("\"pcap_truncated\":3"), "missing truncation");
}

#[test]
fn metrics_json_and_prom_agree_on_totals() {
    let (records, garbage) = salted_records(3, 15, 30);
    let mut a = Analyzer::new(AnalyzerConfig::default());
    feed(&mut a, &records);
    let m = a.metrics();
    let json = m.to_json();
    assert!(json.contains("\"conservation_holds\":true"));
    assert!(json.contains(&format!("\"packets_in\":{}", records.len())));
    let prom = m.to_prom();
    assert!(prom.contains("zoom_packets_in_total"));
    assert!(prom.contains(&format!("zoom_packets_in_total {}", records.len())));
    let dropped: u64 = prom
        .lines()
        .filter(|l| l.starts_with("zoom_dissect_drops_total{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(dropped, garbage);
}

/// Runs the streaming engine over the records and returns the quiesced
/// accounting snapshot.
fn engine_accounting(records: &[Record], shards: usize, window: Option<Duration>) -> [u64; 9] {
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: AnalyzerConfig::default(),
        shards,
        window,
        idle_timeout: None,
    })
    .expect("engine");
    feed(&mut engine, records);
    let _ = engine.take_windows();
    let out = engine.drain().expect("drain");
    accounting(&out.analyzer.metrics())
}

proptest! {
    /// The drop/classification accounting is a property of the trace,
    /// not of the deployment shape: 1, 2, and 8 shards — windowed or
    /// not — must produce the identical accounting vector, and every
    /// vector must satisfy the conservation invariant.
    #[test]
    fn drop_accounting_identical_across_shards(
        seed in 0u64..10_000,
        secs in 12u64..16,
        every in 20usize..60,
        windowed in proptest::arbitrary::any::<bool>(),
    ) {
        let (records, garbage) = salted_records(seed, secs, every);
        let window = windowed.then(|| Duration::from_secs(5));

        let mut seq = Analyzer::new(AnalyzerConfig::default());
        feed(&mut seq, &records);
        let baseline = accounting(&seq.metrics());
        prop_assert_eq!(
            baseline[4] + baseline[5] + baseline[6] + baseline[7] + baseline[8],
            garbage
        );
        // Conservation: packets_in == classified + not_zoom + Σ drops.
        prop_assert_eq!(
            baseline[0],
            baseline[1] + baseline[2] + baseline[4] + baseline[5]
                + baseline[6] + baseline[7] + baseline[8]
        );

        for shards in [1usize, 2, 8] {
            prop_assert_eq!(
                engine_accounting(&records, shards, window),
                baseline,
                "{} shards, window {:?}",
                shards,
                window
            );
        }

        let mut par = ParallelAnalyzer::new(AnalyzerConfig::default(), 8);
        feed(&mut par, &records);
        // The inherent `finish(&mut self)` quiesces the engine without
        // consuming the analyzer, so the metrics remain readable.
        ParallelAnalyzer::finish(&mut par).expect("finish");
        prop_assert_eq!(accounting(&par.metrics()), baseline, "parallel sink");
    }
}
