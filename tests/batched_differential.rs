//! Differential tests for the batched ingest hot path: feeding the
//! analysis sinks whole [`RecordBatch`]es via `push_batch` must produce
//! output **byte-identical** to the per-record `push` loop, for every
//! batch size, shard count, and windowing mode.
//!
//! * The sequential `Analyzer` emits the same report JSON whether records
//!   arrive one at a time or in batches of 1, 7, 64 or 4096 — including
//!   on a mixed-source trace (two scenarios interleaved by timestamp).
//! * The `StreamingEngine` emits the same window stream and the same
//!   final report at 1/2/8 shards, windowed and unwindowed, regardless of
//!   how the input is batched.
//! * A proptest cuts the trace at arbitrary batch boundaries (including
//!   empty batches) and asserts the report is invariant to the cut.

use proptest::prelude::*;
use std::time::Duration;
use zoom_analysis::engine::{EngineConfig, EngineOutput, StreamingEngine};
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::report::{AnalysisReport, WindowReport};
use zoom_analysis::PacketSink;
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::handoff::RecordBatch;
use zoom_wire::pcap::{LinkType, Record};

/// The batch sizes exercised everywhere below: degenerate (1), prime and
/// smaller than any internal batch (7), typical (64), and larger than the
/// engine's internal batch so one push spans several internal hand-offs
/// (4096).
const BATCH_SIZES: [usize; 4] = [1, 7, 64, 4096];

fn multi_records() -> Vec<Record> {
    let mut records: Vec<Record> =
        MeetingSim::new(scenario::multi_party(3, 30 * SEC)).collect();
    records.sort_by_key(|r| r.ts_nanos);
    records
}

/// Two scenarios merged by timestamp — the shape a `CaptureMux` fan-in
/// delivers, so batching is exercised across interleaved sources.
fn mixed_source_records() -> Vec<Record> {
    let mut records: Vec<Record> =
        MeetingSim::new(scenario::multi_party(3, 20 * SEC)).collect();
    records.extend(
        scenario::churn(11, 20 * SEC)
            .into_iter()
            .flat_map(MeetingSim::new),
    );
    records.sort_by_key(|r| r.ts_nanos);
    records
}

fn per_record_report(records: &[Record]) -> AnalysisReport {
    let mut a = Analyzer::new(AnalyzerConfig::default());
    for r in records {
        a.push(r.ts_nanos, &r.data, LinkType::Ethernet).expect("push");
    }
    a.finish().expect("finish")
}

/// Packs `records[lo..hi)` into a cleared, reused `RecordBatch`.
fn fill(batch: &mut RecordBatch, records: &[Record]) {
    batch.clear();
    for r in records {
        batch.push(r.ts_nanos, r.orig_len, &r.data);
    }
}

fn batched_report(records: &[Record], batch_size: usize) -> AnalysisReport {
    let mut a = Analyzer::new(AnalyzerConfig::default());
    let mut batch = RecordBatch::new();
    for chunk in records.chunks(batch_size) {
        fill(&mut batch, chunk);
        a.push_batch(&batch, LinkType::Ethernet).expect("push_batch");
    }
    a.finish().expect("finish")
}

fn stream_per_record(
    records: &[Record],
    shards: usize,
    window: Option<Duration>,
) -> (Vec<WindowReport>, EngineOutput) {
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: AnalyzerConfig::default(),
        shards,
        window,
        idle_timeout: None,
        qoe: None,
    })
    .expect("valid engine config");
    let mut windows = Vec::new();
    for r in records {
        engine
            .push(r.ts_nanos, &r.data, LinkType::Ethernet)
            .expect("push");
        windows.extend(engine.take_windows());
    }
    let out = engine.drain().expect("drain");
    (windows, out)
}

fn stream_batched(
    records: &[Record],
    shards: usize,
    window: Option<Duration>,
    batch_size: usize,
) -> (Vec<WindowReport>, EngineOutput) {
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: AnalyzerConfig::default(),
        shards,
        window,
        idle_timeout: None,
        qoe: None,
    })
    .expect("valid engine config");
    let mut windows = Vec::new();
    let mut batch = RecordBatch::new();
    for chunk in records.chunks(batch_size) {
        fill(&mut batch, chunk);
        engine.push_batch(&batch, LinkType::Ethernet).expect("push_batch");
        windows.extend(engine.take_windows());
    }
    let out = engine.drain().expect("drain");
    (windows, out)
}

fn assert_streams_identical(
    label: &str,
    got: &(Vec<WindowReport>, EngineOutput),
    want: &(Vec<WindowReport>, EngineOutput),
) {
    assert_eq!(got.0.len(), want.0.len(), "{label}: window count");
    for (i, (x, y)) in got.0.iter().zip(&want.0).enumerate() {
        assert_eq!(x.to_json(), y.to_json(), "{label}: window {i}");
    }
    assert_eq!(
        got.1.final_window.to_json(),
        want.1.final_window.to_json(),
        "{label}: final window"
    );
    assert_eq!(
        got.1.report.to_json(),
        want.1.report.to_json(),
        "{label}: final report"
    );
}

#[test]
fn analyzer_batched_matches_per_record_at_all_batch_sizes() {
    let records = multi_records();
    assert!(records.len() > 4096, "trace must outsize the largest batch");
    let want = per_record_report(&records).to_json();
    for size in BATCH_SIZES {
        let got = batched_report(&records, size).to_json();
        assert_eq!(got, want, "batch size {size}");
    }
}

#[test]
fn mixed_source_batched_matches_per_record() {
    let records = mixed_source_records();
    assert!(records.len() > 4096);
    let want = per_record_report(&records).to_json();
    for size in BATCH_SIZES {
        let got = batched_report(&records, size).to_json();
        assert_eq!(got, want, "mixed sources, batch size {size}");
    }
}

#[test]
fn engine_batched_matches_per_record_across_shards() {
    let records = multi_records();
    for shards in [1usize, 2, 8] {
        let want = stream_per_record(&records, shards, None);
        assert!(want.0.is_empty(), "no window configured");
        for size in [1usize, 64, 4096] {
            let got = stream_batched(&records, shards, None, size);
            assert_streams_identical(
                &format!("{shards} shards, batch size {size}"),
                &got,
                &want,
            );
        }
    }
}

#[test]
fn windowed_engine_batched_matches_per_record_across_shards() {
    let records = mixed_source_records();
    let window = Some(Duration::from_secs(2));
    for shards in [1usize, 2, 8] {
        let want = stream_per_record(&records, shards, window);
        assert!(want.0.len() > 3, "expected several 2s windows");
        for size in [7usize, 4096] {
            let got = stream_batched(&records, shards, window, size);
            assert_streams_identical(
                &format!("windowed, {shards} shards, batch size {size}"),
                &got,
                &want,
            );
        }
    }
}

proptest! {
    /// Arbitrary batch boundaries — including empty batches — never
    /// change a byte of the report. The cut sizes are drawn freely and
    /// applied cyclically over the trace, so batches straddle frame,
    /// stream, and window boundaries in ways the fixed sizes above
    /// don't.
    #[test]
    fn report_invariant_under_arbitrary_batch_boundaries(
        seed in 0u64..100_000,
        cuts in proptest::collection::vec(0usize..600, 1..24),
    ) {
        let mut records: Vec<Record> =
            MeetingSim::new(scenario::multi_party(seed, 10 * SEC)).collect();
        records.sort_by_key(|r| r.ts_nanos);
        let want = per_record_report(&records).to_json();

        let mut a = Analyzer::new(AnalyzerConfig::default());
        let mut batch = RecordBatch::new();
        let mut at = 0usize;
        for take in &cuts {
            let take = (*take).min(records.len() - at);
            fill(&mut batch, &records[at..at + take]);
            a.push_batch(&batch, LinkType::Ethernet).expect("push_batch");
            at += take;
        }
        // Whatever the drawn cuts didn't cover goes in fixed-size tail
        // batches so every case consumes the whole trace.
        while at < records.len() {
            let take = 97.min(records.len() - at);
            fill(&mut batch, &records[at..at + take]);
            a.push_batch(&batch, LinkType::Ethernet).expect("push_batch");
            at += take;
        }
        let got = a.finish().expect("finish").to_json();
        prop_assert_eq!(got, want);
    }
}
