//! Differential tests for the streaming engine: windowed, bounded-memory
//! analysis must not change what gets measured.
//!
//! * With no window and no eviction, `StreamingEngine::drain` must emit a
//!   report **byte-identical** to the sequential `Analyzer::finish` for
//!   any shard count (the `ParallelAnalyzer` equivalence, restated at the
//!   JSON layer).
//! * With windows enabled, every windowed counter is a delta: summing a
//!   stream's deltas over all windows reproduces its whole-trace counters
//!   exactly, and the end-of-trace report is still byte-identical.
//! * With idle eviction enabled on a meeting-churn workload, evicted
//!   report fragments plus live rows still sum to the batch totals, and
//!   the peak tracked-entry count is strictly lower than without
//!   eviction.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;
use zoom_analysis::engine::{EngineConfig, EngineOutput, StreamingEngine};
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::PacketSink;
use zoom_analysis::report::{AnalysisReport, WindowReport};
use zoom_analysis::stream::StreamKey;
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::{LinkType, Reader, Record, RecordBuf, SliceReader, Writer};

fn batch_report(records: &[Record]) -> AnalysisReport {
    let mut a = Analyzer::new(AnalyzerConfig::default());
    for r in records {
        a.push(r.ts_nanos, &r.data, LinkType::Ethernet).expect("push");
    }
    a.finish().expect("finish")
}

fn stream_run(
    records: &[Record],
    shards: usize,
    window: Option<Duration>,
    idle_timeout: Option<Duration>,
) -> (Vec<WindowReport>, EngineOutput) {
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: AnalyzerConfig::default(),
        shards,
        window,
        idle_timeout,
        qoe: None,
    })
    .expect("valid engine config");
    let mut windows = Vec::new();
    for r in records {
        engine
            .push(r.ts_nanos, &r.data, LinkType::Ethernet)
            .expect("push");
        windows.extend(engine.take_windows());
    }
    let out = engine.drain().expect("drain");
    (windows, out)
}

fn churn_records(seed: u64, duration_secs: u64) -> Vec<Record> {
    let mut records: Vec<Record> = scenario::churn(seed, duration_secs * SEC)
        .into_iter()
        .flat_map(MeetingSim::new)
        .collect();
    records.sort_by_key(|r| r.ts_nanos);
    records
}

/// Per-key counter totals, summed over report rows or window deltas.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct Totals {
    packets: u64,
    media_bytes: u64,
    frames: u64,
    lost: u64,
    duplicates: u64,
}

fn report_totals(report: &AnalysisReport) -> BTreeMap<StreamKey, Totals> {
    let mut map: BTreeMap<StreamKey, Totals> = BTreeMap::new();
    for s in &report.streams {
        let t = map.entry(s.key).or_default();
        t.packets += s.packets;
        t.media_bytes += s.media_bytes;
        t.frames += s.frames;
        t.lost += s.lost;
        t.duplicates += s.duplicates;
    }
    map
}

fn window_totals<'a>(
    windows: impl Iterator<Item = &'a WindowReport>,
) -> BTreeMap<StreamKey, Totals> {
    let mut map: BTreeMap<StreamKey, Totals> = BTreeMap::new();
    for w in windows {
        for s in &w.streams {
            let t = map.entry(s.key).or_default();
            t.packets += s.packets;
            t.media_bytes += s.media_bytes;
            t.frames += s.frames;
            t.lost += s.lost;
            t.duplicates += s.duplicates;
        }
    }
    map
}

#[test]
fn unwindowed_streaming_report_is_byte_identical_to_batch() {
    let records: Vec<Record> = MeetingSim::new(scenario::multi_party(3, 60 * SEC)).collect();
    assert!(records.len() > 1_000);
    let batch = batch_report(&records);
    assert!(batch.summary.rtp_streams > 0);
    for shards in [1usize, 8] {
        let (windows, out) = stream_run(&records, shards, None, None);
        assert!(windows.is_empty(), "{shards} shards: no window configured");
        assert_eq!(
            out.report.to_json(),
            batch.to_json(),
            "{shards} shards: final JSON"
        );
    }
}

#[test]
fn window_deltas_sum_to_batch_totals_without_eviction() {
    let records: Vec<Record> = MeetingSim::new(scenario::multi_party(9, 45 * SEC)).collect();
    let batch = batch_report(&records);
    let per_key = report_totals(&batch);
    for shards in [1usize, 8] {
        let (windows, out) = stream_run(&records, shards, Some(Duration::from_secs(10)), None);
        assert!(windows.len() >= 4, "{shards} shards: {}", windows.len());
        // Window indices are consecutive from zero; the drain fragment
        // continues past the last closed window.
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.index, i as u64, "{shards} shards");
        }

        let all = windows.iter().chain(std::iter::once(&out.final_window));
        let packets: u64 = all.clone().map(|w| w.totals.packets).sum();
        let zoom_packets: u64 = all.clone().map(|w| w.totals.zoom_packets).sum();
        let zoom_bytes: u64 = all.clone().map(|w| w.totals.zoom_bytes).sum();
        let new_streams: u64 = all.clone().map(|w| w.totals.new_streams).sum();
        assert_eq!(packets, batch.summary.total_packets, "{shards} shards");
        assert_eq!(zoom_packets, batch.summary.zoom_packets, "{shards} shards");
        assert_eq!(zoom_bytes, batch.summary.zoom_bytes, "{shards} shards");
        assert_eq!(
            new_streams,
            batch.summary.rtp_streams as u64,
            "{shards} shards"
        );
        assert_eq!(window_totals(all), per_key, "{shards} shards: per-stream");

        // Windowing must not perturb the end-of-trace report at all.
        assert_eq!(
            out.report.to_json(),
            batch.to_json(),
            "{shards} shards: final JSON"
        );
    }
}

#[test]
fn eviction_fragments_sum_to_batch_totals_and_bound_memory() {
    let records = churn_records(5, 120);
    assert!(records.len() > 5_000);
    let batch = batch_report(&records);
    assert!(batch.summary.meetings >= 4, "{}", batch.summary.meetings);
    let per_key = report_totals(&batch);

    // A no-eviction run establishes the unbounded peak to beat.
    let (_, unbounded) = stream_run(&records, 2, Some(Duration::from_secs(5)), None);

    for shards in [1usize, 2] {
        let (windows, out) = stream_run(
            &records,
            shards,
            Some(Duration::from_secs(5)),
            Some(Duration::from_secs(5)),
        );
        let evicted: u64 = windows.iter().map(|w| w.totals.evicted_streams).sum();
        assert!(evicted > 0, "{shards} shards: churn forced no evictions");

        // Exactness: evicted fragments + live rows reproduce every batch
        // counter, per stream and in the rollup.
        assert_eq!(report_totals(&out.report), per_key, "{shards} shards");
        assert_eq!(out.report.summary.total_packets, batch.summary.total_packets);
        assert_eq!(out.report.summary.zoom_packets, batch.summary.zoom_packets);
        assert_eq!(out.report.summary.zoom_bytes, batch.summary.zoom_bytes);
        assert_eq!(out.report.summary.zoom_flows, batch.summary.zoom_flows);
        assert_eq!(out.report.summary.rtp_streams, batch.summary.rtp_streams);
        assert_eq!(out.report.summary.meetings, batch.summary.meetings);

        // Boundedness: idle-out keeps the tracked-entry gauge strictly
        // below the never-evict peak, and under an absolute cap sized
        // for the concurrently-active portion of the workload (at most
        // two of the six meetings overlap, plus STUN/RTT candidates).
        const TRACKED_ENTRY_CAP: usize = 160;
        eprintln!(
            "{shards} shards: evicting peak {}, never-evict peak {}",
            out.peak_tracked_entries, unbounded.peak_tracked_entries
        );
        assert!(
            out.peak_tracked_entries < unbounded.peak_tracked_entries,
            "{shards} shards: peak {} !< {}",
            out.peak_tracked_entries,
            unbounded.peak_tracked_entries
        );
        assert!(
            out.peak_tracked_entries <= TRACKED_ENTRY_CAP,
            "{shards} shards: peak {} exceeds cap {TRACKED_ENTRY_CAP}",
            out.peak_tracked_entries
        );
    }
}

// ---------------------------------------------------------------------
// Ingest-path equivalence: the zero-copy fast paths must not change a
// byte of output relative to the owning-record path.
// ---------------------------------------------------------------------

/// Serialize the synthetic records into an in-memory classic pcap image,
/// so every ingest path starts from identical bytes.
fn pcap_image(records: &[Record]) -> Vec<u8> {
    let mut w = Writer::new(Vec::new(), LinkType::Ethernet).expect("write header");
    for r in records {
        w.write_record(r).expect("write record");
    }
    w.finish().expect("flush")
}

/// The three ingest paths under differential test: the owning
/// `next_record` loop, the buffer-reusing `read_into` loop, and the
/// borrowed-slice `SliceReader` loop.
#[derive(Clone, Copy, Debug)]
enum Ingest {
    Owning,
    ReadInto,
    Slice,
}

fn stream_via(
    img: &[u8],
    ingest: Ingest,
    shards: usize,
    window: Option<Duration>,
) -> (Vec<WindowReport>, EngineOutput) {
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: AnalyzerConfig::default(),
        shards,
        window,
        idle_timeout: None,
        qoe: None,
    })
    .expect("valid engine config");
    let mut windows = Vec::new();
    match ingest {
        Ingest::Owning => {
            let mut r = Reader::new(img).expect("pcap header");
            let link = r.link_type();
            while let Some(rec) = r.next_record().expect("record") {
                engine.push(rec.ts_nanos, &rec.data, link).expect("push");
                windows.extend(engine.take_windows());
            }
        }
        Ingest::ReadInto => {
            let mut r = Reader::new(img).expect("pcap header");
            let link = r.link_type();
            let mut buf = RecordBuf::new();
            while r.read_into(&mut buf).expect("record") {
                windows.extend(
                    engine
                        .push_packet(buf.ts_nanos(), buf.data(), link)
                        .expect("push"),
                );
            }
        }
        Ingest::Slice => {
            let mut r = SliceReader::new(img).expect("pcap header");
            let link = r.link_type();
            while let Some(rec) = r.next_record().expect("record") {
                windows.extend(engine.push_packet(rec.ts_nanos, rec.data, link).expect("push"));
            }
        }
    }
    let out = engine.drain().expect("drain");
    (windows, out)
}

fn assert_same_run(
    a: &(Vec<WindowReport>, EngineOutput),
    b: &(Vec<WindowReport>, EngineOutput),
    label: &str,
) {
    assert_eq!(a.0.len(), b.0.len(), "{label}: window count");
    for (x, y) in a.0.iter().zip(&b.0) {
        assert_eq!(x.to_json(), y.to_json(), "{label}: window {}", x.index);
    }
    assert_eq!(
        a.1.final_window.to_json(),
        b.1.final_window.to_json(),
        "{label}: final window"
    );
    assert_eq!(
        a.1.report.to_json(),
        b.1.report.to_json(),
        "{label}: final report"
    );
}

#[test]
fn ingest_paths_byte_identical_at_1_2_8_shards() {
    let records: Vec<Record> = MeetingSim::new(scenario::multi_party(11, 45 * SEC)).collect();
    assert!(records.len() > 1_000);
    let img = pcap_image(&records);
    let batch = batch_report(&records);
    for shards in [1usize, 2, 8] {
        for window in [None, Some(Duration::from_secs(10))] {
            let baseline = stream_via(&img, Ingest::Owning, shards, window);
            // Without eviction the drain report equals the batch report,
            // whatever the ingest path.
            assert_eq!(
                baseline.1.report.to_json(),
                batch.to_json(),
                "owning/{shards} shards/{window:?}"
            );
            for ingest in [Ingest::ReadInto, Ingest::Slice] {
                let run = stream_via(&img, ingest, shards, window);
                assert_same_run(
                    &run,
                    &baseline,
                    &format!("{ingest:?}/{shards} shards/{window:?}"),
                );
            }
        }
    }
}

proptest! {
    /// Randomized traces through (owning, read_into, SliceReader) ×
    /// randomized shard count and windowing: all windows and both final
    /// reports must serialize identically. (`window_secs` of 0 means
    /// unwindowed.)
    #[test]
    fn randomized_traces_identical_across_ingest_paths(
        seed in 0u64..100_000,
        shards in prop_oneof![Just(1usize), Just(2), Just(8)],
        window_secs in 0u64..20,
    ) {
        let records: Vec<Record> =
            MeetingSim::new(scenario::multi_party(seed, 15 * SEC)).collect();
        let img = pcap_image(&records);
        let window = (window_secs > 0).then(|| Duration::from_secs(window_secs));
        let baseline = stream_via(&img, Ingest::Owning, shards, window);
        for ingest in [Ingest::ReadInto, Ingest::Slice] {
            let run = stream_via(&img, ingest, shards, window);
            prop_assert_eq!(run.0.len(), baseline.0.len());
            for (x, y) in run.0.iter().zip(&baseline.0) {
                prop_assert_eq!(x.to_json(), y.to_json());
            }
            prop_assert_eq!(run.1.final_window.to_json(), baseline.1.final_window.to_json());
            prop_assert_eq!(run.1.report.to_json(), baseline.1.report.to_json());
        }
    }
}

proptest! {
    /// For randomized window sizes and shard counts, window deltas always
    /// sum back to the batch totals.
    #[test]
    fn randomized_window_sizes_preserve_totals(
        seed in 0u64..100_000,
        window_secs in 1u64..30,
        shards in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let records: Vec<Record> =
            MeetingSim::new(scenario::multi_party(seed, 30 * SEC)).collect();
        let batch = batch_report(&records);
        let (windows, out) =
            stream_run(&records, shards, Some(Duration::from_secs(window_secs)), None);
        let all = windows.iter().chain(std::iter::once(&out.final_window));
        let packets: u64 = all.clone().map(|w| w.totals.packets).sum();
        prop_assert_eq!(packets, batch.summary.total_packets);
        prop_assert_eq!(window_totals(all), report_totals(&batch));
        prop_assert_eq!(out.report.to_json(), batch.to_json());
    }
}
