//! Differential tests for the multi-source capture front-end: splitting
//! one trace across N concurrent sources and merging it back through the
//! `CaptureMux` fan-in must not change a byte of output.
//!
//! * Any split of a strictly-increasing-timestamp trace (round-robin
//!   interleave or time-disjoint chunks) across 2 or 4 sources produces
//!   window reports and a final report **byte-identical** to the single
//!   concatenated source, at 1/2/8 shards, windowed and unwindowed.
//! * Lossless (`Overflow::Block`) replay never drops: `ring_full_drops`
//!   is zero, per-source packet counters match the split sizes exactly,
//!   and the extended conservation invariant
//!   (`Σ source_packets == packets_in + Σ ring_full_drops`) holds.
//! * Capacity-1 rings only add backpressure, never divergence.

use std::time::Duration;
use zoom_analysis::engine::{EngineConfig, EngineOutput, StreamingEngine};
use zoom_analysis::obs::MetricsSnapshot;
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::report::WindowReport;
use zoom_analysis::PacketSink;
use zoom_capture::mux::{CaptureMux, MuxConfig, Overflow};
use zoom_capture::source::{PacketSource, ReplaySource};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::{LinkType, Record};

/// A multi-party workload with strictly increasing timestamps, so the
/// timestamp-ordered merge has exactly one valid output order and the
/// differential below is unambiguous. (Equal timestamps are legal — the
/// mux tie-breaks by source index — but then "the equivalent single
/// source" is itself ambiguous.)
fn strictly_increasing_records(seed: u64, secs: u64) -> Vec<Record> {
    let mut records: Vec<Record> = MeetingSim::new(scenario::multi_party(seed, secs * SEC)).collect();
    records.sort_by_key(|r| r.ts_nanos);
    let mut last = 0u64;
    for r in &mut records {
        if r.ts_nanos <= last {
            r.ts_nanos = last + 1;
        }
        last = r.ts_nanos;
    }
    records
}

/// How one trace is dealt out to N sources.
#[derive(Clone, Copy, Debug)]
enum Split {
    /// Record `i` goes to source `i % n`: every source spans the whole
    /// trace and the merge interleaves constantly.
    RoundRobin,
    /// Source `j` gets the `j`-th contiguous time slice: the merge
    /// drains sources mostly one after another.
    Contiguous,
}

fn split_records(records: &[Record], n: usize, how: Split) -> Vec<Vec<Record>> {
    let mut parts = vec![Vec::new(); n];
    match how {
        Split::RoundRobin => {
            for (i, r) in records.iter().enumerate() {
                parts[i % n].push(r.clone());
            }
        }
        Split::Contiguous => {
            let chunk = records.len().div_ceil(n);
            for (j, c) in records.chunks(chunk).enumerate() {
                parts[j] = c.to_vec();
            }
        }
    }
    parts
}

/// Run one engine over the mux-merged splits; returns the windows, the
/// drained output, and the metrics snapshot — taken after drain, when
/// the shard workers have quiesced and both halves of the conservation
/// invariant are stable.
fn mux_run(
    splits: Vec<Vec<Record>>,
    shards: usize,
    window: Option<Duration>,
    ring_capacity: usize,
) -> (Vec<WindowReport>, EngineOutput, MetricsSnapshot) {
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: AnalyzerConfig::default(),
        shards,
        window,
        idle_timeout: None,
        qoe: None,
    })
    .expect("valid engine config");
    let mh = engine.metrics_handle();
    let sources: Vec<Box<dyn PacketSource>> = splits
        .iter()
        .enumerate()
        .map(|(i, recs)| {
            Box::new(ReplaySource::new(
                &format!("replay:{i}"),
                LinkType::Ethernet,
                recs.clone(),
            )) as Box<dyn PacketSource>
        })
        .collect();
    let mut mux = CaptureMux::start(
        sources,
        MuxConfig {
            ring_capacity,
            overflow: Overflow::Block,
        },
        Some(&mh),
    );
    let mut windows = Vec::new();
    while let Some(r) = mux.next_record().expect("mux record") {
        engine.push(r.ts_nanos, r.data, r.link).expect("push");
        windows.extend(engine.take_windows());
    }
    assert_eq!(mux.ring_full_drops(), 0, "lossless replay must not drop");
    mux.finish().expect("capture teardown");
    let out = engine.drain().expect("drain");
    let snap = out.analyzer.metrics();
    (windows, out, snap)
}

fn assert_same_run(
    a: &(Vec<WindowReport>, EngineOutput, MetricsSnapshot),
    b: &(Vec<WindowReport>, EngineOutput, MetricsSnapshot),
    label: &str,
) {
    assert_eq!(a.0.len(), b.0.len(), "{label}: window count");
    for (x, y) in a.0.iter().zip(&b.0) {
        assert_eq!(x.to_json(), y.to_json(), "{label}: window {}", x.index);
    }
    assert_eq!(
        a.1.final_window.to_json(),
        b.1.final_window.to_json(),
        "{label}: final window"
    );
    assert_eq!(
        a.1.report.to_json(),
        b.1.report.to_json(),
        "{label}: final report"
    );
}

/// Conservation and per-source accounting over one run's snapshot.
fn assert_capture_accounting(snap: &MetricsSnapshot, splits: &[Vec<Record>], label: &str) {
    assert!(snap.conservation_holds(), "{label}: conservation");
    assert_eq!(snap.sources.len(), splits.len(), "{label}: source count");
    assert_eq!(snap.ring_full_drops_total(), 0, "{label}: drops");
    let total: u64 = splits.iter().map(|s| s.len() as u64).sum();
    assert_eq!(snap.source_packets_total(), total, "{label}: Σ source packets");
    assert_eq!(snap.packets_in, total, "{label}: packets_in");
    // Snapshot sources are label-sorted; labels are replay:0..replay:N
    // with N < 10, so index order survives the sort.
    for (i, part) in splits.iter().enumerate() {
        let s = &snap.sources[i];
        assert_eq!(s.label, format!("replay:{i}"), "{label}: label order");
        assert_eq!(s.packets, part.len() as u64, "{label}: source {i} packets");
        let bytes: u64 = part.iter().map(|r| r.data.len() as u64).sum();
        assert_eq!(s.bytes, bytes, "{label}: source {i} bytes");
    }
}

#[test]
fn split_sources_byte_identical_to_single_source_at_1_2_8_shards() {
    let records = strictly_increasing_records(11, 30);
    assert!(records.len() > 1_000);

    // The sequential no-mux report anchors the whole family.
    let mut direct = Analyzer::new(AnalyzerConfig::default());
    for r in &records {
        direct.push(r.ts_nanos, &r.data, LinkType::Ethernet).expect("push");
    }
    let direct = direct.finish().expect("finish");

    for shards in [1usize, 2, 8] {
        for window in [None, Some(Duration::from_secs(10))] {
            let baseline = mux_run(vec![records.clone()], shards, window, 8);
            assert_eq!(
                baseline.1.report.to_json(),
                direct.to_json(),
                "single source/{shards} shards/{window:?}: vs direct analyzer"
            );
            assert_capture_accounting(
                &baseline.2,
                std::slice::from_ref(&records),
                &format!("single/{shards}/{window:?}"),
            );
            for n in [2usize, 4] {
                for how in [Split::RoundRobin, Split::Contiguous] {
                    let splits = split_records(&records, n, how);
                    let run = mux_run(splits.clone(), shards, window, 8);
                    let label = format!("{n} sources/{how:?}/{shards} shards/{window:?}");
                    assert_same_run(&run, &baseline, &label);
                    assert_capture_accounting(&run.2, &splits, &label);
                }
            }
        }
    }
}

#[test]
fn capacity_one_rings_add_backpressure_not_divergence() {
    let records = strictly_increasing_records(23, 15);
    let baseline = mux_run(vec![records.clone()], 2, Some(Duration::from_secs(5)), 8);
    let splits = split_records(&records, 2, Split::RoundRobin);
    let run = mux_run(splits.clone(), 2, Some(Duration::from_secs(5)), 1);
    assert_same_run(&run, &baseline, "capacity-1 rings");
    assert_capture_accounting(&run.2, &splits, "capacity-1 rings");
}
