//! Differential tests for the sharded pipeline: for any shard count, the
//! `ParallelAnalyzer` must produce results identical to the sequential
//! `Analyzer` — the same `TraceSummary`, the same meeting reports, the
//! same per-media sample sets, and the same RTT samples.
//!
//! The fixed-scenario tests cover the campus workload (many concurrent
//! meetings, background traffic filtered by the capture pipeline) and a
//! P2P meeting (exercising the router-owned STUN registry and the
//! per-record P2P verdict). The property test sweeps randomized small
//! scenarios and shard counts.

use proptest::prelude::*;
use zoom_analysis::parallel::ParallelAnalyzer;
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::PacketSink;
use zoom_capture::cidr::prefix_set;
use zoom_capture::pipeline::{CapturePipeline, PipelineConfig};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::{LinkType, Reader, Record, RecordBuf, SliceReader, Writer};
use zoom_wire::zoom::MediaType;

fn run_sequential(records: &[Record]) -> Analyzer {
    let mut a = Analyzer::new(AnalyzerConfig::default());
    for r in records {
        a.push(r.ts_nanos, &r.data, LinkType::Ethernet).expect("push");
    }
    a
}

fn run_parallel(records: &[Record], shards: usize) -> Analyzer {
    let mut p = ParallelAnalyzer::new(AnalyzerConfig::default(), shards);
    for r in records {
        p.push(r.ts_nanos, &r.data, LinkType::Ethernet).expect("push");
    }
    p.into_analyzer()
}

/// Full-surface equivalence: everything the analyzer reports must match.
fn assert_equivalent(seq: &Analyzer, par: &Analyzer, label: &str) {
    assert_eq!(par.summary(), seq.summary(), "{label}: summary");
    assert_eq!(par.meetings(), seq.meetings(), "{label}: meetings");
    for media in [MediaType::Video, MediaType::Audio, MediaType::ScreenShare] {
        let s = seq.media_samples(media);
        let p = par.media_samples(media);
        assert_eq!(
            p.bitrate_mbps.values(),
            s.bitrate_mbps.values(),
            "{label}: {media:?} bitrate"
        );
        assert_eq!(p.fps.values(), s.fps.values(), "{label}: {media:?} fps");
        assert_eq!(
            p.frame_size.values(),
            s.frame_size.values(),
            "{label}: {media:?} frame size"
        );
        assert_eq!(
            p.jitter_ms.values(),
            s.jitter_ms.values(),
            "{label}: {media:?} jitter"
        );
    }
    assert_eq!(par.fig16_samples(), seq.fig16_samples(), "{label}: fig16");
    assert_eq!(
        par.rtp_rtt_samples(),
        seq.rtp_rtt_samples(),
        "{label}: rtp rtt"
    );
    // TCP handshake RTT samples on distinct flows that share a timestamp
    // may merge in either order; compare as ordered-by-key sets.
    let sort_key =
        |s: &zoom_analysis::metrics::latency::RttSample| (s.at, s.rtt_nanos, s.to);
    let mut seq_tcp = seq.tcp_rtt_samples().to_vec();
    let mut par_tcp = par.tcp_rtt_samples().to_vec();
    seq_tcp.sort_by_key(sort_key);
    par_tcp.sort_by_key(sort_key);
    assert_eq!(par_tcp, seq_tcp, "{label}: tcp rtt");
}

#[test]
fn campus_study_identical_at_1_2_8_shards() {
    // The capture pipeline filters the 4:1 background mix down to Zoom
    // traffic, exactly as in production; both analyzer paths then see the
    // same filtered stream.
    let (scenario_obj, infra) = scenario::campus_study(5, 300 * SEC, 1.0 / 5.0, 4.0);
    let mut capture = CapturePipeline::new(PipelineConfig {
        campus_nets: prefix_set(&[scenario::CAMPUS_NET]),
        excluded_nets: Default::default(),
        zoom_list: infra.ip_list.clone(),
        stun_timeout_nanos: 120 * SEC,
        anonymizer: None,
        family: zoom_wire::family::FamilySelect::Only(zoom_wire::family::FamilyId::Zoom),
    });
    let mut records = Vec::new();
    for record in scenario_obj.into_stream() {
        let (_, out) = capture.process_record(&record, LinkType::Ethernet);
        if let Some(out) = out {
            records.push(out);
        }
    }
    assert!(records.len() > 10_000, "thin feed: {}", records.len());

    let seq = run_sequential(&records);
    assert!(seq.summary().meetings > 0);
    for shards in [1usize, 2, 8] {
        let par = run_parallel(&records, shards);
        assert_equivalent(&seq, &par, &format!("campus/{shards} shards"));
    }
}

#[test]
fn p2p_meeting_identical_at_1_2_8_shards() {
    // P2P flows are recognized via the STUN endpoint registry; in the
    // sharded pipeline that registry lives on the router and its verdict
    // ships with each record, so this exercises the hint path end to end.
    let records: Vec<Record> = MeetingSim::new(scenario::p2p_meeting(7, 120 * SEC)).collect();
    assert!(records.len() > 1_000);

    let seq = run_sequential(&records);
    assert!(
        seq.summary().rtp_streams > 0,
        "p2p scenario produced no streams"
    );
    for shards in [1usize, 2, 8] {
        let par = run_parallel(&records, shards);
        assert_equivalent(&seq, &par, &format!("p2p/{shards} shards"));
    }
}

// ---------------------------------------------------------------------
// Ingest-path equivalence for the batch front-end: feeding the parallel
// analyzer from any of the three readers produces identical JSON.
// ---------------------------------------------------------------------

/// Serialize records into an in-memory classic pcap image so each ingest
/// path starts from identical bytes.
fn pcap_image(records: &[Record]) -> Vec<u8> {
    let mut w = Writer::new(Vec::new(), LinkType::Ethernet).expect("write header");
    for r in records {
        w.write_record(r).expect("write record");
    }
    w.finish().expect("flush")
}

#[derive(Clone, Copy, Debug)]
enum Ingest {
    Owning,
    ReadInto,
    Slice,
}

fn parallel_report_via(img: &[u8], ingest: Ingest, shards: usize) -> String {
    let mut p = ParallelAnalyzer::new(AnalyzerConfig::default(), shards);
    match ingest {
        Ingest::Owning => {
            let mut r = Reader::new(img).expect("pcap header");
            let link = r.link_type();
            while let Some(rec) = r.next_record().expect("record") {
                p.push(rec.ts_nanos, &rec.data, link).expect("push");
            }
        }
        Ingest::ReadInto => {
            let mut r = Reader::new(img).expect("pcap header");
            let link = r.link_type();
            let mut buf = RecordBuf::new();
            while r.read_into(&mut buf).expect("record") {
                p.process_packet(buf.ts_nanos(), buf.data(), link);
            }
        }
        Ingest::Slice => {
            let mut r = SliceReader::new(img).expect("pcap header");
            let link = r.link_type();
            while let Some(rec) = r.next_record().expect("record") {
                p.process_packet(rec.ts_nanos, rec.data, link);
            }
        }
    }
    p.finish().expect("no shard failure").to_json()
}

#[test]
fn ingest_paths_identical_at_1_2_8_shards() {
    let records: Vec<Record> = MeetingSim::new(scenario::multi_party(13, 45 * SEC)).collect();
    assert!(records.len() > 1_000);
    let img = pcap_image(&records);
    let sequential = run_sequential(&records).finish().expect("finish").to_json();
    for shards in [1usize, 2, 8] {
        let baseline = parallel_report_via(&img, Ingest::Owning, shards);
        assert_eq!(baseline, sequential, "owning/{shards} shards vs sequential");
        for ingest in [Ingest::ReadInto, Ingest::Slice] {
            let json = parallel_report_via(&img, ingest, shards);
            assert_eq!(json, baseline, "{ingest:?}/{shards} shards");
        }
    }
}

proptest! {
    /// Randomized traces: every ingest path × shard count serializes the
    /// same final report.
    #[test]
    fn randomized_traces_identical_across_ingest_paths(
        seed in 0u64..100_000,
        shards in prop_oneof![Just(1usize), Just(2), Just(8)],
    ) {
        let records: Vec<Record> =
            MeetingSim::new(scenario::multi_party(seed, 15 * SEC)).collect();
        let img = pcap_image(&records);
        let baseline = parallel_report_via(&img, Ingest::Owning, shards);
        for ingest in [Ingest::ReadInto, Ingest::Slice] {
            prop_assert_eq!(parallel_report_via(&img, ingest, shards), baseline.clone());
        }
    }
}

proptest! {
    /// For randomized small meetings and shard counts, the parallel path
    /// reproduces the sequential trace summary and meeting grouping.
    #[test]
    fn randomized_scenarios_match(
        seed in 0u64..1_000_000,
        secs in 12u64..30,
        shards in 2usize..9,
        p2p in proptest::arbitrary::any::<bool>(),
    ) {
        let cfg = if p2p {
            scenario::p2p_meeting(seed, secs * SEC)
        } else {
            scenario::multi_party(seed, secs * SEC)
        };
        let records: Vec<Record> = MeetingSim::new(cfg).collect();
        let seq = run_sequential(&records);
        let par = run_parallel(&records, shards);
        prop_assert_eq!(par.summary(), seq.summary());
        prop_assert_eq!(par.meetings(), seq.meetings());
    }
}
