//! End-to-end integration: simulator → capture pipeline → analyzer, over
//! a multi-party meeting with mixed media.

use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_capture::cidr::prefix_set;
use zoom_capture::pipeline::{CapturePipeline, PipelineConfig};
use zoom_capture::zoom_nets::{Owner, ZoomIpList, ZoomNetwork};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::LinkType;
use zoom_wire::zoom::MediaType;

fn zoom_list() -> ZoomIpList {
    ZoomIpList::from_networks(vec![ZoomNetwork {
        cidr: "170.114.0.0/16".parse().unwrap(),
        owner: Owner::ZoomAs,
    }])
}

#[test]
fn multi_party_meeting_full_chain() {
    let sim = MeetingSim::new(scenario::multi_party(5, 90 * SEC));
    let mut capture = CapturePipeline::new(PipelineConfig {
        campus_nets: prefix_set(&[scenario::CAMPUS_NET]),
        excluded_nets: Default::default(),
        zoom_list: zoom_list(),
        stun_timeout_nanos: 120 * SEC,
        anonymizer: None,
        family: zoom_wire::family::FamilySelect::Only(zoom_wire::family::FamilyId::Zoom),
    });
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());

    for record in sim {
        let (verdict, out) = capture.process_record(&record, LinkType::Ethernet);
        assert!(
            verdict.passes(),
            "every simulated packet is Zoom traffic, got {verdict:?}"
        );
        let out = out.unwrap();
        analyzer.process_packet(out.ts_nanos, &out.data, LinkType::Ethernet);
    }

    let summary = analyzer.summary();
    assert!(summary.zoom_packets > 10_000, "{summary:?}");
    assert_eq!(summary.meetings, 1, "all streams group into one meeting");
    // Streams: campus uplinks (audio+video+screen for A, audio+video for
    // B) plus downlink copies toward both campus clients.
    assert!(summary.rtp_streams >= 8, "streams {}", summary.rtp_streams);

    // All three media types observed.
    assert!(analyzer.streams().of_type(MediaType::Video).count() >= 2);
    assert!(analyzer.streams().of_type(MediaType::Audio).count() >= 2);
    assert!(analyzer.streams().of_type(MediaType::ScreenShare).count() >= 1);

    // Participant estimate: the two campus clients are visible; the
    // passive off-campus participant is invisible (Fig. 9 limitation).
    let meetings = analyzer.meetings();
    assert_eq!(meetings.len(), 1);
    assert_eq!(meetings[0].participant_estimate, 2);

    // Method-1 RTT: copies of campus uplinks come back to the other
    // campus client; nominal tap↔SFU RTT is 2×22 ms + 0.7 ms processing.
    let rtts = analyzer.rtp_rtt_samples();
    assert!(rtts.len() > 200, "rtt samples {}", rtts.len());
    let mean = rtts.iter().map(|s| s.rtt_ms()).sum::<f64>() / rtts.len() as f64;
    assert!((35.0..60.0).contains(&mean), "mean rtt {mean}");

    // Decoded fraction: the vast majority of packets are media/RTCP,
    // like Table 2's ~90 %.
    let (dp, _db) = analyzer.classifier().decoded_fraction();
    assert!(dp > 0.75, "decoded packet fraction {dp}");

    // Mobile participant's audio is PT 113 (AudioUnknownMode, Table 3).
    let (pt113_pkts, _) = analyzer.classifier().share(MediaType::Audio, 113);
    assert!(pt113_pkts > 0.0, "mobile PT 113 audio missing");
}

#[test]
fn p2p_meeting_stays_one_meeting_across_switch() {
    let sim = MeetingSim::new(scenario::p2p_meeting(9, 60 * SEC));
    let mut capture = CapturePipeline::new(PipelineConfig {
        campus_nets: prefix_set(&[scenario::CAMPUS_NET]),
        excluded_nets: Default::default(),
        zoom_list: zoom_list(),
        stun_timeout_nanos: 120 * SEC,
        anonymizer: None,
        family: zoom_wire::family::FamilySelect::Only(zoom_wire::family::FamilyId::Zoom),
    });
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    let mut p2p_passed = 0u64;
    for record in sim {
        let (verdict, out) = capture.process_record(&record, LinkType::Ethernet);
        assert!(verdict.passes(), "{verdict:?}");
        if verdict == zoom_capture::pipeline::Verdict::ZoomP2p {
            p2p_passed += 1;
        }
        let out = out.unwrap();
        analyzer.process_packet(out.ts_nanos, &out.data, LinkType::Ethernet);
    }
    assert!(p2p_passed > 1_000, "p2p packets {p2p_passed}");

    let summary = analyzer.summary();
    // Streams exist in both SFU mode (before the switch) and P2P mode;
    // the grouping heuristic must keep them in ONE meeting via RTP-state
    // continuity across the 5-tuple change (§4.3 step 1).
    assert_eq!(summary.meetings, 1, "P2P transition split the meeting");
    let p2p_streams = analyzer
        .streams()
        .iter()
        .filter(|s| !s.key.flow.involves_port(8801))
        .count();
    assert!(p2p_streams >= 1, "p2p streams {p2p_streams}");
}
