//! Differential tests for the distributed shard tier: shipping a trace
//! through `zoom_wire::frame` fragment streams and merging the workers
//! back through `FragmentSource` lanes must not change a byte of output.
//!
//! * Any split of a strictly-increasing-timestamp trace across 1/2/8
//!   fragment workers (round-robin interleave or contiguous time
//!   slices) produces window reports and a final report
//!   **byte-identical** to the single-process analysis, windowed and
//!   unwindowed.
//! * The workers' self-reported accounting survives the wire: the
//!   `zoom_worker_*` snapshot matches the split sizes exactly and the
//!   worker-extended conservation invariant holds
//!   (`Σ worker packets == packets_in + Σ ring_full_drops`).
//! * A merge "crash" mid-trace resumes from a checkpoint: replaying the
//!   same fragments under a `WindowGate` emits exactly the missing
//!   suffix, so crash + restore concatenates to the uninterrupted run —
//!   open windows at crash time lose nothing.
//! * A worker stream cut before its Bye frame surfaces as an error from
//!   the fan-in, never a silently short report.

use std::io::Cursor;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use zoom_analysis::dist::{MergeCheckpoint, WindowGate};
use zoom_analysis::engine::{EngineConfig, EngineOutput, StreamingEngine};
use zoom_analysis::obs::{MetricsSnapshot, WorkerMetrics};
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::report::WindowReport;
use zoom_analysis::PacketSink;
use zoom_capture::fragment::{FragmentSource, WorkerAccount};
use zoom_capture::mux::{CaptureMux, MuxConfig, Overflow};
use zoom_capture::source::PacketSource;
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::frame::{FrameWriter, Totals};
use zoom_wire::handoff::RecordBatch;
use zoom_wire::pcap::{LinkType, Record};

/// A multi-party workload with strictly increasing timestamps, so the
/// timestamp-ordered merge has exactly one valid output order and the
/// differential below is unambiguous.
fn strictly_increasing_records(seed: u64, secs: u64) -> Vec<Record> {
    let mut records: Vec<Record> =
        MeetingSim::new(scenario::multi_party(seed, secs * SEC)).collect();
    records.sort_by_key(|r| r.ts_nanos);
    let mut last = 0u64;
    for r in &mut records {
        if r.ts_nanos <= last {
            r.ts_nanos = last + 1;
        }
        last = r.ts_nanos;
    }
    records
}

#[derive(Clone, Copy, Debug)]
enum Split {
    RoundRobin,
    Contiguous,
}

fn split_records(records: &[Record], n: usize, how: Split) -> Vec<Vec<Record>> {
    let mut parts = vec![Vec::new(); n];
    match how {
        Split::RoundRobin => {
            for (i, r) in records.iter().enumerate() {
                parts[i % n].push(r.clone());
            }
        }
        Split::Contiguous => {
            let chunk = records.len().div_ceil(n);
            for (j, c) in records.chunks(chunk).enumerate() {
                parts[j] = c.to_vec();
            }
        }
    }
    parts
}

/// Encode one worker's records as the wire-framed fragment stream a
/// `analyze --emit-fragments` worker would ship.
fn frame_stream(records: &[Record], label: &str) -> Vec<u8> {
    let mut w = FrameWriter::new(Vec::new(), label, LinkType::Ethernet).expect("header");
    let mut batch = RecordBatch::new();
    let mut bytes = 0u64;
    let mut frames = 0u64;
    for chunk in records.chunks(64) {
        batch.clear();
        for r in chunk {
            batch.push(r.ts_nanos, r.orig_len, &r.data);
            bytes += r.data.len() as u64;
        }
        w.write_batch(&batch).expect("records frame");
        frames += 1;
    }
    w.finish(Totals {
        packets: records.len() as u64,
        bytes,
        batches: frames,
        ring_full_drops: 0,
        truncated: 0,
    })
    .expect("bye frame")
}

fn sync_workers(pairs: &[(Arc<WorkerAccount>, Arc<WorkerMetrics>)]) {
    for (acc, wm) in pairs {
        let t = acc.totals();
        wm.packets.set(t.packets);
        wm.bytes.set(t.bytes);
        wm.batches.set(t.batches);
        wm.ring_full_drops.set(t.ring_full_drops);
        wm.truncated.set(t.truncated);
        let received = acc.records_received.load(Ordering::Acquire);
        let have = wm.records_received.get();
        if received > have {
            wm.records_received.add(received - have);
        }
        wm.complete
            .set(u64::from(acc.complete.load(Ordering::Acquire)));
    }
}

/// Run the merge-node pipeline over the fragment-encoded splits exactly
/// as `zoom-tools merge` wires it: one `FragmentSource` lane per worker,
/// worker accounts folded into the registry, snapshot after drain.
fn fragment_run(
    splits: &[Vec<Record>],
    shards: usize,
    window: Option<Duration>,
) -> (Vec<WindowReport>, EngineOutput, MetricsSnapshot) {
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: AnalyzerConfig::default(),
        shards,
        window,
        idle_timeout: None,
        qoe: None,
    })
    .expect("valid engine config");
    let mh = engine.metrics_handle();
    let mut pairs = Vec::new();
    let sources: Vec<Box<dyn PacketSource>> = splits
        .iter()
        .enumerate()
        .map(|(i, recs)| {
            let stream = frame_stream(recs, &format!("w{i}"));
            let src = FragmentSource::open(Cursor::new(stream)).expect("valid stream");
            pairs.push((src.account(), mh.register_worker(src.worker_label())));
            Box::new(src) as Box<dyn PacketSource>
        })
        .collect();
    let mut mux = CaptureMux::start(
        sources,
        MuxConfig {
            ring_capacity: 8,
            overflow: Overflow::Block,
        },
        Some(&mh),
    );
    let mut windows = Vec::new();
    while let Some(r) = mux.next_record().expect("mux record") {
        engine.push(r.ts_nanos, r.data, r.link).expect("push");
        windows.extend(engine.take_windows());
    }
    assert_eq!(mux.ring_full_drops(), 0, "lossless replay must not drop");
    mux.finish().expect("capture teardown");
    sync_workers(&pairs);
    let out = engine.drain().expect("drain");
    let snap = out.analyzer.metrics();
    (windows, out, snap)
}

/// The single-process anchor: plain sequential analysis plus, when
/// windowed, the streaming engine over the already-merged record order.
fn single_process_run(
    records: &[Record],
    shards: usize,
    window: Option<Duration>,
) -> (Vec<WindowReport>, EngineOutput) {
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: AnalyzerConfig::default(),
        shards,
        window,
        idle_timeout: None,
        qoe: None,
    })
    .expect("valid engine config");
    let mut windows = Vec::new();
    for r in records {
        engine
            .push(r.ts_nanos, &r.data, LinkType::Ethernet)
            .expect("push");
        windows.extend(engine.take_windows());
    }
    let out = engine.drain().expect("drain");
    (windows, out)
}

fn assert_same_output(
    windows: &[WindowReport],
    out: &EngineOutput,
    base_windows: &[WindowReport],
    base_out: &EngineOutput,
    label: &str,
) {
    assert_eq!(windows.len(), base_windows.len(), "{label}: window count");
    for (x, y) in windows.iter().zip(base_windows) {
        assert_eq!(x.to_json(), y.to_json(), "{label}: window {}", x.index);
    }
    assert_eq!(
        out.final_window.to_json(),
        base_out.final_window.to_json(),
        "{label}: final window"
    );
    assert_eq!(
        out.report.to_json(),
        base_out.report.to_json(),
        "{label}: final report"
    );
}

/// Worker accounting in the snapshot must match the splits exactly and
/// keep the worker-extended conservation invariant intact.
fn assert_worker_accounting(snap: &MetricsSnapshot, splits: &[Vec<Record>], label: &str) {
    assert!(snap.conservation_holds(), "{label}: conservation");
    assert_eq!(snap.workers.len(), splits.len(), "{label}: worker count");
    let total: u64 = splits.iter().map(|s| s.len() as u64).sum();
    assert_eq!(snap.worker_packets_total(), total, "{label}: Σ worker packets");
    assert_eq!(
        snap.worker_records_received_total(),
        total,
        "{label}: Σ records received"
    );
    assert_eq!(snap.packets_in, total, "{label}: merge packets_in");
    for (i, part) in splits.iter().enumerate() {
        let w = &snap.workers[i];
        assert_eq!(w.label, format!("w{i}"), "{label}: worker label");
        assert_eq!(w.packets, part.len() as u64, "{label}: worker {i} packets");
        assert_eq!(
            w.records_received,
            part.len() as u64,
            "{label}: worker {i} received"
        );
        let bytes: u64 = part.iter().map(|r| r.data.len() as u64).sum();
        assert_eq!(w.bytes, bytes, "{label}: worker {i} bytes");
        assert_eq!(w.ring_full_drops, 0, "{label}: worker {i} drops");
        assert!(w.complete, "{label}: worker {i} saw Bye");
    }
}

#[test]
fn fragment_workers_byte_identical_to_single_process() {
    let records = strictly_increasing_records(11, 30);
    assert!(records.len() > 1_000);

    // The sequential no-mux report anchors the whole family.
    let mut direct = Analyzer::new(AnalyzerConfig::default());
    for r in &records {
        direct
            .push(r.ts_nanos, &r.data, LinkType::Ethernet)
            .expect("push");
    }
    let direct = direct.finish().expect("finish");

    for window in [None, Some(Duration::from_secs(10))] {
        let (base_windows, base_out) = single_process_run(&records, 1, window);
        assert_eq!(
            base_out.report.to_json(),
            direct.to_json(),
            "single-process anchor/{window:?}"
        );
        for n in [1usize, 2, 8] {
            for how in [Split::RoundRobin, Split::Contiguous] {
                let splits = split_records(&records, n, how);
                let (windows, out, snap) = fragment_run(&splits, 1, window);
                let label = format!("{n} workers/{how:?}/{window:?}");
                assert_same_output(&windows, &out, &base_windows, &base_out, &label);
                assert_worker_accounting(&snap, &splits, &label);
            }
        }
    }
}

#[test]
fn sharded_merge_matches_sequential_merge() {
    let records = strictly_increasing_records(29, 15);
    let splits = split_records(&records, 2, Split::RoundRobin);
    let window = Some(Duration::from_secs(5));
    let (base_windows, base_out, _) = {
        let (w, o, s) = fragment_run(&splits, 1, window);
        (w, o, s)
    };
    let (windows, out, snap) = fragment_run(&splits, 4, window);
    assert_same_output(&windows, &out, &base_windows, &base_out, "4 shards");
    assert_worker_accounting(&snap, &splits, "4 shards");
}

/// Crash + restore: an incarnation that dies mid-trace emitted some
/// window prefix; the restore replays the same fragments under a
/// `WindowGate` and must emit exactly the missing suffix — including
/// the windows that were still open at crash time.
#[test]
fn merge_restart_resumes_from_checkpoint_without_losing_windows() {
    let records = strictly_increasing_records(17, 25);
    let splits = split_records(&records, 2, Split::RoundRobin);
    let window = Some(Duration::from_secs(4));

    // Uninterrupted reference.
    let (all_windows, all_out, _) = fragment_run(&splits, 1, window);
    assert!(
        all_windows.len() >= 4,
        "need several windows for a meaningful crash point"
    );

    // Incarnation 1: dies after ~60% of the merged trace, mid-window.
    // The merged order of strictly increasing timestamps is the sorted
    // trace itself, so feeding the prefix directly is exactly what the
    // crashed merge had pushed.
    let crash_at = records.len() * 6 / 10;
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: AnalyzerConfig::default(),
        shards: 1,
        window,
        idle_timeout: None,
        qoe: None,
    })
    .expect("engine");
    let mut emitted = Vec::new();
    for r in &records[..crash_at] {
        engine
            .push(r.ts_nanos, &r.data, LinkType::Ethernet)
            .expect("push");
        emitted.extend(engine.take_windows());
    }
    let checkpoint = MergeCheckpoint {
        windows_emitted: emitted.len() as u64,
        workers: vec![],
    };
    drop(engine); // the crash: no drain, open windows lost in memory

    // Incarnation 2: full deterministic replay, prefix suppressed.
    let text = checkpoint.serialize();
    let restored = MergeCheckpoint::parse(&text).expect("reparse");
    let mut gate = WindowGate::resume_from(&restored);
    let (replayed, out, _) = fragment_run(&splits, 1, window);
    let resumed: Vec<&WindowReport> =
        replayed.iter().filter(|_| gate.admit()).collect();

    // Crash output + resumed output == uninterrupted output.
    let stitched: Vec<&WindowReport> =
        emitted.iter().chain(resumed.iter().copied()).collect();
    assert_eq!(stitched.len(), all_windows.len(), "stitched window count");
    for (x, y) in stitched.iter().zip(&all_windows) {
        assert_eq!(x.to_json(), y.to_json(), "stitched window {}", y.index);
    }
    assert_eq!(
        out.final_window.to_json(),
        all_out.final_window.to_json(),
        "final window after restore"
    );
    assert_eq!(
        out.report.to_json(),
        all_out.report.to_json(),
        "final report after restore"
    );
}

/// A worker cut off before its Bye frame must fail the merge loudly.
#[test]
fn cut_worker_stream_is_an_error_not_a_short_report() {
    let records = strictly_increasing_records(5, 10);
    let splits = split_records(&records, 2, Split::RoundRobin);
    let ok = frame_stream(&splits[0], "w0");
    let mut cut = frame_stream(&splits[1], "w1");
    cut.truncate(cut.len() - 50); // lose the Bye (and a record tail)

    let sources: Vec<Box<dyn PacketSource>> = vec![
        Box::new(FragmentSource::open(Cursor::new(ok)).expect("ok stream")),
        Box::new(FragmentSource::open(Cursor::new(cut)).expect("header still valid")),
    ];
    let mut mux = CaptureMux::start(sources, MuxConfig::default(), None);
    let err = loop {
        match mux.next_record() {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("cut stream passed for a complete merge"),
            Err(e) => break e,
        }
    };
    let msg = err.to_string();
    assert!(
        msg.contains("Bye") || msg.contains("truncated"),
        "unhelpful cut-stream error: {msg}"
    );
    let _ = mux.finish();
}
