//! The §4.2 reverse-engineering methodology applied blind to simulated
//! Zoom traffic: the toolkit must rediscover the header layout this
//! repository implements — Table 2's offsets — without using the parser.

use std::collections::HashMap;
use zoom_analysis::entropy::{extract_series, find_rtcp_by_ssrc, find_rtp_offsets, FieldClass};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::dissect::{dissect, P2pProbe, Transport};
use zoom_wire::flow::FiveTuple;
use zoom_wire::pcap::LinkType;

/// Per-flow raw payloads: the Zoom media type (if any) plus timestamped
/// UDP payload bytes.
type FlowPayloads = HashMap<FiveTuple, (Option<u8>, Vec<(u64, Vec<u8>)>)>;

/// Collect raw UDP payloads per flow from a simulated meeting, with the
/// Zoom media type recorded per flow so the test can select flows (the
/// discovery functions themselves never see it).
fn flows_by_payload(duration: u64) -> FlowPayloads {
    let mut cfg = scenario::multi_party(23, duration * SEC);
    cfg.participants.truncate(3); // drop the passive participant
    let sim = MeetingSim::new(cfg);
    let mut flows: FlowPayloads = HashMap::new();
    for record in sim {
        let Ok(d) = dissect(
            record.ts_nanos,
            &record.data,
            LinkType::Ethernet,
            P2pProbe::Off,
        ) else {
            continue;
        };
        if !matches!(d.transport, Transport::Udp { .. }) {
            continue;
        }
        let entry = flows.entry(d.five_tuple).or_default();
        if entry.0.is_none() {
            if let Some(z) = d.zoom() {
                if z.media.media_type.is_rtp_media() {
                    entry.0 = Some(z.media.media_type.to_byte());
                }
            }
        }
        entry.1.push((d.ts_nanos, d.payload.to_vec()));
    }
    flows
}

#[test]
fn rediscovers_table2_rtp_offsets() {
    // Long enough that the screen share (which starts at 30 s and emits
    // sporadically) accumulates a sizeable flow.
    let flows = flows_by_payload(150);
    // Expected absolute RTP offsets for server-based traffic: 8-byte SFU
    // encapsulation + media-encapsulation offset (Table 2).
    let expected: &[(u8, usize)] = &[(15, 8 + 19), (16, 8 + 24), (13, 8 + 27)];
    for &(media_byte, want_offset) in expected {
        let (_, (_, packets)) = flows
            .iter()
            .filter(|(_, (mt, p))| *mt == Some(media_byte) && p.len() > 100)
            .max_by_key(|(_, (_, p))| p.len())
            .unwrap_or_else(|| panic!("no flow of media type {media_byte}"));
        let hits = find_rtp_offsets(packets, 48);
        assert!(
            hits.iter().any(|&(off, _)| off == want_offset),
            "media type {media_byte}: expected RTP at {want_offset}, found {hits:?}"
        );
    }
}

#[test]
fn first_payload_byte_is_the_sfu_type_identifier() {
    let flows = flows_by_payload(30);
    let (_, (_, packets)) = flows
        .iter()
        .max_by_key(|(_, (_, p))| p.len())
        .expect("flows exist");
    // Byte 0 of server-based payloads: the SFU encapsulation type, 0x05
    // for the overwhelming majority (the paper: 98.4 %).
    let series = extract_series(packets.iter().map(|(t, p)| (*t, p.as_slice())), 0, 1);
    let total = series.values.len();
    let fives = series.values.iter().filter(|&&(_, v)| v == 5).count();
    assert!(
        fives as f64 / total as f64 > 0.9,
        "{fives}/{total} packets start with 0x05"
    );
    assert!(matches!(
        series.classify(),
        FieldClass::Identifier | FieldClass::Constant
    ));
}

#[test]
fn media_type_byte_is_an_identifier_field() {
    let flows = flows_by_payload(30);
    let (_, (_, packets)) = flows
        .iter()
        .max_by_key(|(_, (_, p))| p.len())
        .expect("flows exist");
    // Byte 8 (first media-encapsulation byte) is a small identifier set:
    // 13/15/16/33/34 plus control types.
    let series = extract_series(packets.iter().map(|(t, p)| (*t, p.as_slice())), 8, 1);
    assert!(matches!(
        series.classify(),
        FieldClass::Identifier | FieldClass::Constant
    ));
    let distinct: std::collections::HashSet<u64> = series.values.iter().map(|&(_, v)| v).collect();
    assert!(distinct.len() <= 8, "media-type values: {distinct:?}");
}

#[test]
fn encrypted_payload_region_reads_as_random() {
    let flows = flows_by_payload(30);
    // Video flow: payload region starts after 8 + 24 + 12-or-20 bytes of
    // headers; offset 60 is safely inside encrypted media for video
    // packets.
    let (_, (_, packets)) = flows
        .iter()
        .filter(|(_, (mt, _))| *mt == Some(16))
        .max_by_key(|(_, (_, p))| p.len())
        .expect("video flow");
    let series = extract_series(packets.iter().map(|(t, p)| (*t, p.as_slice())), 60, 4);
    assert!(series.values.len() > 100);
    assert_eq!(series.classify(), FieldClass::Random);
}

#[test]
fn rtcp_found_by_ssrc_correlation() {
    let flows = flows_by_payload(45);
    let (_, (_, packets)) = flows
        .iter()
        .filter(|(_, (mt, _))| *mt == Some(16))
        .max_by_key(|(_, (_, p))| p.len())
        .expect("video flow");
    // Learn SSRCs from RTP at the discovered offset, then hunt RTCP in
    // the non-RTP remainder.
    let hits = find_rtp_offsets(packets, 48);
    let off = hits.first().expect("rtp found").0;
    let mut ssrcs = std::collections::HashSet::new();
    let mut non_rtp = Vec::new();
    for (t, p) in packets {
        if p.len() >= off + 12 && zoom_wire::rtp::Packet::new_checked(&p[off..]).is_ok() {
            ssrcs.insert(zoom_wire::rtp::Packet::new_unchecked(&p[off..]).ssrc());
        } else {
            non_rtp.push((*t, p.clone()));
        }
    }
    assert!(!non_rtp.is_empty(), "RTCP packets expected in the flow");
    let ssrcs: Vec<u32> = ssrcs.into_iter().collect();
    let by_offset = find_rtcp_by_ssrc(&non_rtp, &ssrcs);
    // RTCP SR: 8 (SFU encap) + 16 (media encap) + 4 (SR header) = 28.
    assert!(
        by_offset.get(&28).copied().unwrap_or(0) > 0,
        "SSRC not found at the RTCP SR position: {by_offset:?}"
    );
}
