//! Trace I/O integration: a simulated meeting written to pcap and read
//! back must analyze identically to the in-memory stream, for both
//! nanosecond (our writer) and microsecond (tcpdump-classic) files.

use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::{LinkType, Reader, Record, Writer, MAGIC_USEC};

fn capture(duration_secs: u64) -> Vec<Record> {
    let mut cfg = scenario::validation_experiment(55);
    for p in &mut cfg.participants {
        p.leave_at = duration_secs * SEC;
    }
    MeetingSim::new(cfg).collect()
}

fn analyze(records: impl IntoIterator<Item = Record>) -> zoom_analysis::pipeline::TraceSummary {
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    for r in records {
        analyzer.process_packet(r.ts_nanos, &r.data, LinkType::Ethernet);
    }
    analyzer.summary()
}

#[test]
fn nanosecond_roundtrip_is_lossless() {
    let records = capture(20);
    let direct = analyze(records.clone());

    let mut buf = Vec::new();
    {
        let mut w = Writer::new(&mut buf, LinkType::Ethernet).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        w.finish().unwrap();
    }
    let reader = Reader::new(&buf[..]).unwrap();
    assert_eq!(reader.link_type(), LinkType::Ethernet);
    let replayed: Vec<Record> = reader.records().map(|r| r.unwrap()).collect();
    assert_eq!(replayed.len(), records.len());
    assert_eq!(replayed, records, "byte-exact roundtrip");

    let from_file = analyze(replayed);
    assert_eq!(direct.zoom_packets, from_file.zoom_packets);
    assert_eq!(direct.rtp_streams, from_file.rtp_streams);
    assert_eq!(direct.meetings, from_file.meetings);
}

#[test]
fn microsecond_file_truncates_timestamps_but_still_analyzes() {
    let records = capture(15);

    // Hand-write a µs-resolution file (what classic tcpdump produces).
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC_USEC.to_le_bytes());
    buf.extend_from_slice(&2u16.to_le_bytes());
    buf.extend_from_slice(&4u16.to_le_bytes());
    buf.extend_from_slice(&[0u8; 8]);
    buf.extend_from_slice(&262_144u32.to_le_bytes());
    buf.extend_from_slice(&1u32.to_le_bytes()); // Ethernet
    for r in &records {
        let secs = (r.ts_nanos / 1_000_000_000) as u32;
        let usecs = ((r.ts_nanos % 1_000_000_000) / 1_000) as u32;
        buf.extend_from_slice(&secs.to_le_bytes());
        buf.extend_from_slice(&usecs.to_le_bytes());
        buf.extend_from_slice(&(r.data.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(r.data.len() as u32).to_le_bytes());
        buf.extend_from_slice(&r.data);
    }
    let replayed: Vec<Record> = Reader::new(&buf[..])
        .unwrap()
        .records()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(replayed.len(), records.len());
    // Timestamps rounded down to µs.
    for (a, b) in records.iter().zip(&replayed) {
        assert_eq!(a.ts_nanos / 1_000, b.ts_nanos / 1_000);
        assert!(a.ts_nanos >= b.ts_nanos);
    }
    let direct = analyze(records);
    let from_file = analyze(replayed);
    assert_eq!(direct.zoom_packets, from_file.zoom_packets);
    assert_eq!(direct.rtp_streams, from_file.rtp_streams);
    assert_eq!(direct.meetings, from_file.meetings);
}

#[test]
fn snaplen_clipped_records_partially_analyzable() {
    // A capture that clips packets at 96 bytes (headers survive, media
    // payload is cut): streams are still identified, byte counts differ.
    let records = capture(10);
    let clipped: Vec<Record> = records
        .iter()
        .map(|r| Record {
            ts_nanos: r.ts_nanos,
            orig_len: r.data.len() as u32,
            data: r.data[..r.data.len().min(96)].to_vec(),
        })
        .collect();
    let full = analyze(records);
    let cut = analyze(clipped);
    // Clipping invalidates most media packets' inner parse (lengths no
    // longer match), but the trace must not panic and flow-level counts
    // must still be produced.
    assert!(cut.total_packets == full.total_packets);
}
