//! Refactor-equivalence suite for the pluggable `ProtocolFamily` API.
//!
//! The family dispatch refactor must be invisible on Zoom traffic: a
//! Zoom-only trace produces **byte-identical** report JSON whether the
//! analyzer runs with its default configuration, an explicit
//! `FamilySelect::Only(Zoom)`, or `FamilySelect::Auto` — at every shard
//! count, windowed and unwindowed, batched and per-record.
//!
//! The WebRTC family side is pinned too: a simulated WebRTC trace
//! classifies under `Auto` (and is untouched under `Only(Zoom)`), is
//! deterministic across shard counts and batch sizes, and attributes
//! SRTP framing failures to `malformed_srtp` — never to Zoom's
//! `malformed_zme` stage.

use std::time::Duration;
use zoom_analysis::engine::{EngineConfig, EngineOutput, StreamingEngine};
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::report::{AnalysisReport, WindowReport};
use zoom_analysis::PacketSink;
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::{MS, SEC};
use zoom_wire::compose;
use zoom_wire::family::{FamilyId, FamilySelect};
use zoom_wire::handoff::RecordBatch;
use zoom_wire::pcap::{LinkType, Record};

/// A Zoom-only trace that exercises both dispatch paths the refactor
/// touched: SFU media (multi-party) and the STUN-registered P2P second
/// chance, where the keep-alive claim now checks the WebRTC framing.
fn zoom_records() -> Vec<Record> {
    let mut records: Vec<Record> =
        MeetingSim::new(scenario::multi_party(3, 20 * SEC)).collect();
    records.extend(MeetingSim::new(scenario::p2p_meeting(5, 20 * SEC)));
    records.sort_by_key(|r| r.ts_nanos);
    records
}

fn webrtc_records() -> Vec<Record> {
    zoom_sim::webrtc::scenario(3, 5 * SEC)
}

fn family_config(select: FamilySelect) -> AnalyzerConfig {
    AnalyzerConfig::builder()
        .family(select)
        .build()
        .expect("valid config")
}

fn sequential_report(records: &[Record], config: AnalyzerConfig) -> AnalysisReport {
    let mut a = Analyzer::new(config);
    for r in records {
        a.push(r.ts_nanos, &r.data, LinkType::Ethernet).expect("push");
    }
    a.finish().expect("finish")
}

fn fill(batch: &mut RecordBatch, records: &[Record]) {
    batch.clear();
    for r in records {
        batch.push(r.ts_nanos, r.orig_len, &r.data);
    }
}

fn stream(
    records: &[Record],
    config: AnalyzerConfig,
    shards: usize,
    window: Option<Duration>,
    batch_size: Option<usize>,
) -> (Vec<WindowReport>, EngineOutput) {
    let mut engine = StreamingEngine::new(EngineConfig {
        analyzer: config,
        shards,
        window,
        idle_timeout: None,
        qoe: None,
    })
    .expect("valid engine config");
    let mut windows = Vec::new();
    match batch_size {
        None => {
            for r in records {
                engine
                    .push(r.ts_nanos, &r.data, LinkType::Ethernet)
                    .expect("push");
                windows.extend(engine.take_windows());
            }
        }
        Some(size) => {
            let mut batch = RecordBatch::new();
            for chunk in records.chunks(size) {
                fill(&mut batch, chunk);
                engine.push_batch(&batch, LinkType::Ethernet).expect("push_batch");
                windows.extend(engine.take_windows());
            }
        }
    }
    let out = engine.drain().expect("drain");
    (windows, out)
}

fn assert_streams_identical(
    label: &str,
    got: &(Vec<WindowReport>, EngineOutput),
    want: &(Vec<WindowReport>, EngineOutput),
) {
    assert_eq!(got.0.len(), want.0.len(), "{label}: window count");
    for (i, (x, y)) in got.0.iter().zip(&want.0).enumerate() {
        assert_eq!(x.to_json(), y.to_json(), "{label}: window {i}");
    }
    assert_eq!(
        got.1.final_window.to_json(),
        want.1.final_window.to_json(),
        "{label}: final window"
    );
    assert_eq!(
        got.1.report.to_json(),
        want.1.report.to_json(),
        "{label}: final report"
    );
}

/// The family selector variants that must all be no-ops on Zoom traffic.
fn zoom_equivalent_selects() -> [FamilySelect; 2] {
    [FamilySelect::Only(FamilyId::Zoom), FamilySelect::Auto]
}

#[test]
fn zoom_report_invariant_across_family_selects() {
    let records = zoom_records();
    let want = sequential_report(&records, AnalyzerConfig::default());
    assert!(want.summary.zoom_packets > 0, "trace must carry Zoom traffic");
    assert_eq!(
        want.summary.webrtc_packets, 0,
        "a Zoom-only trace must not classify as WebRTC"
    );
    assert!(want.families.is_empty(), "no family table on Zoom-only traces");
    let want = want.to_json();
    for select in zoom_equivalent_selects() {
        let got = sequential_report(&records, family_config(select)).to_json();
        assert_eq!(got, want, "family select {select:?}");
    }
}

#[test]
fn zoom_engine_invariant_across_selects_shards_and_batching() {
    let records = zoom_records();
    for shards in [1usize, 2, 8] {
        let want = stream(&records, AnalyzerConfig::default(), shards, None, None);
        for select in zoom_equivalent_selects() {
            for batch_size in [None, Some(64usize)] {
                let got = stream(&records, family_config(select), shards, None, batch_size);
                assert_streams_identical(
                    &format!("{shards} shards, {select:?}, batch {batch_size:?}"),
                    &got,
                    &want,
                );
            }
        }
    }
}

#[test]
fn zoom_windowed_engine_invariant_across_selects_shards_and_batching() {
    let records = zoom_records();
    let window = Some(Duration::from_secs(2));
    for shards in [1usize, 2, 8] {
        let want = stream(&records, AnalyzerConfig::default(), shards, window, None);
        assert!(want.0.len() > 3, "expected several 2s windows");
        for select in zoom_equivalent_selects() {
            for batch_size in [None, Some(4096usize)] {
                let got = stream(&records, family_config(select), shards, window, batch_size);
                assert_streams_identical(
                    &format!("windowed, {shards} shards, {select:?}, batch {batch_size:?}"),
                    &got,
                    &want,
                );
            }
        }
    }
}

#[test]
fn webrtc_trace_classifies_under_auto() {
    let records = webrtc_records();
    let report = sequential_report(&records, AnalyzerConfig::default());
    assert!(
        report.summary.webrtc_packets > 100,
        "WebRTC media must classify under Auto (got {})",
        report.summary.webrtc_packets
    );
    assert!(
        report.summary.webrtc_packets > report.summary.zoom_packets,
        "the trace is WebRTC-dominated"
    );
    assert!(!report.families.is_empty(), "Table-6 family rows expected");
    assert!(
        report.families.iter().all(|r| r.label == "webrtc"),
        "every classified family row is WebRTC"
    );
    assert!(!report.streams.is_empty(), "SRTP streams must be tracked");
    assert!(
        report.streams.iter().all(|s| s.family == FamilyId::Webrtc),
        "every stream belongs to the WebRTC family"
    );
    assert_eq!(
        report.drops.malformed_zme, 0,
        "WebRTC traffic must never hit Zoom's ZME drop stage"
    );
    assert_eq!(report.drops.malformed_srtp, 0, "clean trace: no SRTP drops");
}

#[test]
fn webrtc_trace_untouched_under_only_zoom() {
    let records = webrtc_records();
    let report = sequential_report(&records, family_config(FamilySelect::Only(FamilyId::Zoom)));
    assert_eq!(
        report.summary.webrtc_packets, 0,
        "Only(Zoom) must not classify WebRTC traffic"
    );
    assert!(report.families.is_empty(), "no family table without WebRTC packets");
    assert!(
        report.streams.iter().all(|s| s.family == FamilyId::Zoom),
        "any tracked stream stays in the Zoom family"
    );
}

#[test]
fn webrtc_engine_deterministic_across_shards_and_batching() {
    let records = webrtc_records();
    let want = stream(&records, AnalyzerConfig::default(), 1, None, None);
    assert!(
        want.1.report.summary.webrtc_packets > 100,
        "baseline must classify WebRTC"
    );
    for shards in [1usize, 2, 8] {
        for batch_size in [None, Some(64usize)] {
            let got = stream(&records, AnalyzerConfig::default(), shards, None, batch_size);
            assert_streams_identical(
                &format!("webrtc, {shards} shards, batch {batch_size:?}"),
                &got,
                &want,
            );
        }
    }
}

/// Satellite: drop attribution. A record on a flow with an observed
/// DTLS-SRTP handshake whose payload fails both family framings is a
/// WebRTC-family drop (`malformed_srtp`), not a Zoom one
/// (`malformed_zme`) — sequentially and under every shard count.
#[test]
fn srtp_framing_failure_attributed_to_webrtc_family() {
    let cfg = zoom_sim::webrtc::SessionConfig::single(7, 3 * SEC);
    let mut records = zoom_sim::webrtc::session_records(cfg);
    // Media type 15 (Audio) needs a 19-byte header, so Zoom's loose P2P
    // parse rejects this payload; version bits 0b00 reject it as SRTP
    // and byte 15 is no DTLS content type. Both framings fail — the
    // drop must land on the WebRTC flow's SRTP stage.
    let last_ts = records.last().expect("session records").ts_nanos;
    let data = compose::udp_ipv4_ethernet(
        cfg.client,
        cfg.peer,
        cfg.client_port,
        cfg.peer_port,
        &[15, 0, 0],
    );
    records.push(Record {
        ts_nanos: last_ts + MS,
        orig_len: data.len() as u32,
        data,
    });

    for shards in [1usize, 2, 8] {
        let (_, out) = stream(&records, AnalyzerConfig::default(), shards, None, None);
        assert_eq!(
            out.report.drops.malformed_srtp, 1,
            "{shards} shards: SRTP framing failure must count once"
        );
        assert_eq!(
            out.report.drops.malformed_zme, 0,
            "{shards} shards: the drop must not leak into Zoom's ZME stage"
        );
        // Conservation per family: the malformed record is the only
        // non-classified one in the trace.
        assert_eq!(
            out.report.summary.total_packets,
            out.report.summary.zoom_packets + out.report.summary.webrtc_packets + 1,
            "{shards} shards: exactly the malformed record stays unclassified"
        );
    }
}
