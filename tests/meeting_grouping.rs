//! Grouping-heuristic validation against campus ground truth: the
//! analyzer's meeting count and participant estimates compared with what
//! the workload generator actually created (§4.3, Figs. 8 & 9).

use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_sim::campus::{CampusConfig, CampusScenario};
use zoom_sim::infra::Infrastructure;
use zoom_sim::time::SEC;
use zoom_wire::pcap::LinkType;

#[test]
fn meeting_count_close_to_truth() {
    let infra = Infrastructure::generate();
    let scenario = CampusScenario::generate(
        CampusConfig {
            duration: 600 * SEC, // 10 minutes
            scale: 1.0 / 2.0,
            start_hour: 10.0,
            background_ratio: 0.0,
            seed: 21,
            ..Default::default()
        },
        &infra,
    );
    let truth_meetings = scenario.truth.len();
    assert!(truth_meetings >= 3, "workload too small: {truth_meetings}");
    // Ground truth for visible-participant comparison; meetings whose
    // campus participants are all passive can legitimately be missed.
    let truth_visible: usize = scenario.truth.iter().map(|t| t.active_participants).sum();

    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    for record in scenario.into_stream() {
        analyzer.process_packet(record.ts_nanos, &record.data, LinkType::Ethernet);
    }
    let summary = analyzer.summary();
    // The heuristic may merge meetings (shared NAT'd client IPs) or miss
    // invisible ones, but must land in the right ballpark.
    assert!(
        summary.meetings >= truth_meetings / 2 && summary.meetings <= truth_meetings + 2,
        "estimated {} meetings vs {} true",
        summary.meetings,
        truth_meetings
    );

    // Participant estimates: the sum of visible clients is bounded by
    // the true active participant count (passivity and off-campus legs
    // only ever *hide* participants).
    let est_participants: usize = analyzer
        .meetings()
        .iter()
        .map(|m| m.participant_estimate)
        .sum();
    assert!(est_participants > 0);
    assert!(
        est_participants <= truth_visible + 2,
        "estimated {est_participants} vs visible truth {truth_visible}"
    );
}

#[test]
fn duplicate_streams_grouped_for_rtt() {
    // A meeting with two campus participants produces duplicate stream
    // groups (uplink + forwarded copy) — the prerequisite for Method-1
    // RTT (§4.3.1: "detecting stream copies ... is the only part of the
    // heuristic required for RTT estimation").
    use zoom_sim::meeting::MeetingSim;
    use zoom_sim::scenario;

    let sim = MeetingSim::new(scenario::validation_experiment(31));
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    for record in sim {
        analyzer.process_packet(record.ts_nanos, &record.data, LinkType::Ethernet);
    }
    let groups = analyzer.duplicate_stream_groups();
    let multi: Vec<_> = groups.values().filter(|v| v.len() >= 2).collect();
    assert!(
        !multi.is_empty(),
        "no duplicate stream groups found: {groups:?}"
    );
    // Each multi-stream group must span distinct 5-tuples.
    for group in multi {
        let flows: std::collections::HashSet<_> = group.iter().map(|k| k.flow).collect();
        assert_eq!(flows.len(), group.len());
    }
}

#[test]
fn ssrc_collisions_across_meetings_do_not_merge() {
    // Two separate meetings reuse the same small SSRC values (the Zoom
    // behaviour §4.2.3 documents); random RTP timestamp origins keep
    // step 1 from falsely matching them.
    use std::net::Ipv4Addr;
    use zoom_sim::meeting::{MeetingConfig, MeetingSim, ParticipantConfig};

    let mk = |id: u32, client: Ipv4Addr, sfu: Ipv4Addr, seed: u64| MeetingConfig {
        id,
        sfu_ip: sfu,
        zc_ip: Ipv4Addr::new(170, 114, 2, 20),
        participants: vec![
            ParticipantConfig::standard(client, 0, 30 * SEC),
            ParticipantConfig {
                on_campus: false,
                ..ParticipantConfig::standard(Ipv4Addr::new(98, 1, 1, 9), 0, 30 * SEC)
            },
        ],
        p2p_switch_at: None,
        control_tcp: false,
        keepalives: false,
        seed,
    };
    // Same id modulo 8 → identical SSRC sets.
    let a = MeetingSim::new(mk(
        8,
        Ipv4Addr::new(10, 8, 1, 1),
        Ipv4Addr::new(170, 114, 5, 5),
        1,
    ));
    let b = MeetingSim::new(mk(
        16,
        Ipv4Addr::new(10, 8, 2, 2),
        Ipv4Addr::new(170, 114, 6, 6),
        2,
    ));

    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    // Interleave the two meetings' records by time.
    let mut records: Vec<_> = a.chain(b).collect();
    records.sort_by_key(|r| r.ts_nanos);
    for r in &records {
        analyzer.process_packet(r.ts_nanos, &r.data, LinkType::Ethernet);
    }
    assert_eq!(analyzer.summary().meetings, 2);
}
