//! The paper's §5 validation methodology, reproduced: run the controlled
//! two-party experiment with cross-traffic bursts, estimate metrics
//! passively, and compare against the simulator's ground-truth QoS feed
//! (the stand-in for the instrumented Zoom SDK client) — Fig. 10a/b/c.

use std::collections::HashMap;
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::stream::Stream;
use zoom_sim::meeting::MeetingSim;
use zoom_sim::qos::QosSample;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::LinkType;
use zoom_wire::zoom::MediaType;

struct Validation {
    analyzer: Analyzer,
    sdk_feed: Vec<QosSample>,
}

/// Run the experiment once; participant 0 is the campus "SDK client".
fn run() -> Validation {
    let mut sim = MeetingSim::new(scenario::validation_experiment(77));
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());
    for record in &mut sim {
        analyzer.process_packet(record.ts_nanos, &record.data, LinkType::Ethernet);
    }
    let mut gt = sim.ground_truth();
    Validation {
        analyzer,
        sdk_feed: gt.swap_remove(0),
    }
}

/// The downlink video stream toward the SDK client (10.8.3.3) — what the
/// client renders, hence what its QoS feed describes.
fn downlink_video(analyzer: &Analyzer) -> &Stream {
    analyzer
        .streams()
        .of_type(MediaType::Video)
        .find(|s| s.key.flow.dst_ip.to_string() == "10.8.3.3" && s.key.flow.src_port == 8801)
        .expect("downlink video stream to the SDK client")
}

#[test]
fn fig10a_frame_rate_estimate_tracks_sdk_feed() {
    let v = run();
    let stream = downlink_video(&v.analyzer);
    let frames = stream.frames.as_ref().unwrap();
    // Method-1 per-second delivered fps.
    let mut est: HashMap<u64, f64> = HashMap::new();
    for f in frames.frames() {
        *est.entry(f.completed_at / SEC).or_default() += 1.0;
    }
    // Compare in the calm window (before the first burst at 100 s).
    let mut diffs = Vec::new();
    for s in &v.sdk_feed {
        let sec = s.at / SEC;
        if !(10..95).contains(&sec) {
            continue;
        }
        if let Some(&e) = est.get(&sec) {
            diffs.push((e - s.true_fps).abs());
        }
    }
    assert!(diffs.len() > 60, "comparable seconds: {}", diffs.len());
    let mean_err = diffs.iter().sum::<f64>() / diffs.len() as f64;
    assert!(mean_err < 2.0, "mean |fps error| {mean_err:.2}");

    // The congestion bursts must show up as a frame-rate drop in both
    // the estimate and the feed (rate adaptation, Fig. 10a).
    let calm: f64 = (20..90).filter_map(|s| est.get(&s)).sum::<f64>() / 70.0;
    let burst: f64 = (104..114).filter_map(|s| est.get(&s)).sum::<f64>() / 10.0;
    assert!(
        burst < calm - 4.0,
        "no visible adaptation: calm {calm:.1} vs burst {burst:.1}"
    );
}

#[test]
fn fig10b_latency_estimate_matches_and_is_denser() {
    let v = run();
    let rtts = v.analyzer.rtp_rtt_samples();
    // Passive estimation yields far more samples than the 1 Hz SDK feed
    // (the paper: "significantly more data points").
    assert!(
        rtts.len() > 3 * v.sdk_feed.len(),
        "{} rtt samples vs {} feed samples",
        rtts.len(),
        v.sdk_feed.len()
    );
    // Calm-window accuracy: mean estimate within a few ms of the true
    // client↔SFU RTT (the estimate measures tap↔SFU, excluding the tiny
    // campus legs).
    let calm_est: Vec<f64> = rtts
        .iter()
        .filter(|s| (10 * SEC..90 * SEC).contains(&s.at))
        .map(|s| s.rtt_ms())
        .collect();
    let calm_mean = calm_est.iter().sum::<f64>() / calm_est.len() as f64;
    let truth_mean = {
        let xs: Vec<f64> = v
            .sdk_feed
            .iter()
            .filter(|s| (10 * SEC..90 * SEC).contains(&s.at))
            .map(|s| s.true_latency_ms)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    assert!(
        (calm_mean - truth_mean).abs() < 8.0,
        "estimate {calm_mean:.1} ms vs truth {truth_mean:.1} ms"
    );
    // The burst raises the estimated RTT visibly.
    let burst_est: Vec<f64> = rtts
        .iter()
        .filter(|s| (104 * SEC..112 * SEC).contains(&s.at))
        .map(|s| s.rtt_ms())
        .collect();
    assert!(!burst_est.is_empty());
    let burst_mean = burst_est.iter().sum::<f64>() / burst_est.len() as f64;
    assert!(
        burst_mean > calm_mean + 10.0,
        "burst {burst_mean:.1} vs calm {calm_mean:.1}"
    );
    // And Zoom's reported latency only refreshes every 5 s: far fewer
    // distinct values than the estimate.
    let mut reported: Vec<u64> = v
        .sdk_feed
        .iter()
        .map(|s| s.reported_latency_ms as u64)
        .collect();
    reported.dedup();
    assert!(reported.len() < v.sdk_feed.len() / 3);
}

#[test]
fn fig10c_jitter_estimate_exceeds_zooms_implausible_feed() {
    let v = run();
    let stream = downlink_video(&v.analyzer);
    // Zoom (and our SDK stand-in) clamp reported jitter below ~2 ms even
    // under congestion — the paper's surprising observation.
    assert!(v
        .sdk_feed
        .iter()
        .all(|s| s.reported_jitter_ms <= 2.0 + 1e-9));
    // Our estimator reflects the congestion instead: during the bursts
    // the frame-level jitter estimate rises well above 2 ms.
    let burst_jitter: Vec<f64> = stream
        .frame_jitter
        .samples()
        .iter()
        .filter(|(t, _)| (104 * SEC..114 * SEC).contains(t))
        .map(|&(_, j)| j)
        .collect();
    assert!(!burst_jitter.is_empty());
    let max_burst = burst_jitter.iter().fold(0.0f64, |a, &b| a.max(b));
    assert!(
        max_burst > 4.0,
        "burst jitter estimate too low: {max_burst:.2} ms"
    );
    // Calm-window jitter stays small (the estimator does not invent
    // congestion).
    let calm_jitter: Vec<f64> = stream
        .frame_jitter
        .samples()
        .iter()
        .filter(|(t, _)| (10 * SEC..90 * SEC).contains(t))
        .map(|&(_, j)| j)
        .collect();
    let calm_mean = calm_jitter.iter().sum::<f64>() / calm_jitter.len() as f64;
    assert!(
        calm_mean < max_burst / 2.0,
        "calm {calm_mean:.2} vs burst {max_burst:.2}"
    );
}

#[test]
fn loss_shows_up_as_duplicates_not_holes() {
    // §5.5: Zoom's retransmissions reuse RTP sequence numbers, so a
    // monitor sees duplicates rather than missing packets.
    let v = run();
    let stream = downlink_video(&v.analyzer);
    let main = stream.substreams.get(&98).expect("main video substream");
    let stats = main.seq_stats();
    assert!(stats.received > 1_000);
    assert!(
        stats.duplicates > 0,
        "lossy WAN legs must produce retransmission duplicates"
    );
    assert!(
        stats.loss_fraction() < 0.02,
        "holes should be rare: {}",
        stats.loss_fraction()
    );
}

#[test]
fn tcp_rtt_splits_upstream_and_downstream() {
    // §5.3 method 2: TCP RTTs to the client and to the server are
    // separable, locating congestion relative to the tap.
    let v = run();
    let server: std::net::IpAddr = "170.114.1.10".parse().unwrap();
    let client: std::net::IpAddr = "10.8.3.3".parse().unwrap();
    let to_server = v.analyzer.tcp_rtt().samples_to(server);
    let to_client = v.analyzer.tcp_rtt().samples_to(client);
    assert!(!to_server.is_empty(), "no server-side TCP RTT samples");
    assert!(!to_client.is_empty(), "no client-side TCP RTT samples");
    let m_server = to_server.iter().map(|s| s.rtt_ms()).sum::<f64>() / to_server.len() as f64;
    let m_client = to_client.iter().map(|s| s.rtt_ms()).sum::<f64>() / to_client.len() as f64;
    // The server sits across the WAN (~44 ms RTT); the client is on
    // campus (~3 ms RTT).
    assert!(
        m_server > 4.0 * m_client,
        "server {m_server:.1} vs client {m_client:.1}"
    );
}
