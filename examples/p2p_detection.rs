//! Deterministic P2P detection (§4.1, Fig. 2): watch a two-party meeting
//! switch from SFU to P2P mode and show how the STUN exchange lets the
//! capture pipeline keep seeing the media after the 5-tuple changes —
//! the capability no prior work had.
//!
//! Run with: `cargo run --release --example p2p_detection`

use zoom_capture::cidr::prefix_set;
use zoom_capture::pipeline::{CapturePipeline, PipelineConfig, Verdict};
use zoom_capture::zoom_nets::{ZoomIpList, ZoomNetwork};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::LinkType;

fn main() {
    let duration = 60 * SEC;
    let sim = MeetingSim::new(scenario::p2p_meeting(3, duration));

    let zoom_list = ZoomIpList::from_networks(vec![ZoomNetwork {
        cidr: "170.114.0.0/16".parse().unwrap(),
        owner: zoom_capture::zoom_nets::Owner::ZoomAs,
    }]);
    let mut pipeline = CapturePipeline::new(PipelineConfig {
        campus_nets: prefix_set(&[scenario::CAMPUS_NET]),
        excluded_nets: Default::default(),
        zoom_list,
        stun_timeout_nanos: 120 * SEC,
        anonymizer: None,
        family: zoom_wire::family::FamilySelect::Only(zoom_wire::family::FamilyId::Zoom),
    });

    let mut current: Option<Verdict> = None;
    let mut since = 0u64;
    let mut counts = std::collections::HashMap::new();
    println!("verdict timeline (changes only):");
    for record in sim {
        let verdict = pipeline.classify(record.ts_nanos, &record.data, LinkType::Ethernet);
        *counts.entry(format!("{verdict:?}")).or_insert(0u64) += 1;
        if current != Some(verdict) {
            if let Some(prev) = current {
                println!(
                    "  {:>6.2}s - {:>6.2}s  {:?}",
                    since as f64 / 1e9,
                    record.ts_nanos as f64 / 1e9,
                    prev
                );
            }
            current = Some(verdict);
            since = record.ts_nanos;
        }
    }
    if let Some(prev) = current {
        println!("  {:>6.2}s - end      {prev:?}", since as f64 / 1e9);
    }

    println!("\nverdict totals:");
    let mut rows: Vec<_> = counts.into_iter().collect();
    rows.sort();
    for (v, n) in rows {
        println!("  {v:<12} {n}");
    }

    let c = pipeline.counters();
    let t = pipeline.tracker_stats();
    println!("\nstun register writes: {}", t.registered);
    println!("p2p lookups hit:      {}", t.hits);
    println!("p2p media captured:   {}", c.p2p_matched);
    assert!(
        c.p2p_matched > 0,
        "the P2P flow must be captured after the STUN exchange"
    );
    println!("\nOK: P2P media flow was deterministically detected after the STUN exchange.");
}
