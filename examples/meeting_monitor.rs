//! Live meeting monitor: watch a multi-party meeting through the analyzer
//! and print a per-5-seconds health line for every video stream — the
//! operator dashboard the paper's introduction motivates (troubleshooting
//! and QoS policy without end-host cooperation).
//!
//! Run with: `cargo run --release --example meeting_monitor`

use std::collections::HashMap;
use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::PacketSink;
use zoom_analysis::stream::StreamKey;
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::LinkType;
use zoom_wire::zoom::MediaType;

fn main() {
    let duration = 120 * SEC;
    let sim = MeetingSim::new(scenario::multi_party(7, duration));
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());

    // Snapshot state so we can print deltas per interval.
    let mut last_frames: HashMap<StreamKey, usize> = HashMap::new();
    let mut last_bytes: HashMap<StreamKey, u64> = HashMap::new();
    let mut next_report = 5 * SEC;

    println!("monitoring a simulated 4-participant meeting (2 on campus)...\n");
    for record in sim {
        if record.ts_nanos >= next_report {
            report(
                next_report,
                &mut analyzer,
                &mut last_frames,
                &mut last_bytes,
            );
            next_report += 5 * SEC;
        }
        analyzer
            .push(record.ts_nanos, &record.data, LinkType::Ethernet)
            .expect("push");
    }

    let summary = analyzer.summary();
    println!(
        "\nfinal: {} zoom packets, {} streams, {} meeting(s)",
        summary.zoom_packets, summary.rtp_streams, summary.meetings
    );
    for m in analyzer.meetings() {
        println!(
            "meeting {}: {} visible participant(s), {} stream(s), servers {:?}",
            m.id,
            m.participant_estimate,
            m.streams.len(),
            m.servers
        );
    }
}

fn report(
    at: u64,
    analyzer: &mut Analyzer,
    last_frames: &mut HashMap<StreamKey, usize>,
    last_bytes: &mut HashMap<StreamKey, u64>,
) {
    println!("t={:>4}s", at / SEC);
    let mut rows = Vec::new();
    for s in analyzer.streams().iter() {
        if s.media_type != MediaType::Video && s.media_type != MediaType::ScreenShare {
            continue;
        }
        let frames_total = s.frames.as_ref().map(|f| f.frames().len()).unwrap_or(0);
        let bytes_total = s.media_bytes();
        let df = frames_total - last_frames.insert(s.key, frames_total).unwrap_or(0);
        let db = bytes_total - last_bytes.insert(s.key, bytes_total).unwrap_or(0);
        rows.push(format!(
            "  {:<13} ssrc=0x{:02x} {:>5.1} fps {:>8.0} kbit/s  jitter {:>5.2} ms",
            s.media_type.label(),
            s.key.ssrc,
            df as f64 / 5.0,
            db as f64 * 8.0 / 5.0 / 1e3,
            s.frame_jitter.jitter_ms(),
        ));
    }
    rows.sort();
    for r in rows {
        println!("{r}");
    }
    let rtts = analyzer.rtp_rtt_samples();
    if let Some(s) = rtts.last() {
        println!(
            "  rtt-to-sfu {:>5.1} ms ({} samples so far)",
            s.rtt_ms(),
            rtts.len()
        );
    }
}
