//! Text dissector — the library equivalent of the paper's Wireshark
//! plugin (Appendix C, Fig. 18). Pass a pcap file to dissect it; with no
//! argument, a few representative Zoom packets are synthesized and shown.
//!
//! Run with: `cargo run --release --example dissect [capture.pcap] [max-packets]`

use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::dissect::{dissect, render_tree, P2pProbe};
use zoom_wire::pcap::{LinkType, Reader};

fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    if let Some(path) = args.next() {
        let max: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
        let file = std::fs::File::open(&path)?;
        let mut reader = Reader::new(std::io::BufReader::new(file))?;
        let link = reader.link_type();
        let mut shown = 0;
        let mut index = 0u64;
        while let Some(record) = reader.next_record()? {
            index += 1;
            match dissect(record.ts_nanos, &record.data, link, P2pProbe::Auto) {
                Ok(d) => {
                    println!("--- packet {index} ---");
                    print!("{}", render_tree(&d));
                    shown += 1;
                }
                Err(e) => println!("--- packet {index}: not dissectable ({e}) ---"),
            }
            if shown >= max {
                break;
            }
        }
        return Ok(());
    }

    // No file: synthesize a short meeting and show one packet of each
    // interesting kind.
    println!("(no pcap given — dissecting synthesized packets; pass a file to dissect it)\n");
    let sim = MeetingSim::new(scenario::p2p_meeting(5, 30 * SEC));
    let mut seen = std::collections::HashSet::new();
    for record in sim {
        let Ok(d) = dissect(
            record.ts_nanos,
            &record.data,
            LinkType::Ethernet,
            P2pProbe::Auto,
        ) else {
            continue;
        };
        let kind = match &d.app {
            zoom_wire::dissect::App::Stun(_) => "stun".to_string(),
            zoom_wire::dissect::App::Zoom(framing, z) => {
                format!("{framing:?}/{}", z.media.media_type.label())
            }
            zoom_wire::dissect::App::Webrtc(pdu) => format!("webrtc/{}", pdu.label()),
            zoom_wire::dissect::App::Opaque => match d.transport {
                zoom_wire::dissect::Transport::Tcp { .. } => "tcp".to_string(),
                _ => "udp".to_string(),
            },
        };
        if seen.insert(kind.clone()) {
            println!("=== first {kind} packet ===");
            print!("{}", render_tree(&d));
            println!();
        }
    }
    Ok(())
}
