//! Protocol discovery walkthrough — §4.2's blueprint for demystifying a
//! proprietary protocol, run end to end against (simulated) Zoom traffic
//! *as if we didn't know the format*:
//!
//! 1. extract 1/2/4-byte field series at every offset of one UDP flow and
//!    classify each by entropy/monotonicity (Figs. 3–5);
//! 2. search for the RTP signature at unknown offsets;
//! 3. find RTCP by scanning other payloads for the SSRCs RTP revealed.
//!
//! Run with: `cargo run --release --example protocol_discovery`

use std::collections::HashMap;
use zoom_analysis::entropy::{find_rtcp_by_ssrc, find_rtp_offsets, scan_flow, FieldClass};
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_wire::dissect::{dissect, P2pProbe};
use zoom_wire::flow::FiveTuple;
use zoom_wire::pcap::LinkType;

fn main() {
    // Capture one meeting's traffic, then pretend we know nothing: group
    // raw UDP payloads by 5-tuple.
    let sim = MeetingSim::new(scenario::validation_experiment(17));
    let mut flows: HashMap<FiveTuple, Vec<(u64, Vec<u8>)>> = HashMap::new();
    for record in sim.take(40_000) {
        let Ok(d) = dissect(
            record.ts_nanos,
            &record.data,
            LinkType::Ethernet,
            P2pProbe::Off,
        ) else {
            continue;
        };
        if matches!(d.transport, zoom_wire::dissect::Transport::Udp { .. }) {
            flows
                .entry(d.five_tuple)
                .or_default()
                .push((d.ts_nanos, d.payload.to_vec()));
        }
    }
    // Pick the busiest flow — the video uplink.
    let (flow, packets) = flows
        .into_iter()
        .max_by_key(|(_, v)| v.len())
        .expect("some flow captured");
    println!(
        "analyzing busiest UDP flow: {flow} ({} packets)\n",
        packets.len()
    );

    // Step 1: classify every field position (the automated Fig. 3/4).
    println!("=== field classification (offset/width -> class) ===");
    let rows = scan_flow(&packets, 40);
    for (offset, width, class, sig) in &rows {
        if *class == FieldClass::Mixed {
            continue; // print only confident classifications
        }
        println!(
            "  +{offset:<3} w{width}  {class:<14?} entropy={:.2} distinct={:<6} mono={:.2} meanΔ={:.1}",
            sig.normalized_entropy, sig.distinct, sig.monotonic_fraction, sig.mean_abs_delta
        );
    }

    // Step 2: find the RTP header.
    println!("\n=== RTP signature scan ===");
    let hits = find_rtp_offsets(&packets, 48);
    for (offset, frac) in &hits {
        println!(
            "  plausible RTP header at offset {offset} ({:.0} % of packets)",
            frac * 100.0
        );
    }
    let rtp_offset = hits.first().map(|h| h.0);

    // Step 3: learn SSRCs from the discovered RTP headers, then hunt for
    // RTCP in packets that did NOT match the RTP layout.
    if let Some(off) = rtp_offset {
        let mut ssrcs = std::collections::HashSet::new();
        let mut non_rtp: Vec<(u64, Vec<u8>)> = Vec::new();
        for (t, p) in &packets {
            if p.len() >= off + 12 && zoom_wire::rtp::Packet::new_checked(&p[off..]).is_ok() {
                let pkt = zoom_wire::rtp::Packet::new_unchecked(&p[off..]);
                ssrcs.insert(pkt.ssrc());
            } else {
                non_rtp.push((*t, p.clone()));
            }
        }
        let ssrcs: Vec<u32> = ssrcs.into_iter().collect();
        println!("\nSSRCs learned from RTP: {ssrcs:?}");
        println!(
            "=== RTCP search by SSRC in {} non-RTP payloads ===",
            non_rtp.len()
        );
        let mut by_offset: Vec<(usize, usize)> =
            find_rtcp_by_ssrc(&non_rtp, &ssrcs).into_iter().collect();
        by_offset.sort_by_key(|r| std::cmp::Reverse(r.1));
        for (offset, count) in by_offset.iter().take(5) {
            println!("  SSRC value found at offset {offset} in {count} packets");
        }
        // The paper's conclusion: RTCP SRs carry the SSRC right after an
        // 8-byte header at the media-encapsulation payload offset (16) +
        // 4 bytes into the RTCP packet; with the 8-byte SFU encap that is
        // absolute offset 8 + 16 + 4 = 28.
        if by_offset.iter().any(|&(o, _)| o == 28) {
            println!("\nOK: RTCP sender reports located via SSRC correlation (offset 28).");
        }
    }
}
