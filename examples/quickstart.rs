//! Quickstart: simulate a short Zoom meeting, write it to a pcap file,
//! read it back, and analyze it — the full round trip a user of this
//! library would perform on a real capture.
//!
//! Run with: `cargo run --release --example quickstart`

use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::PacketSink;
use zoom_sim::meeting::MeetingSim;
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::{LinkType, Reader, Writer};
use zoom_wire::zoom::MediaType;

fn main() -> std::io::Result<()> {
    // 1. Simulate a 60-second two-party meeting and capture it to a pcap
    //    file, exactly as a border tap + tcpdump would.
    let mut config = scenario::validation_experiment(42);
    for p in &mut config.participants {
        p.leave_at = 60 * SEC;
    }
    let path = std::env::temp_dir().join("zoom_quickstart.pcap");
    {
        let file = std::fs::File::create(&path)?;
        let mut writer = Writer::new(std::io::BufWriter::new(file), LinkType::Ethernet)?;
        for record in MeetingSim::new(config) {
            writer.write_record(&record)?;
        }
        writer.finish()?;
    }
    println!("wrote capture to {}", path.display());

    // 2. Read the capture back and run the passive analyzer on it.
    let file = std::fs::File::open(&path)?;
    let mut reader = Reader::new(std::io::BufReader::new(file))?;
    let link = reader.link_type();
    let analyzer_config = AnalyzerConfig::builder()
        .campus(scenario::CAMPUS_NET)
        .build()
        .expect("valid campus CIDR");
    let mut analyzer = Analyzer::new(analyzer_config);
    while let Some(record) = reader.next_record()? {
        analyzer
            .push(record.ts_nanos, &record.data, link)
            .expect("push");
    }

    // 3. Report what passive analysis alone could see.
    let summary = analyzer.summary();
    println!("\n=== trace summary ===");
    println!("packets:       {}", summary.total_packets);
    println!("zoom packets:  {}", summary.zoom_packets);
    println!("zoom bytes:    {}", summary.zoom_bytes);
    println!("zoom flows:    {}", summary.zoom_flows);
    println!("rtp streams:   {}", summary.rtp_streams);
    println!("meetings:      {}", summary.meetings);
    println!(
        "duration:      {:.1} s",
        summary.duration_nanos as f64 / 1e9
    );

    println!("\n=== per-stream metrics ===");
    for stream in analyzer.streams().iter() {
        println!(
            "{} ssrc=0x{:02x} [{}] pkts={} media={:.0} kbit/s frames={} jitter={:.2} ms",
            stream.key.flow,
            stream.key.ssrc,
            stream.media_type.label(),
            stream.packets,
            stream.mean_media_bitrate() / 1e3,
            stream
                .frames
                .as_ref()
                .map(|f| f.frames().len())
                .unwrap_or(0),
            stream.frame_jitter.jitter_ms(),
        );
    }

    let mut video = analyzer.media_samples(MediaType::Video);
    if !video.fps.is_empty() {
        println!("\n=== video summary ===");
        println!("median delivered fps:  {:.1}", video.fps.median());
        println!(
            "median bit rate:       {:.2} Mbit/s",
            video.bitrate_mbps.median()
        );
        println!("median frame size:     {:.0} B", video.frame_size.median());
        println!(
            "p95 frame jitter:      {:.2} ms",
            video.jitter_ms.quantile(0.95)
        );
    }

    let rtts = analyzer.rtp_rtt_samples();
    if !rtts.is_empty() {
        let mean: f64 = rtts.iter().map(|s| s.rtt_ms()).sum::<f64>() / rtts.len() as f64;
        println!(
            "\nRTT to SFU (RTP copies): {} samples, mean {:.1} ms",
            rtts.len(),
            mean
        );
    }
    let tcp = analyzer.tcp_rtt_samples();
    if !tcp.is_empty() {
        let mean: f64 = tcp.iter().map(|s| s.rtt_ms()).sum::<f64>() / tcp.len() as f64;
        println!(
            "RTT via TCP control:     {} samples, mean {:.1} ms",
            tcp.len(),
            mean
        );
    }
    // 4. The same results as one owned, machine-readable report — what
    //    `zoom-tools analyze --json` and the streaming engine emit.
    let report = analyzer.finish().expect("finish");
    println!(
        "\nfinal report: {} stream row(s), {} JSON bytes",
        report.streams.len(),
        report.to_json().len()
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
