//! Mini campus study: generate a scaled-down campus workload (the §6.2
//! study), filter it with the capture pipeline, analyze it, and print the
//! headline numbers — the fast version of the full 12-hour experiments in
//! `crates/bench`.
//!
//! Run with: `cargo run --release --example campus_study [minutes] [scale-denominator]`
//! e.g. `cargo run --release --example campus_study 30 64`

use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
use zoom_analysis::PacketSink;
use zoom_capture::cidr::prefix_set;
use zoom_capture::pipeline::{CapturePipeline, PipelineConfig};
use zoom_sim::scenario;
use zoom_sim::time::SEC;
use zoom_wire::pcap::LinkType;
use zoom_wire::zoom::MediaType;

fn main() {
    let mut args = std::env::args().skip(1);
    let minutes: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(15);
    let denom: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(64.0);

    println!("generating {minutes} min of campus traffic at 1/{denom} scale...");
    let (scenario, infra) = scenario::campus_study(11, minutes * 60 * SEC, 1.0 / denom, 1.0);
    println!("{} meetings scheduled", scenario.meetings.len());

    // The capture pipeline filters Zoom from the mixed feed...
    let mut capture = CapturePipeline::new(PipelineConfig {
        campus_nets: prefix_set(&[scenario::CAMPUS_NET]),
        excluded_nets: Default::default(),
        zoom_list: infra.ip_list.clone(),
        stun_timeout_nanos: 120 * SEC,
        anonymizer: None,
        family: zoom_wire::family::FamilySelect::Only(zoom_wire::family::FamilyId::Zoom),
    });
    // ...and the analyzer consumes only what passes.
    let mut analyzer = Analyzer::new(AnalyzerConfig::default());

    for record in scenario.into_stream() {
        let (verdict, passed) = capture.process_record(&record, LinkType::Ethernet);
        let _ = verdict;
        if let Some(out) = passed {
            analyzer
                .push(out.ts_nanos, &out.data, LinkType::Ethernet)
                .expect("push");
        }
    }

    let c = capture.counters();
    println!("\n=== capture pipeline (Fig. 13) ===");
    println!("total packets:    {}", c.total);
    println!("zoom-ip matched:  {}", c.zoom_ip_matched);
    println!("stun registered:  {}", c.stun_registered);
    println!("p2p matched:      {}", c.p2p_matched);
    println!("dropped non-zoom: {}", c.dropped);
    println!(
        "pass rate:        {:.1} % of packets, {:.1} % of bytes",
        100.0 * c.passed as f64 / c.total.max(1) as f64,
        100.0 * c.passed_bytes as f64 / c.total_bytes.max(1) as f64
    );

    let summary = analyzer.summary();
    println!("\n=== analysis (Table 6 shape) ===");
    println!("zoom packets:  {}", summary.zoom_packets);
    println!("zoom flows:    {}", summary.zoom_flows);
    println!("rtp streams:   {}", summary.rtp_streams);
    println!("meetings:      {}", summary.meetings);

    let (dp, db) = analyzer.classifier().decoded_fraction();
    println!(
        "decoded as media: {:.1} % of packets, {:.1} % of bytes",
        dp * 100.0,
        db * 100.0
    );

    println!("\n=== per-media medians (Fig. 15 shape) ===");
    for media in [MediaType::Video, MediaType::Audio, MediaType::ScreenShare] {
        let mut s = analyzer.media_samples(media);
        if s.bitrate_mbps.is_empty() {
            continue;
        }
        println!(
            "{:<14} rate {:.3} Mbit/s | fps {:>4.1} | frame {:>6.0} B | jitter {:>5.2} ms",
            media.label(),
            s.bitrate_mbps.median(),
            s.fps.median(),
            s.frame_size.median(),
            s.jitter_ms.median(),
        );
    }
}
