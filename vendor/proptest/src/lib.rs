//! Minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the real crate cannot be
//! fetched. This stub keeps the same API shape — `proptest!`, `prop_assert*`,
//! `prop_oneof!`, `any::<T>()`, range strategies, `collection::vec` /
//! `collection::btree_set` — but runs plain randomized testing with a
//! deterministic per-case seed and **no shrinking**: a failing case panics
//! with the case index so it can be replayed.
//!
//! Case count defaults to 64 and can be overridden with `PROPTEST_CASES`.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generates one value.
        fn pick(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy that always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn pick(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies of the same type
    /// (the result of `prop_oneof!`).
    pub struct Union<S>(Vec<S>);

    impl<S: Strategy> Union<S> {
        /// Builds a union over `options` (must be non-empty).
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union(options)
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn pick(&self, rng: &mut TestRng) -> S::Value {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].pick(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for core::ops::Range<$t> {
                    type Value = $t;
                    fn pick(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let off = (rng.next_u64() as u128) % span;
                        (self.start as i128 + off as i128) as $t
                    }
                }
                impl Strategy for core::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn pick(&self, rng: &mut TestRng) -> $t {
                        let (start, end) = (*self.start(), *self.end());
                        assert!(start <= end, "empty range strategy");
                        let span = (end as i128 - start as i128) as u128 + 1;
                        let off = (rng.next_u64() as u128) % span;
                        (start as i128 + off as i128) as $t
                    }
                }
            )*
        };
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {
            $(
                impl Strategy for core::ops::Range<$t> {
                    type Value = $t;
                    fn pick(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                    }
                }
            )*
        };
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($S:ident / $idx:tt),+))*) => {
            $(
                impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                    type Value = ($($S::Value,)+);
                    fn pick(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.pick(rng),)+)
                    }
                }
            )*
        };
    }
    tuple_strategy!(
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9, K/10, L/11)
    );
}

/// `any::<T>()` and the [`Arbitrary`] trait behind it.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            })*
        };
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e9 - 1e9
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            (rng.unit_f64() * 2e9 - 1e9) as f32
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy yielding unconstrained values of `T`.
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies: `vec` and `btree_set`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min).max(1) as u64) as usize;
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }

    /// Vector of `element` values with a length in `len` (exclusive upper bound).
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            min: len.start,
            max: len.end,
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size in a range.
    pub struct BTreeSetStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.min + rng.below((self.max - self.min).max(1) as u64) as usize;
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            // A small value space may saturate before `target`; cap attempts.
            while set.len() < target.max(self.min) && attempts < target * 20 + 40 {
                set.insert(self.element.pick(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Set of `element` values with a size in `len` (exclusive upper bound).
    pub fn btree_set<S: Strategy>(
        element: S,
        len: core::ops::Range<usize>,
    ) -> BTreeSetStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        BTreeSetStrategy {
            element,
            min: len.start,
            max: len.end,
        }
    }
}

/// Deterministic case driver used by the `proptest!` macro.
pub mod test_runner {
    use crate::strategy::Strategy;

    /// Deterministic xoshiro256++ generator for case inputs.
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds a generator from `seed` (SplitMix64-expanded).
        pub fn new(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *w = z ^ (z >> 31);
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Returns the next random `u64`.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Returns a uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Returns a uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Number of cases per property (`PROPTEST_CASES`, default 64).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Runs `body` against `cases` generated values of `strategy`.
    ///
    /// Each case uses an independent deterministic seed derived from the case
    /// index, so failures are replayable without a persistence file.
    pub fn run<S: Strategy, F: FnMut(S::Value)>(strategy: S, mut body: F) {
        for case in 0..case_count() {
            let mut rng = TestRng::new(0x70_72_6f_70u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let value = strategy.pick(&mut rng);
            body(value);
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($s),+])
    };
}

/// Defines property tests: each `fn` becomes a `#[test]` that runs its body
/// against generated inputs. Parameters are `name: Type` (uses `any::<Type>()`)
/// or `name in strategy`.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_case!(@parse [] [] ($($params)*) $body);
            }
        )*
    };
}

/// Internal helper for `proptest!` — munches the parameter list into a tuple
/// strategy plus a tuple pattern.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    (@parse [$($strat:expr;)*] [$($pat:tt)*] () $body:block) => {
        $crate::test_runner::run(($($strat,)*), |($($pat)*)| $body)
    };
    (@parse [$($strat:expr;)*] [$($pat:tt)*] ($name:ident : $t:ty, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case!(
            @parse [$($strat;)* $crate::arbitrary::any::<$t>();] [$($pat)* $name,]
            ($($rest)*) $body
        )
    };
    (@parse [$($strat:expr;)*] [$($pat:tt)*] ($name:ident : $t:ty) $body:block) => {
        $crate::__proptest_case!(
            @parse [$($strat;)* $crate::arbitrary::any::<$t>();] [$($pat)* $name,]
            () $body
        )
    };
    (@parse [$($strat:expr;)*] [$($pat:tt)*] ($name:ident in $s:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case!(
            @parse [$($strat;)* $s;] [$($pat)* $name,]
            ($($rest)*) $body
        )
    };
    (@parse [$($strat:expr;)*] [$($pat:tt)*] ($name:ident in $s:expr) $body:block) => {
        $crate::__proptest_case!(
            @parse [$($strat;)* $s;] [$($pat)* $name,]
            () $body
        )
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn mixed_params(a: u16, b in 3u32..10, v in crate::collection::vec(any::<u8>(), 1..5)) {
            let _ = a;
            prop_assert!((3..10).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn oneof_and_arrays(x in prop_oneof![Just(1u8), Just(2), Just(9)], arr: [u8; 12]) {
            prop_assert!(x == 1 || x == 2 || x == 9);
            prop_assert_eq!(arr.len(), 12);
        }
    }

    #[test]
    fn btree_set_sizes() {
        crate::test_runner::run(crate::collection::btree_set(0u8..=32, 1..6), |s| {
            assert!(!s.is_empty() && s.len() < 6);
        });
    }
}
