//! Minimal, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the real crate cannot be
//! fetched. This vendored stub provides the same trait surface (`RngCore`,
//! `Rng`, `SeedableRng`, `rngs::StdRng`) backed by a deterministic
//! xoshiro256++ generator seeded through SplitMix64.
//!
//! Streams differ numerically from the real `rand` crate (which uses ChaCha12
//! for `StdRng`), but they are deterministic per seed and well distributed,
//! which is all the simulator and tests rely on.

/// Low-level source of randomness: raw 32/64-bit words and byte fills.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// High-level convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes (alias for `fill_bytes`).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding `state` with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Distributions over primitive types.
pub mod distributions {
    use super::RngCore;

    /// The "natural" distribution for a type: uniform over all values for
    /// integers, uniform in `[0, 1)` for floats.
    pub struct Standard;

    /// Types that can be sampled from a distribution.
    pub trait Distribution<T> {
        /// Draws one value using `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {
            $(impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            })*
        };
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits -> [0, 1)
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

pub use distributions::{Distribution, Standard};

/// Types with a uniform sampler over `[start, end)` / `[start, end]`.
///
/// This indirection lets [`SampleRange`] be implemented once for
/// `Range<T>` / `RangeInclusive<T>` as blanket impls, which is what makes
/// type inference flow from the usage site into unsuffixed range literals
/// (mirroring the real crate's `UniformSampler` design).
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from the range; `inclusive` selects whether
    /// `end` itself can be returned.
    fn sample_range<R: RngCore + ?Sized>(start: Self, end: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {
        $(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(
                    start: Self,
                    end: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let lo = start as i128;
                    let hi = end as i128 + i128::from(inclusive);
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi - lo) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (lo + off as i128) as $t
                }
            }
        )*
    };
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {
        $(
            impl SampleUniform for $t {
                fn sample_range<R: RngCore + ?Sized>(
                    start: Self,
                    end: Self,
                    _inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    assert!(start < end, "gen_range: empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    start + (unit as $t) * (end - start)
                }
            }
        )*
    };
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that can be sampled uniformly by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::SeedableRng;

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *w = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not be seeded with all zeros.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let neg: i32 = rng.gen_range(-10..-2);
            assert!((-10..-2).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits {hits}");
    }
}
