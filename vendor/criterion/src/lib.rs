//! Minimal, dependency-free stand-in for the parts of `criterion` this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the real crate cannot be
//! fetched. This stub keeps the same API shape (`Criterion`,
//! `benchmark_group`, `Bencher::iter`, `Throughput`, `black_box`,
//! `criterion_group!` / `criterion_main!`) and reports simple wall-clock
//! means to stdout: no statistics, plots, or baseline comparisons.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The measured routine processes this many logical elements per iteration.
    Elements(u64),
    /// The measured routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(
                std::env::var("BENCH_MEASUREMENT_MS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(500),
            ),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            measurement: self.measurement,
        }
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    measurement: Duration,
}

impl BenchmarkGroup {
    /// Sets the per-benchmark sample count (accepted for API compatibility;
    /// this stub sizes runs by wall-clock time instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares how much work one iteration performs, enabling rate output.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures `f` and prints the mean iteration time (and rate, if a
    /// throughput was declared).
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measurement: self.measurement,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = if b.iters > 0 {
            b.elapsed / b.iters as u32
        } else {
            Duration::ZERO
        };
        let mut line = format!(
            "{}/{:<32} time: [{}]  ({} iterations)",
            self.name,
            id,
            fmt_duration(mean),
            b.iters
        );
        if let Some(t) = self.throughput {
            let secs = mean.as_secs_f64();
            if secs > 0.0 {
                match t {
                    Throughput::Elements(n) => {
                        line.push_str(&format!("  thrpt: [{}]", fmt_rate(n as f64 / secs, "elem/s")));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!(
                            "  thrpt: [{:.2} MiB/s]",
                            n as f64 / secs / (1024.0 * 1024.0)
                        ));
                    }
                }
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    measurement: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly — a short warm-up, then timed iterations
    /// until the measurement budget is spent — and records the totals.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_start = Instant::now();
        let warmup = self.measurement / 5;
        let mut warm_iters = 0u64;
        while warm_iters < 1 || (warm_start.elapsed() < warmup && warm_iters < 1_000_000) {
            black_box(routine());
            warm_iters += 1;
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.measurement || iters >= 100_000_000 {
                self.iters = iters;
                self.elapsed = elapsed;
                break;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn fmt_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.3} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Collects benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        std::env::set_var("BENCH_MEASUREMENT_MS", "10");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
